"""Property tests for the invalidation rule itself (not just end results).

Three invariants back the mutation layer's correctness argument:

1. **Survivor exactness** — every cache entry ``apply_delta`` keeps must
   equal, byte for byte, the entry a fresh engine computes for the same
   ``(k, region)`` on the mutated dataset.
2. **Live columns** — every vertex-score memo row (including salvaged,
   column-remapped ones) must reference exactly the live option columns of
   its entry's filtered dataset, and hold the same scores a fresh memo
   computes.
3. **Round trip** — ``insert(x)`` followed by ``delete(x)`` restores the
   dataset, the survivor accounting, and bit-identical query results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mutation import (
    MutationReport,
    entry_survival,
    position_column_map,
    refused_admission,
)
from repro.core.profiles import affine_scores
from repro.core.scorecache import VertexScoreMemo
from repro.data.generators import generate_independent
from repro.engine import TopRREngine
from repro.engine.cache import MISSING
from repro.engine.fingerprint import region_fingerprint
from repro.preference.random_regions import random_hypercube_region
from repro.pruning.rskyband import r_skyband


@pytest.fixture()
def warmed():
    """A warmed engine plus its dataset, regions and ks."""
    dataset = generate_independent(250, 3, rng=5)
    regions = [random_hypercube_region(3, 0.07, rng=50 + i) for i in range(3)]
    ks = (3, 6)
    engine = TopRREngine(dataset, rng=0)
    for region in regions:
        for k in ks:
            engine.query(k, region)
    return engine, dataset, regions, ks


def mutate(rng, dataset, step):
    """Alternate inserts (mixed difficulty) and deletes, deterministically."""
    if step % 3 == 2:
        victims = rng.choice(dataset.option_ids, size=5, replace=False).tolist()
        return dataset.delete_options(option_ids=victims)
    values = rng.random((6, dataset.n_attributes))
    if step % 3 == 1:
        values[0] = 0.9 + 0.1 * rng.random(dataset.n_attributes)  # band-piercing
    else:
        values *= 0.6  # interior points: usually refused admission
    return dataset.insert_options(values)


class TestSurvivorExactness:
    def test_survived_entries_equal_fresh_twins(self, warmed):
        engine, dataset, regions, ks = warmed
        rng = np.random.default_rng(7)
        current = dataset
        checked = 0
        for step in range(6):
            before = {key for key, _ in engine._skyband_cache.items()}
            current, delta = mutate(rng, current, step)
            engine.apply_delta(current, delta)
            for region in regions:
                for k in ks:
                    key = (k, region_fingerprint(region))
                    if key not in before:
                        continue
                    entry = engine._skyband_cache.pop(key)
                    if entry is MISSING:
                        continue  # evicted by the delta: rebuilt lazily
                    filtered, working, memo, vertices = entry
                    engine._skyband_cache.put(key, entry)
                    kept = r_skyband(current, k, region, tol=engine.tol)
                    twin = current.subset(kept)
                    assert filtered.option_ids == twin.option_ids, (step, k)
                    assert filtered.values.tobytes() == twin.values.tobytes()
                    coefficients, constants = engine.affine_form()
                    assert working.coefficients.tobytes() == coefficients[kept].tobytes()
                    assert working.constants.tobytes() == constants[kept].tobytes()
                    assert memo.n_options == twin.n_options
                    checked += 1
            for region in regions:  # rebuild evicted entries for the next step
                for k in ks:
                    engine.query(k, region)
        assert checked, "mutations evicted every entry; survival never exercised"

    def test_survival_verdict_matches_band_recompute(self):
        """entry_survival == (recomputed band is identical), on random inputs."""
        rng = np.random.default_rng(13)
        agreements = evictions = 0
        for trial in range(40):
            dataset = generate_independent(80, 3, rng=int(rng.integers(0, 2**31)))
            region = random_hypercube_region(3, 0.1, rng=int(rng.integers(0, 2**31)))
            k = int(rng.integers(2, 6))
            old_band_ids = [
                dataset.option_ids[i] for i in r_skyband(dataset, k, region)
            ]
            if rng.random() < 0.5:
                mutated, delta = dataset.insert_options(rng.random((3, 3)) ** 0.5)
            else:
                victims = rng.choice(dataset.option_ids, size=3, replace=False).tolist()
                mutated, delta = dataset.delete_options(option_ids=victims)
            survives, _tests = entry_survival(
                mutated, delta, k, region.full_vertices(), old_band_ids
            )
            new_band_ids = [
                mutated.option_ids[i] for i in r_skyband(mutated, k, region)
            ]
            if survives:
                assert new_band_ids == old_band_ids, trial
                agreements += 1
            else:
                evictions += 1
        assert agreements and evictions, "fuzz never exercised both verdicts"


class TestMemoLiveColumns:
    def test_memo_rows_cover_exactly_live_options(self, warmed):
        engine, dataset, regions, ks = warmed
        rng = np.random.default_rng(11)
        current = dataset
        for step in range(4):
            current, delta = mutate(rng, current, step)
            engine.apply_delta(current, delta)
            for region in regions:
                for k in ks:
                    engine.query(k, region)  # rebuild evicted entries
            live = set(current.option_ids)
            for _key, entry in engine._skyband_cache.items():
                filtered, _working, memo, _vertices = entry
                assert set(filtered.option_ids) <= live
                assert memo.n_options == filtered.n_options
                for row in memo._rows.values():
                    assert row.shape == (filtered.n_options,)

    def test_remapped_rows_are_bit_identical_to_fresh(self):
        rng = np.random.default_rng(17)
        dataset = generate_independent(60, 3, rng=19)
        from repro.preference.space import PreferenceSpace

        space = PreferenceSpace(3)
        coefficients, constants = space.affine_score_form(dataset.values)
        memo = VertexScoreMemo(coefficients, constants)
        vertices = rng.random((8, 2))
        memo.ensure_rows(vertices)

        mutated, _delta = dataset.insert_options(rng.random((4, 3)))
        mutated, _delta = mutated.delete_options(
            option_ids=[dataset.option_ids[i] for i in (0, 7, 30)]
        )
        column_map = position_column_map(mutated.option_ids, dataset.option_ids)
        new_coefficients, new_constants = space.affine_score_form(mutated.values)
        remapped = memo.remapped(new_coefficients, new_constants, column_map)
        assert remapped.n_options == mutated.n_options
        fresh = affine_scores(vertices, new_coefficients, new_constants)
        assert remapped.score_matrix(vertices).tobytes() == fresh.tobytes()

    def test_salvage_dropped_on_id_reuse(self):
        """A reused id must not resurrect a parked memo's stale column."""
        dataset = generate_independent(50, 3, rng=23)
        region = random_hypercube_region(3, 0.09, rng=24)
        engine = TopRREngine(dataset, rng=0)
        engine.query(3, region)
        # Evict the entry by deleting one of its band members.
        band_id = engine.query(3, region).filtered.option_ids[0]
        current, delta = dataset.delete_options(option_ids=[band_id])
        report = engine.apply_delta(current, delta)
        assert report.n_entries_evicted == 1 and engine._mutation_salvage
        # Re-insert the same id with different values: the parked memo dies.
        current, delta = current.insert_options(
            np.full((1, 3), 0.99), option_ids=[band_id]
        )
        engine.apply_delta(current, delta)
        assert not engine._mutation_salvage
        oracle = TopRREngine(current, rng=0).query(3, region)
        result = engine.query(3, region)
        assert result.vertices_reduced.tobytes() == oracle.vertices_reduced.tobytes()
        assert result.filtered.option_ids == oracle.filtered.option_ids


class TestRoundTrip:
    def test_dominated_insert_round_trip_is_invisible(self, warmed):
        """insert(x) + delete(x) of a dominated x: zero evictions, same bytes."""
        engine, dataset, regions, ks = warmed
        before = {
            (k, region_fingerprint(region)): engine.query(k, region)
            for region in regions
            for k in ks
        }
        info_before = engine.cache_info()
        x = np.full((1, 3), 0.01)  # dominated everywhere: refused by every band
        inserted, delta_in = dataset.insert_options(x)
        report_in = engine.apply_delta(inserted, delta_in)
        assert report_in.n_entries_evicted == 0
        assert report_in.n_results_evicted == 0
        assert report_in.n_entries_survived == info_before["skyband"]["currsize"]

        restored, delta_out = inserted.delete_options(option_ids=list(delta_in.inserted_ids))
        report_out = engine.apply_delta(restored, delta_out)
        assert report_out.n_entries_survived == report_in.n_entries_survived
        assert report_out.n_results_survived == report_in.n_results_survived
        assert report_out.n_entries_evicted == 0

        assert restored.values.tobytes() == dataset.values.tobytes()
        assert restored.option_ids == dataset.option_ids
        info_after = engine.cache_info()
        assert info_after["skyband"]["currsize"] == info_before["skyband"]["currsize"]
        for (k, fingerprint), old_result in before.items():
            for region in regions:
                if region_fingerprint(region) == fingerprint:
                    result = engine.query(k, region)
                    # The cached objects themselves survived both deltas.
                    assert result is old_result
                    assert result.dataset is restored

    def test_piercing_insert_round_trip_rebuilds_identically(self, warmed):
        """insert(x) + delete(x) of a band-piercing x: evict, then rebuild
        results bit-identical to the originals."""
        engine, dataset, regions, ks = warmed
        before = {
            (k, i): engine.query(k, region)
            for i, region in enumerate(regions)
            for k in ks
        }
        x = np.full((1, 3), 0.999)  # beats everything: enters every band
        inserted, delta_in = dataset.insert_options(x)
        report_in = engine.apply_delta(inserted, delta_in)
        assert report_in.n_entries_survived == 0
        assert report_in.n_entries_evicted > 0

        restored, delta_out = inserted.delete_options(option_ids=list(delta_in.inserted_ids))
        engine.apply_delta(restored, delta_out)
        for (k, i), old_result in before.items():
            rebuilt = engine.query(k, regions[i])
            assert rebuilt is not old_result  # the cache really was evicted
            assert rebuilt.vertices_reduced.tobytes() == old_result.vertices_reduced.tobytes()
            assert rebuilt.full_weights.tobytes() == old_result.full_weights.tobytes()
            assert rebuilt.thresholds.tobytes() == old_result.thresholds.tobytes()
            assert rebuilt.filtered.option_ids == old_result.filtered.option_ids
        # The rebuilds salvaged the parked memos instead of rescoring.
        assert engine.cache_info()["mutations"]["n_memos_salvaged"] > 0


class TestUnits:
    def test_refused_admission_counts_eligible_band_rows_only(self):
        scores = np.array(
            [
                [1.0, 1.0],  # band row, sum 2.0
                [0.9, 0.9],  # band row, sum 1.8
                [0.2, 0.1],  # band row with small sum: not eligible
                [0.8, 0.8],  # inserted row, sum 1.6 -> 2 eligible dominators
                [0.95, 0.95],  # inserted row, sum 1.9 -> 1 eligible dominator
            ]
        )
        band_rows = np.array([0, 1, 2])
        inserted_rows = np.array([3, 4])
        refused = refused_admission(scores, band_rows, inserted_rows, k=2)
        assert refused.tolist() == [True, False]
        # k=1: one dominator suffices either way.
        refused_k1 = refused_admission(scores, band_rows, inserted_rows, k=1)
        assert refused_k1.tolist() == [True, True]

    def test_delta_version_chain_enforced(self):
        dataset = generate_independent(30, 3, rng=31)
        engine = TopRREngine(dataset, rng=0)
        mutated, delta = dataset.insert_options(np.full((1, 3), 0.5))
        twice, delta2 = mutated.insert_options(np.full((1, 3), 0.6))
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            engine.apply_delta(twice, delta2)  # skips a version
        engine.apply_delta(mutated, delta)
        engine.apply_delta(twice, delta2)
        assert engine.dataset is twice and engine.n_deltas == 2

    def test_report_merge_and_rate(self):
        a = MutationReport(n_entries_survived=3, n_entries_evicted=1)
        b = MutationReport(n_results_survived=2, n_dominance_tests=5)
        a.merge(b)
        assert a.n_results_survived == 2 and a.n_dominance_tests == 5
        assert a.survivor_rate == pytest.approx(5 / 6)
        assert MutationReport().survivor_rate == 1.0
