"""Integration tests reproducing the paper's worked examples end to end.

These tests pin the exact intermediate and final values that the paper
reports for its running example (Figure 1), the kIPR-testing example
(Tables 2-4) and the optimized-testing example (Figure 5), so any regression
in the geometric pipeline is caught against ground truth taken directly from
the paper.
"""

import numpy as np
import pytest

from repro.core.placement import cheapest_enhancement
from repro.core.toprr import solve_toprr
from repro.core.verify import verify_result_by_sampling
from repro.preference.region import PreferenceRegion


class TestFigure1RunningExample:
    """Figure 1: wR = [0.2, 0.8], k = 3 on the 6-laptop dataset."""

    @pytest.fixture
    def result(self, figure1, figure1_region):
        return solve_toprr(figure1, k=3, region=figure1_region, method="tas*")

    def test_vall_matches_the_kipr_boundaries(self, result):
        # Section 3.3: V_all = {0.2, 0.4, 0.67, 0.8} (the kIPR boundaries).
        values = sorted(np.round(result.vertices_reduced.ravel(), 3).tolist())
        assert values == pytest.approx([0.2, 0.4, 0.667, 0.8], abs=1e-3)

    def test_top_corner_is_top_ranking(self, result):
        assert result.contains([1.0, 1.0])

    def test_existing_options_classification(self, result, figure1):
        # Figure 1(b): p1 and p2 lie inside oR (on its boundary); p3..p6 do not.
        inside = {figure1.id_of(i) for i in result.existing_top_ranking_options()}
        assert inside == {"p1", "p2"}

    def test_p4_needs_enhancement_and_lands_in_oR(self, result, figure1):
        p4 = figure1.values[figure1.index_of("p4")]
        assert not result.contains(p4)
        placement = cheapest_enhancement(result, p4)
        assert placement.cost > 0
        assert result.contains(placement.option + 1e-9)

    def test_all_methods_agree(self, figure1, figure1_region):
        results = {
            method: solve_toprr(figure1, k=3, region=figure1_region, method=method)
            for method in ("tas*", "tas", "pac")
        }
        probes = np.random.default_rng(0).random((200, 2))
        reference = results["tas*"].contains_many(probes)
        for method, result in results.items():
            assert np.array_equal(result.contains_many(probes), reference), method

    def test_sampling_verifier_passes(self, result):
        assert verify_result_by_sampling(result, rng=1).passed

    def test_smaller_k_gives_smaller_region(self, figure1, figure1_region):
        # Section 3.1: the TopRR region for k' < k is a subset of the region for k.
        volumes = []
        for k in (1, 2, 3):
            result = solve_toprr(figure1, k=k, region=figure1_region)
            volumes.append(result.volume())
        assert volumes[0] <= volumes[1] + 1e-9 <= volumes[2] + 2e-9


class TestFigure5OptimizedTesting:
    """Figure 5 / Section 5.2: k = 2, wR = [0.2, 0.6] — Lemma 7 avoids the split at 0.4."""

    def test_lemma7_uses_only_the_input_vertices(self, figure1):
        region = PreferenceRegion.interval(0.2, 0.6)
        result = solve_toprr(figure1, k=2, region=region, method="tas*")
        values = sorted(np.round(result.vertices_reduced.ravel(), 3).tolist())
        assert values == pytest.approx([0.2, 0.6], abs=1e-9)
        assert result.stats.n_lemma7_regions >= 1
        assert result.stats.n_splits == 0

    def test_plain_tas_splits_at_04(self, figure1):
        region = PreferenceRegion.interval(0.2, 0.6)
        result = solve_toprr(figure1, k=2, region=region, method="tas")
        values = sorted(np.round(result.vertices_reduced.ravel(), 3).tolist())
        assert values == pytest.approx([0.2, 0.4, 0.6], abs=1e-3)

    def test_both_variants_define_the_same_region(self, figure1):
        region = PreferenceRegion.interval(0.2, 0.6)
        star = solve_toprr(figure1, k=2, region=region, method="tas*")
        plain = solve_toprr(figure1, k=2, region=region, method="tas")
        probes = np.random.default_rng(1).random((300, 2))
        assert np.array_equal(star.contains_many(probes), plain.contains_many(probes))


class TestTable2Example:
    """Tables 2-4: the 5-laptop, 3-attribute example with wR = [0.2,0.3] x [0.1,0.2], k = 3."""

    @pytest.fixture
    def result(self, table2, table2_region):
        return solve_toprr(table2, k=3, region=table2_region, method="tas*")

    def test_lemma5_prunes_the_consistent_top_scorer_p5(self, result):
        # Section 5.1: p5 is the common top-1 everywhere in wR, so Lemma 5
        # removes it and decrements k.
        assert result.stats.n_lemma5_reductions >= 1
        assert result.stats.k_effective <= 2

    def test_result_is_verified_by_sampling(self, result):
        assert verify_result_by_sampling(result, rng=3).passed

    def test_p5_is_top_ranking_already(self, result, table2):
        assert result.contains(table2.values[table2.index_of("p5")])

    def test_methods_agree(self, table2, table2_region):
        results = {
            method: solve_toprr(table2, k=3, region=table2_region, method=method)
            for method in ("tas*", "tas", "pac")
        }
        probes = np.random.default_rng(2).random((300, 3))
        reference = results["tas*"].contains_many(probes)
        for method, result in results.items():
            assert np.array_equal(result.contains_many(probes), reference), method

    def test_tas_star_produces_fewer_vertices_than_pac(self, table2, table2_region):
        star = solve_toprr(table2, k=3, region=table2_region, method="tas*")
        pac = solve_toprr(table2, k=3, region=table2_region, method="pac")
        assert star.n_vertices <= pac.n_vertices
