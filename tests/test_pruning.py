"""Unit tests for the pre-filters: r-skyband, UTK filter and the comparison harness."""

import numpy as np
import pytest

from repro.data.generators import generate_independent
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.pruning.base import FILTER_NAMES, apply_filter
from repro.pruning.comparison import compare_filters
from repro.pruning.rskyband import r_dominance_count, r_dominates, r_skyband, vertex_score_matrix
from repro.pruning.utk_filter import utk_filter
from repro.topk.query import top_k
from repro.topk.skyband import k_skyband


@pytest.fixture
def ind_instance():
    dataset = generate_independent(400, 3, rng=21)
    region = PreferenceRegion.hyperrectangle([(0.3, 0.4), (0.2, 0.3)])
    return dataset, region


class TestRSkyband:
    def test_vertex_score_matrix_shape(self, ind_instance):
        dataset, region = ind_instance
        matrix = vertex_score_matrix(dataset, region)
        assert matrix.shape == (dataset.n_options, region.n_vertices)

    def test_r_skyband_subset_of_k_skyband(self, ind_instance):
        dataset, region = ind_instance
        k = 5
        r_band = set(r_skyband(dataset, k, region).tolist())
        full_band = set(k_skyband(dataset, k).tolist())
        assert r_band <= full_band

    def test_r_skyband_contains_top_k_inside_region(self, ind_instance):
        dataset, region = ind_instance
        k = 4
        band = set(r_skyband(dataset, k, region).tolist())
        space = PreferenceSpace(dataset.n_attributes)
        rng = np.random.default_rng(5)
        for reduced in region.sample_weights(20, rng):
            result = top_k(dataset, space.to_full(reduced), k)
            assert set(result.indices.tolist()) <= band

    def test_r_skyband_grows_with_k(self, ind_instance):
        dataset, region = ind_instance
        sizes = [len(r_skyband(dataset, k, region)) for k in (1, 3, 6, 10)]
        assert sizes == sorted(sizes)

    def test_invalid_k(self, ind_instance):
        dataset, region = ind_instance
        with pytest.raises(InvalidParameterError):
            r_skyband(dataset, 0, region)

    def test_r_dominates(self, figure1):
        region = PreferenceRegion.interval(0.2, 0.8)
        # p2 = (0.7, 0.9) r-dominates p6 = (0.1, 0.1) everywhere.
        assert r_dominates(figure1.values[1], figure1.values[5], region)
        assert not r_dominates(figure1.values[5], figure1.values[1], region)
        # p1 and p2 are incomparable on [0.2, 0.8] (p1 wins at 0.8, p2 at 0.2).
        assert not r_dominates(figure1.values[0], figure1.values[1], region)
        assert not r_dominates(figure1.values[1], figure1.values[0], region)

    def test_r_dominance_count(self, figure1):
        region = PreferenceRegion.interval(0.2, 0.8)
        counts = r_dominance_count(figure1, region, cap=6)
        # p6 is r-dominated by every other laptop.
        assert counts[5] == 5
        # The options that are top-ranked somewhere have no r-dominators.
        assert counts[0] == 0 and counts[1] == 0


class TestUTKFilter:
    def test_utk_filter_is_tightest(self, ind_instance):
        dataset, region = ind_instance
        k = 3
        utk = set(utk_filter(dataset, k, region).tolist())
        r_band = set(r_skyband(dataset, k, region).tolist())
        assert utk <= r_band

    def test_utk_filter_covers_sampled_top_k(self, ind_instance):
        dataset, region = ind_instance
        k = 3
        utk = set(utk_filter(dataset, k, region).tolist())
        space = PreferenceSpace(dataset.n_attributes)
        rng = np.random.default_rng(6)
        for reduced in np.vstack([region.sample_weights(15, rng), region.vertices]):
            result = top_k(dataset, space.to_full(reduced), k)
            assert set(result.indices.tolist()) <= utk


class TestFilterInterface:
    def test_all_filters_run(self, ind_instance):
        dataset, region = ind_instance
        for name in FILTER_NAMES:
            outcome = apply_filter(name, dataset, 3, region)
            assert outcome.retained == len(outcome.indices) > 0
            assert outcome.seconds >= 0.0

    def test_region_aware_filters_require_region(self, ind_instance):
        dataset, _ = ind_instance
        with pytest.raises(InvalidParameterError):
            apply_filter("r-skyband", dataset, 3, None)
        with pytest.raises(InvalidParameterError):
            apply_filter("utk", dataset, 3, None)

    def test_unknown_filter(self, ind_instance):
        dataset, region = ind_instance
        with pytest.raises(InvalidParameterError):
            apply_filter("mystery", dataset, 3, region)

    def test_subset_result(self, ind_instance):
        dataset, region = ind_instance
        outcome = apply_filter("r-skyband", dataset, 3, region)
        subset = outcome.subset(dataset)
        assert subset.n_options == outcome.retained

    def test_comparison_ranks_r_skyband_tighter_than_skyband(self, ind_instance):
        dataset, region = ind_instance
        comparison = compare_filters(dataset, 3, region, filters=["k-skyband", "r-skyband"])
        results = comparison.results
        assert results["r-skyband"].retained <= results["k-skyband"].retained
        normalized = comparison.normalized()
        assert max(v["retained"] for v in normalized.values()) == pytest.approx(1.0)
        assert len(comparison.rows()) == 2
