"""Unit tests for the preference space, preference regions and random region generators."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.geometry.halfspace import Halfspace
from repro.preference.random_regions import (
    centred_hypercube_region,
    random_elongated_region,
    random_hypercube_region,
)
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace


class TestPreferenceSpace:
    def test_dimension(self):
        assert PreferenceSpace(4).dimension == 3

    def test_rejects_single_attribute(self):
        with pytest.raises(InvalidParameterError):
            PreferenceSpace(1)

    def test_to_full_and_back(self):
        space = PreferenceSpace(3)
        full = space.to_full([0.2, 0.3])
        assert np.allclose(full, [0.2, 0.3, 0.5])
        assert full.sum() == pytest.approx(1.0)
        reduced = space.to_reduced(full)
        assert np.allclose(reduced, [0.2, 0.3])

    def test_to_reduced_renormalises(self):
        space = PreferenceSpace(3)
        reduced = space.to_reduced([2.0, 3.0, 5.0])
        assert np.allclose(reduced, [0.2, 0.3])

    def test_to_reduced_rejects_zero_sum(self):
        space = PreferenceSpace(2)
        with pytest.raises(InvalidParameterError):
            space.to_reduced([0.0, 0.0])

    def test_to_full_many(self):
        space = PreferenceSpace(3)
        full = space.to_full_many(np.array([[0.1, 0.2], [0.4, 0.4]]))
        assert full.shape == (2, 3)
        assert np.allclose(full.sum(axis=1), 1.0)

    def test_is_valid_reduced(self):
        space = PreferenceSpace(3)
        assert space.is_valid_reduced([0.3, 0.3])
        assert not space.is_valid_reduced([0.8, 0.8])
        assert not space.is_valid_reduced([-0.1, 0.2])

    def test_dimension_mismatch(self):
        space = PreferenceSpace(3)
        with pytest.raises(DimensionMismatchError):
            space.to_full([0.2])

    def test_simplex_constraints_describe_valid_space(self):
        space = PreferenceSpace(3)
        A, b = space.simplex_constraints()
        inside = np.array([0.3, 0.3])
        outside = np.array([0.8, 0.8])
        assert np.all(A @ inside <= b + 1e-12)
        assert not np.all(A @ outside <= b + 1e-12)

    def test_barycentre(self):
        assert np.allclose(PreferenceSpace(4).barycentre(), [0.25, 0.25, 0.25])

    def test_affine_score_form_matches_full_scores(self, figure1):
        space = PreferenceSpace(2)
        for w1 in (0.0, 0.25, 0.6, 1.0):
            reduced = np.array([w1])
            via_affine = space.scores_at_reduced(figure1.values, reduced)
            via_full = figure1.scores(space.to_full(reduced))
            assert np.allclose(via_affine, via_full)

    def test_scores_at_reduced_many(self, table2):
        space = PreferenceSpace(3)
        reduced = np.array([[0.2, 0.1], [0.3, 0.2]])
        matrix = space.scores_at_reduced_many(table2.values, reduced)
        assert matrix.shape == (5, 2)
        full = space.to_full_many(reduced)
        assert np.allclose(matrix, table2.values @ full.T)


class TestPreferenceRegion:
    def test_interval_region(self):
        region = PreferenceRegion.interval(0.2, 0.8)
        assert region.n_attributes == 2
        assert region.dimension == 1
        assert sorted(region.vertices.ravel().tolist()) == pytest.approx([0.2, 0.8])

    def test_hyperrectangle_vertices(self, table2_region):
        assert table2_region.n_vertices == 4
        assert table2_region.n_attributes == 3

    def test_full_vertices_are_normalised(self, table2_region):
        full = table2_region.full_vertices()
        assert np.allclose(full.sum(axis=1), 1.0)
        assert np.all(full >= -1e-12)

    def test_hyperrectangle_validation(self):
        with pytest.raises(InvalidParameterError):
            PreferenceRegion.hyperrectangle([(0.5, 0.4)])
        with pytest.raises(InvalidParameterError):
            PreferenceRegion.hyperrectangle([(-0.1, 0.4)])
        with pytest.raises(InvalidParameterError):
            PreferenceRegion.hyperrectangle([(0.6, 0.8), (0.6, 0.8)])

    def test_full_simplex(self):
        region = PreferenceRegion.full_simplex(3)
        assert region.contains([0.2, 0.2])
        assert not region.contains([0.9, 0.9])
        assert region.volume() == pytest.approx(0.5, abs=1e-6)

    def test_contains_and_centroid(self, table2_region):
        centroid = table2_region.centroid()
        assert table2_region.contains(centroid)
        assert not table2_region.contains([0.9, 0.9])

    def test_scoring_hyperplane_orientation(self, table2):
        region = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])
        p3, p4 = table2.values[2], table2.values[3]
        plane = region.scoring_hyperplane(p3, p4)
        space = PreferenceSpace(3)
        # Negative side of the plane must be where p3 scores at least as high as p4.
        for reduced in region.vertices:
            full = space.to_full(reduced)
            score_gap = full @ p3 - full @ p4
            side = plane.side(reduced)
            if side < 0:
                assert score_gap >= -1e-9
            elif side > 0:
                assert score_gap <= 1e-9

    def test_split_into_two_parts(self, table2, table2_region):
        p3, p4 = table2.values[2], table2.values[3]
        plane = table2_region.scoring_hyperplane(p3, p4)
        below, above = table2_region.split(plane)
        assert below.is_full_dimensional() and above.is_full_dimensional()
        total = below.volume() + above.volume()
        assert total == pytest.approx(table2_region.volume(), rel=1e-6)

    def test_intersect_halfspace(self, table2_region):
        smaller = table2_region.intersect_halfspace(Halfspace([1.0, 0.0], 0.25))
        assert smaller.volume() < table2_region.volume()

    def test_sample_weights_inside(self, table2_region):
        samples = table2_region.sample_weights(32, np.random.default_rng(0))
        assert all(table2_region.contains(s) for s in samples)

    def test_pruned_preserves_vertices(self, table2_region):
        extra = table2_region.intersect_halfspace(Halfspace([1.0, 0.0], 0.9))
        pruned = extra.pruned()
        assert pruned.n_vertices == table2_region.n_vertices


class TestRandomRegions:
    @pytest.mark.parametrize("d", [2, 3, 4, 6])
    def test_hypercube_inside_simplex(self, d):
        rng = np.random.default_rng(0)
        for _ in range(5):
            region = random_hypercube_region(d, 0.05, rng=rng)
            full = region.full_vertices()
            assert np.all(full >= -1e-9)
            assert np.allclose(full.sum(axis=1), 1.0)

    def test_hypercube_side_length(self):
        region = random_hypercube_region(4, 0.1, rng=1)
        lower, upper = region.polytope.bounding_box()
        assert np.allclose(upper - lower, 0.1, atol=1e-9)

    def test_invalid_side_length(self):
        with pytest.raises(InvalidParameterError):
            random_hypercube_region(3, 0.0)
        with pytest.raises(InvalidParameterError):
            random_hypercube_region(3, 1.5)

    def test_elongated_region_keeps_volume(self):
        sigma = 0.08
        for gamma in (0.5, 2.0, 4.0):
            region = random_elongated_region(4, sigma, gamma, rng=3)
            assert region.volume() == pytest.approx(sigma**3, rel=1e-6)

    def test_elongated_region_with_gamma_one_is_cube(self):
        region = random_elongated_region(3, 0.05, 1.0, rng=2)
        lower, upper = region.polytope.bounding_box()
        assert np.allclose(upper - lower, 0.05, atol=1e-9)

    def test_elongated_invalid_gamma(self):
        with pytest.raises(InvalidParameterError):
            random_elongated_region(3, 0.05, 0.0)

    def test_centred_hypercube(self):
        region = centred_hypercube_region(3, 0.1)
        assert region.contains(region.space.barycentre())

    def test_determinism_with_seed(self):
        a = random_hypercube_region(4, 0.05, rng=9)
        b = random_hypercube_region(4, 0.05, rng=9)
        assert np.allclose(np.sort(a.vertices, axis=0), np.sort(b.vertices, axis=0))
