"""Solver-level parity of the polygon geometry backend.

The exact 2-D backend replaces the solvers' innermost geometric primitive
(split / emptiness / vertex enumeration), so the guarantee it must give is
end-to-end: for ``d = 3`` datasets (2-D preference space) every solver run
on the polygon backend must produce **bit-identical** ``V_all`` — and
identical split/region/vertex counters — to the LP/qhull path, while
reporting **zero** LP and qhull calls in :class:`~repro.core.stats.SolverStats`.
"""

import numpy as np
import pytest

from repro.core.pac import PACSolver
from repro.core.stats import SolverStats
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.engine import TopRREngine
from repro.engine.fingerprint import region_fingerprint
from repro.geometry.polytope import use_backend
from repro.preference.region import PreferenceRegion

#: Stats fields that legitimately differ between backends (the geometry
#: call mix and timing), plus the incremental-path cache counters.
BACKEND_FIELDS = {"n_lp_calls", "n_qhull_calls", "n_clip_calls", "seconds"}

INTERVALS = [(0.3, 0.38), (0.3, 0.38)]


def _regions():
    """The same region built on the polygon (auto) and the qhull backend."""
    polygon_region = PreferenceRegion.hyperrectangle(INTERVALS)
    with use_backend("qhull"):
        qhull_region = PreferenceRegion.hyperrectangle(INTERVALS)
    assert polygon_region.polytope.backend == "polygon"
    assert qhull_region.polytope.backend == "qhull"
    return polygon_region, qhull_region


def _solve(solver_cls, dataset, k, region, **kwargs):
    solver = solver_cls(rng=5, **kwargs)
    stats = SolverStats()
    vall = solver.partition(dataset, k, region, stats=stats)
    return vall, stats


def _comparable(stats: SolverStats) -> dict:
    return {
        key: value
        for key, value in stats.as_dict().items()
        if key not in BACKEND_FIELDS
    }


class TestSolverParity:
    """`V_all` and solve statistics must not depend on the geometry backend."""

    @pytest.mark.parametrize("solver_cls", [TASStarSolver, TASSolver, PACSolver])
    @pytest.mark.parametrize("generator", [generate_independent, generate_anticorrelated])
    def test_vall_bit_identical_and_zero_lp(self, solver_cls, generator):
        dataset = generator(1500, 3, rng=1)
        polygon_region, qhull_region = _regions()
        vall_polygon, stats_polygon = _solve(solver_cls, dataset, 5, polygon_region)
        vall_qhull, stats_qhull = _solve(solver_cls, dataset, 5, qhull_region)

        assert np.array_equal(vall_polygon, vall_qhull)
        assert _comparable(stats_polygon) == _comparable(stats_qhull)

        # The tentpole claim: geometry without a single LP or qhull call.
        assert stats_polygon.n_lp_calls == 0
        assert stats_polygon.n_qhull_calls == 0
        assert stats_polygon.n_clip_calls > 0
        # ... which the reference arm pays per region.
        assert stats_qhull.n_lp_calls >= stats_qhull.n_regions_tested

    @pytest.mark.parametrize("use_k_switch", [False, True])
    def test_strategies_and_ablations(self, use_k_switch):
        dataset = generate_anticorrelated(800, 3, rng=3)
        for use_lemma7 in (False, True):
            polygon_region, qhull_region = _regions()
            vall_polygon, _ = _solve(
                TASStarSolver,
                dataset,
                4,
                polygon_region,
                use_k_switch=use_k_switch,
                use_lemma7=use_lemma7,
            )
            vall_qhull, _ = _solve(
                TASStarSolver,
                dataset,
                4,
                qhull_region,
                use_k_switch=use_k_switch,
                use_lemma7=use_lemma7,
            )
            assert np.array_equal(vall_polygon, vall_qhull)

    def test_incremental_off_also_matches(self):
        dataset = generate_independent(1200, 3, rng=7)
        polygon_region, qhull_region = _regions()
        vall_polygon, _ = _solve(
            TASStarSolver, dataset, 5, polygon_region, incremental=False
        )
        vall_qhull, _ = _solve(TASStarSolver, dataset, 5, qhull_region, incremental=False)
        assert np.array_equal(vall_polygon, vall_qhull)


class TestEngineIntegration:
    """The query engine is backend-transparent, including its cache keys."""

    def test_fingerprints_are_backend_independent(self):
        polygon_region, qhull_region = _regions()
        assert region_fingerprint(polygon_region) == region_fingerprint(qhull_region)

    def test_engine_results_match_across_backends(self):
        dataset = generate_independent(1500, 3, rng=2)
        polygon_region, qhull_region = _regions()
        engine = TopRREngine(dataset)
        result_polygon = engine.query(5, polygon_region)
        # Same fingerprint: the qhull-built region must hit the result cache.
        result_again = engine.query(5, qhull_region)
        assert result_again is result_polygon

        with use_backend("qhull"):
            reference_engine = TopRREngine(dataset)
            result_qhull = reference_engine.query(5, qhull_region)
        assert np.array_equal(
            result_polygon.vertices_reduced, result_qhull.vertices_reduced
        )
        assert result_polygon.stats.n_lp_calls == 0
        assert result_qhull.stats.n_lp_calls > 0
