"""Unit tests for the supervision layer (:mod:`repro.core.resilient`).

Backoff determinism is pinned with a pure function check (no sleeping); the
:class:`SupervisedPool` ladder — retry, pool rebuild, serial degradation,
hard failure — is exercised against an in-process scripted pool double, so
every failure mode is deterministic and instant.  The real-process
integration (actual crashed workers, shared memory, bit-identical results)
lives in ``tests/test_fault_injection.py``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core import faults
from repro.core.resilient import (
    ResilienceConfig,
    ResilienceStats,
    SupervisedPool,
    SupervisedTask,
    backoff_delay,
    worker_initializer,
)
from repro.exceptions import InvalidParameterError, ShardExecutionError


class TestBackoffDelay:
    def test_deterministic(self):
        config = ResilienceConfig(seed=7)
        for key in (0, 1, "shard-3"):
            for i in range(4):
                assert backoff_delay(config, key, i) == backoff_delay(config, key, i)

    def test_bounds(self):
        config = ResilienceConfig(
            backoff_base=0.05, backoff_factor=2.0, backoff_cap=2.0, jitter=0.25
        )
        for i in range(8):
            raw = min(2.0, 0.05 * 2.0**i)
            delay = backoff_delay(config, 3, i)
            assert raw <= delay < raw * 1.25

    def test_keys_desynchronise(self):
        config = ResilienceConfig()
        delays = {backoff_delay(config, key, 1) for key in range(16)}
        assert len(delays) > 1

    def test_seed_changes_jitter(self):
        a = backoff_delay(ResilienceConfig(seed=0), 5, 2)
        b = backoff_delay(ResilienceConfig(seed=1), 5, 2)
        assert a != b

    def test_negative_retry_index_is_free(self):
        assert backoff_delay(ResilienceConfig(), 0, -1) == 0.0

    def test_no_wall_clock_dependence(self):
        # Pure function of (config, key, index): two widely separated calls
        # agree without any mutable RNG state in between.
        config = ResilienceConfig(seed=99)
        first = [backoff_delay(config, k, 1) for k in range(4)]
        for _ in range(100):
            backoff_delay(config, 12345, 3)
        assert [backoff_delay(config, k, 1) for k in range(4)] == first


class TestResilienceConfig:
    def test_rejects_bad_timeout(self):
        with pytest.raises(InvalidParameterError):
            ResilienceConfig(timeout=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(InvalidParameterError):
            ResilienceConfig(max_retries=-1)

    def test_rejects_negative_rebuilds(self):
        with pytest.raises(InvalidParameterError):
            ResilienceConfig(max_pool_rebuilds=-1)


class TestResilienceStats:
    def test_merge_and_degraded(self):
        total = ResilienceStats()
        batch = ResilienceStats(n_retries=2, n_degraded_tasks=1)
        batch.note("degraded once")
        total.merge(batch)
        assert total.n_retries == 2
        assert total.degraded
        assert total.events == ["degraded once"]
        assert total.as_dict()["degraded"] is True

    def test_healthy_dict_is_all_zero(self):
        d = ResilienceStats().as_dict()
        assert d["degraded"] is False
        assert all(v == 0 for k, v in d.items() if k != "degraded")


class ScriptedPool:
    """In-process ProcessPoolExecutor double with scripted per-submit outcomes.

    ``script`` maps a task's first argument to a list of outcomes consumed
    one per submission: ``"ok"`` runs the callable inline, ``"error"``
    resolves the future with a ``ValueError``, ``"broken"`` resolves it with
    ``BrokenProcessPool`` (a worker died running it), ``"hang"`` returns a
    running future that never completes (and cannot be cancelled).
    """

    def __init__(self, script):
        self.script = script
        self.shut_down = False

    def submit(self, fn, *args):
        future = Future()
        outcomes = self.script.get(args[0] if args else None, [])
        outcome = outcomes.pop(0) if outcomes else "ok"
        if outcome == "ok":
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # pragma: no cover - defensive
                future.set_exception(exc)
        elif outcome == "error":
            future.set_exception(ValueError(f"scripted task error for {args[0]!r}"))
        elif outcome == "broken":
            future.set_exception(BrokenProcessPool("scripted worker crash"))
        elif outcome == "hang":
            future.set_running_or_notify_cancel()
        else:  # pragma: no cover - script typo guard
            raise AssertionError(f"unknown outcome {outcome!r}")
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shut_down = True


def _make_pool(script, config, sleeps=None):
    """A SupervisedPool over ScriptedPool factories, with recorded sleeps."""
    built = []

    def factory():
        pool = ScriptedPool(script)
        built.append(pool)
        return pool

    recorded = sleeps if sleeps is not None else []
    supervisor = SupervisedPool(
        n_workers=2, config=config, sleep=recorded.append, pool_factory=factory
    )
    return supervisor, built, recorded


class TestSupervisedPool:
    def test_healthy_batch(self):
        supervisor, built, sleeps = _make_pool({}, ResilienceConfig())
        tasks = [SupervisedTask(key=i, fn=lambda x: x * 10, args=(i,)) for i in range(4)]
        with supervisor:
            results, stats = supervisor.run(tasks)
        assert results == {0: 0, 1: 10, 2: 20, 3: 30}
        assert list(results) == [0, 1, 2, 3]
        assert stats.as_dict() == ResilienceStats().as_dict()
        assert sleeps == []
        assert len(built) == 1

    def test_task_error_is_retried(self):
        config = ResilienceConfig(max_retries=2)
        script = {1: ["error", "ok"]}
        supervisor, built, sleeps = _make_pool(script, config)
        tasks = [SupervisedTask(key=i, fn=lambda x: x + 100, args=(i,)) for i in range(3)]
        results, stats = supervisor.run(tasks)
        assert results == {0: 100, 1: 101, 2: 102}
        assert stats.n_task_errors == 1
        assert stats.n_retries == 1
        assert stats.n_degraded_tasks == 0
        # One backoff sleep, with the deterministic jittered delay of retry 0.
        assert sleeps == [backoff_delay(config, 1, 0)]
        # A task error does not poison the pool: no rebuild happened.
        assert stats.n_pool_rebuilds == 0
        assert len(built) == 1

    def test_worker_crash_rebuilds_pool(self):
        config = ResilienceConfig(max_retries=2, max_pool_rebuilds=1)
        script = {2: ["broken"]}
        supervisor, built, _ = _make_pool(script, config)
        tasks = [SupervisedTask(key=i, fn=lambda x: -x, args=(i,)) for i in range(3)]
        results, stats = supervisor.run(tasks)
        assert results == {0: 0, 1: -1, 2: -2}
        assert stats.n_worker_crashes == 1
        assert stats.n_pool_rebuilds == 1
        assert stats.n_retries >= 1
        assert stats.n_degraded_tasks == 0
        assert len(built) == 2
        assert built[0].shut_down

    def test_hung_task_times_out_and_recovers(self):
        config = ResilienceConfig(timeout=0.05, max_retries=2, max_pool_rebuilds=1)
        script = {0: ["hang", "ok"]}
        supervisor, built, _ = _make_pool(script, config)
        tasks = [SupervisedTask(key=i, fn=lambda x: x, args=(i,)) for i in range(2)]
        results, stats = supervisor.run(tasks)
        assert results == {0: 0, 1: 1}
        assert stats.n_timeouts == 1
        assert stats.n_pool_rebuilds == 1
        assert len(built) == 2

    def test_exhausted_rebuilds_degrade_serially(self):
        config = ResilienceConfig(max_retries=5, max_pool_rebuilds=1)
        script = {i: ["broken"] * 10 for i in range(3)}
        supervisor, built, _ = _make_pool(script, config)
        tasks = [
            SupervisedTask(key=i, fn=lambda x: x, args=(i,), fallback=lambda i=i: i + 1000)
            for i in range(3)
        ]
        results, stats = supervisor.run(tasks)
        # Every result came from the in-process fallback, none from a pool.
        assert results == {0: 1000, 1: 1001, 2: 1002}
        assert stats.n_degraded_tasks == 3
        assert stats.degraded
        assert stats.n_pool_rebuilds == 1
        assert stats.n_worker_crashes == 2  # original pool + the one rebuild
        assert len(built) == 2
        assert supervisor.lifetime.n_degraded_tasks == 3

    def test_degradation_defaults_to_calling_fn_inline(self):
        config = ResilienceConfig(max_retries=0, max_pool_rebuilds=0)
        script = {7: ["error"]}
        supervisor, _, _ = _make_pool(script, config)
        results, stats = supervisor.run([SupervisedTask(key=0, fn=lambda x: x * 3, args=(7,))])
        assert results == {0: 21}
        assert stats.n_degraded_tasks == 1

    def test_no_fallback_raises_shard_execution_error(self):
        config = ResilienceConfig(max_retries=0, max_pool_rebuilds=0, fallback=False)
        script = {0: ["error"]}
        supervisor, _, _ = _make_pool(script, config)
        with pytest.raises(ShardExecutionError, match="unrecoverable"):
            supervisor.run([SupervisedTask(key=0, fn=lambda x: x, args=(0,))])

    def test_abandon_pool_terminates_worker_processes(self):
        # Regression: `_processes` holds pid -> Process; abandoning the pool
        # must call terminate() on the *values* (a precedence bug once made
        # it iterate the pid keys, silently terminating nothing).
        class FakeProcess:
            def __init__(self):
                self.terminated = False

            def terminate(self):
                self.terminated = True

        class FakePool(ScriptedPool):
            def __init__(self):
                super().__init__({})
                self._processes = {100: FakeProcess(), 101: FakeProcess()}

        supervisor = SupervisedPool(2, ResilienceConfig(), pool_factory=FakePool)
        supervisor.run([SupervisedTask(key=0, fn=lambda: 1)])
        pool = supervisor._pool
        supervisor._abandon_pool()
        assert pool.shut_down
        assert all(p.terminated for p in pool._processes.values())

    def test_concurrent_runs_are_serialized(self):
        supervisor, _, _ = _make_pool({}, ResilienceConfig())
        outputs = {}

        def batch(name, base):
            tasks = [SupervisedTask(key=i, fn=lambda x: x, args=(base + i,)) for i in range(8)]
            outputs[name], _ = supervisor.run(tasks)

        threads = [
            threading.Thread(target=batch, args=(name, base))
            for name, base in [("a", 0), ("b", 100), ("c", 200)]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outputs["a"] == {i: i for i in range(8)}
        assert outputs["b"] == {i: 100 + i for i in range(8)}
        assert outputs["c"] == {i: 200 + i for i in range(8)}
        assert supervisor.n_batches == 3
        assert not supervisor.lifetime.degraded

    def test_health_report(self):
        supervisor, _, _ = _make_pool({}, ResilienceConfig())
        supervisor.run([SupervisedTask(key=0, fn=lambda: 1)])
        health = supervisor.health()
        assert health["alive"]
        assert health["n_batches"] == 1
        assert health["degraded"] is False
        supervisor.close()
        assert not supervisor.alive

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(InvalidParameterError):
            SupervisedPool(0)


class TestWorkerInitializer:
    def test_installs_plan_from_env(self, tmp_path, monkeypatch):
        plan = faults.FaultPlan(
            specs=[faults.FaultSpec(point="task", key=1, kind="raise")],
            state_dir=str(tmp_path),
        )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, plan.to_json())
        try:
            worker_initializer()
            active = faults.active_fault_plan()
            assert active is not None
            assert active.state_dir == str(tmp_path)
            assert active.specs[0].key == 1
        finally:
            faults.install_fault_plan(None)

    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_PLAN_ENV, raising=False)
        worker_initializer()
        assert faults.active_fault_plan() is None


def _double_at_fault_point(key: int) -> int:
    """Pool-side toy task: hits the ``task`` instrumentation point, doubles."""
    faults.fault_point("task", key)
    return key * 2


class TestRealProcessPool:
    def test_crash_once_recovers_with_real_workers(self, tmp_path):
        plan = faults.FaultPlan(
            specs=[faults.FaultSpec(point="task", key=1, kind="crash", times=1)],
            state_dir=str(tmp_path),
        )
        config = ResilienceConfig(max_retries=2, max_pool_rebuilds=1)
        with plan.installed():
            with SupervisedPool(2, config) as supervisor:
                results, stats = supervisor.run(
                    [SupervisedTask(key=i, fn=_double_at_fault_point, args=(i,)) for i in range(3)]
                )
        assert results == {0: 0, 1: 2, 2: 4}
        assert stats.n_worker_crashes == 1
        assert stats.n_pool_rebuilds == 1
        assert stats.n_degraded_tasks == 0
        assert plan.fired(0) == 1
        assert os.environ.get(faults.FAULT_PLAN_ENV) is None
