"""Tests for the exact 2-D polygon geometry backend.

Three layers:

* **property-based parity**: random halfspace sets and random split cascades
  must give *bit-identical* canonical vertices and identical
  emptiness / full-dimensionality verdicts on the polygon and the LP/qhull
  backends, with closely matching Chebyshev radii and areas;
* **degenerate cases**: segments, points, empty systems, slivers around the
  radius tolerance, and unbounded intermediate H-representations;
* **unit tests** of the :class:`~repro.geometry.polygon.Polygon` primitives
  (clipping, cutting with a shared cut edge, area, centroid, counters) and
  of the ``chebyshev_center`` / ``chebyshev_centre`` spelling deprecation.
"""

import numpy as np
import pytest

from repro.exceptions import DegeneratePolytopeError
from repro.geometry.chebyshev import chebyshev_center, chebyshev_centre
from repro.geometry.counters import geometry_counters
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polygon import Polygon, polygon_chebyshev, polygon_from_halfspaces
from repro.geometry.polytope import ConvexPolytope, set_default_backend, use_backend
from repro.utils.tolerance import DEFAULT_TOL


def _pair(A, b, **kwargs):
    """The same H-representation on both backends."""
    return (
        ConvexPolytope(A, b, backend="polygon", **kwargs),
        ConvexPolytope(A, b, backend="qhull", **kwargs),
    )


def _random_halfspace_system(rng, n_extra):
    """Unit box plus ``n_extra`` random halfspaces through its interior."""
    A = [np.array([1.0, 0.0]), np.array([-1.0, 0.0]), np.array([0.0, 1.0]), np.array([0.0, -1.0])]
    b = [1.0, 0.0, 1.0, 0.0]
    for _ in range(n_extra):
        normal = rng.normal(size=2)
        normal /= np.linalg.norm(normal)
        point = rng.uniform(0.15, 0.85, size=2)
        A.append(normal)
        b.append(float(normal @ point))
    return np.asarray(A), np.asarray(b)


class TestBackendParity:
    """Polygon and LP/qhull backends must agree bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_halfspace_sets(self, seed):
        rng = np.random.default_rng(seed)
        for trial in range(25):
            A, b = _random_halfspace_system(rng, int(rng.integers(1, 7)))
            poly, ref = _pair(A, b)
            assert poly.is_empty() == ref.is_empty()
            assert poly.is_full_dimensional() == ref.is_full_dimensional()
            if poly.is_empty() or not poly.is_full_dimensional():
                continue
            assert np.array_equal(poly.vertices, ref.vertices), f"trial {trial}"
            assert poly.chebyshev_radius == pytest.approx(ref.chebyshev_radius, rel=1e-6, abs=1e-9)
            assert poly.volume() == pytest.approx(ref.volume(), rel=1e-9, abs=1e-12)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_random_split_cascades(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(30):
            poly = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="polygon")
            ref = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="qhull")
            for _ in range(8):
                normal = rng.normal(size=2)
                offset = float(normal @ rng.uniform(0.1, 0.9, size=2))
                hyperplane = Hyperplane(normal, offset)
                side = int(rng.integers(2))
                poly_child = poly.split(hyperplane)[side]
                ref_child = ref.split(hyperplane)[side]
                assert poly_child.backend == "polygon"
                assert ref_child.backend == "qhull"
                assert poly_child.is_empty() == ref_child.is_empty()
                assert poly_child.is_full_dimensional() == ref_child.is_full_dimensional()
                if poly_child.is_empty() or not poly_child.is_full_dimensional():
                    break
                assert np.array_equal(poly_child.vertices, ref_child.vertices)
                poly, ref = poly_child, ref_child

    def test_auto_backend_selects_polygon_in_2d(self):
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0])
        assert square.backend == "polygon"
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        assert cube.backend == "polyhedron"
        tesseract = ConvexPolytope.from_box([0.0] * 4, [1.0] * 4)
        assert tesseract.backend == "qhull"

    def test_split_children_share_cut_vertex_bytes(self):
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="polygon")
        below, above = square.split(Hyperplane(np.array([1.0, 0.4]), 0.7))
        below_bytes = {v.tobytes() for v in below.vertices}
        above_bytes = {v.tobytes() for v in above.vertices}
        # The two cut vertices appear in both children with identical bytes.
        assert len(below_bytes & above_bytes) == 2

    def test_use_backend_context(self):
        with use_backend("qhull"):
            inside = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0])
        outside = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0])
        assert inside.backend == "qhull"
        assert outside.backend == "polygon"
        with pytest.raises(ValueError):
            set_default_backend("nonsense")

    def test_backend_counters(self):
        geometry_counters.reset()
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="polygon")
        below, above = square.split(Hyperplane(np.array([1.0, 0.0]), 0.5))
        _ = below.vertices, above.vertices, below.chebyshev_radius
        snap = geometry_counters.snapshot()
        assert snap.n_lp_calls == 0
        assert snap.n_qhull_calls == 0
        assert snap.n_clip_calls >= 5  # 4 box clips for the parent + 1 cut
        geometry_counters.reset()
        ref = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="qhull")
        _ = ref.vertices
        snap = geometry_counters.snapshot()
        assert snap.n_lp_calls >= 1 and snap.n_qhull_calls == 1 and snap.n_clip_calls == 0


class TestDegenerateCases:
    """Slivers, segments, unbounded systems: verdicts must mirror the LP path.

    (Outside one documented band: systems infeasible by a margin between
    ``tol.geometry`` and the LP solver's own feasibility slack may report
    empty on the polygon path while HiGHS accepts them with a tiny negative
    radius — both verdicts make solvers discard the region identically; see
    :func:`repro.geometry.polygon.polygon_chebyshev`.)
    """

    SEGMENT_A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    SEGMENT_B = np.array([0.5, -0.5, 1.0, 0.0])

    def test_segment_is_degenerate_on_both_backends(self):
        for polytope in _pair(self.SEGMENT_A, self.SEGMENT_B):
            assert not polytope.is_empty()
            assert not polytope.is_full_dimensional()
            with pytest.raises(DegeneratePolytopeError):
                _ = polytope.vertices

    def test_empty_system_on_both_backends(self):
        b = np.array([0.4, -0.5, 1.0, 0.0])  # x <= 0.4 and x >= 0.5
        for polytope in _pair(self.SEGMENT_A, b):
            assert polytope.is_empty()
            assert polytope.vertices.shape == (0, 2)
            assert polytope.chebyshev_radius == float("-inf")

    @pytest.mark.parametrize("width,full_dim", [(1e-9, True), (1e-11, False)])
    def test_sliver_verdicts_straddle_the_radius_tolerance(self, width, full_dim):
        b = np.array([0.5, -0.5 + width, 1.0, 0.0])
        for polytope in _pair(self.SEGMENT_A, b):
            assert polytope.is_full_dimensional() == full_dim

    def test_unbounded_intermediate_h_representation(self):
        A = np.array([[1.0, 0.0]])
        b = np.array([0.5])
        polytope = ConvexPolytope(A, b, backend="polygon")
        assert not polytope.is_empty()
        assert polytope.is_full_dimensional()
        assert polygon_from_halfspaces(A, b).touches_bound()
        # Bounding it afterwards recovers an ordinary polygon.
        bounded = polytope.intersect_halfspaces(
            [Halfspace([-1.0, 0.0], 0.0), Halfspace([0.0, 1.0], 1.0), Halfspace([0.0, -1.0], 0.0)]
        )
        assert not bounded._ensure_polygon().touches_bound()
        assert bounded.volume() == pytest.approx(0.5)

    def test_grazing_cut_keeps_on_vertices_in_both_children(self):
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend="polygon")
        below, above = square.split(Hyperplane(np.array([1.0, 0.0]), 1.0))
        # `above` is the edge x = 1: non-empty but lower-dimensional.
        assert below.is_full_dimensional()
        assert not above.is_empty()
        assert not above.is_full_dimensional()


class TestPolygonPrimitives:
    """Unit tests of the closed-form polygon operations."""

    def test_build_clip_and_area(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([1.0, 0.0, 1.0, 0.0])
        polygon = polygon_from_halfspaces(A, b)
        assert polygon.n_vertices == 4
        assert not polygon.touches_bound()
        assert polygon.area() == pytest.approx(1.0)
        clipped = polygon.clip(np.array([1.0, 1.0]) / np.sqrt(2), 1.0 / np.sqrt(2), label=4)
        assert clipped.area() == pytest.approx(0.5)
        assert 4 in set(clipped.edge_labels.tolist())

    def test_cut_shares_edge_label_and_crossing_bytes(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([1.0, 0.0, 1.0, 0.0])
        polygon = polygon_from_halfspaces(A, b)
        below, above = polygon.cut(np.array([1.0, 0.0]), 0.25, label=4)
        assert below.area() + above.area() == pytest.approx(1.0)
        assert 4 in set(below.edge_labels.tolist())
        assert 4 in set(above.edge_labels.tolist())
        below_bytes = {p.tobytes() for p in below.points}
        above_bytes = {p.tobytes() for p in above.points}
        assert len(below_bytes & above_bytes) == 2

    def test_centroid_is_interior(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            A, b = _random_halfspace_system(rng, 4)
            polygon = polygon_from_halfspaces(A, b)
            if polygon.n_vertices < 3:
                continue
            centroid = polygon.centroid()
            assert np.all(A @ centroid - b < 1e-9)

    def test_polygon_chebyshev_of_rectangle(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([4.0, 0.0, 1.0, 0.0])
        polygon = polygon_from_halfspaces(A, b)
        center, radius = polygon_chebyshev(A, b, polygon)
        assert radius == pytest.approx(0.5)
        assert center[1] == pytest.approx(0.5)
        lp_center, lp_radius = chebyshev_center(A, b)
        assert radius == pytest.approx(lp_radius, abs=1e-9)

    def test_empty_polygon_chebyshev(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.0, -1.0])
        polygon = polygon_from_halfspaces(A, b)
        assert polygon.is_empty()
        center, radius = polygon_chebyshev(A, b, polygon)
        assert center is None and radius == float("-inf")


class TestChebyshevSpelling:
    """`chebyshev_center` is canonical; the British spelling is deprecated.

    Both deprecated aliases (the module function and the
    :class:`ConvexPolytope` property) must actually *emit* a
    ``DeprecationWarning`` naming the replacement, and must return exactly
    — to the byte — what the canonical spelling returns.
    """

    def test_function_alias_warns_and_agrees(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([1.0, 0.0, 1.0, 0.0])
        with pytest.warns(DeprecationWarning, match="use chebyshev_center"):
            alias_center, alias_radius = chebyshev_centre(A, b)
        center, radius = chebyshev_center(A, b)
        assert alias_center.tobytes() == center.tobytes()
        assert alias_radius == radius

    def test_function_alias_forwards_keyword_arguments(self):
        A = np.array([[1.0, 0.0]])
        b = np.array([0.5])
        with pytest.warns(DeprecationWarning):
            _center, alias_radius = chebyshev_centre(A, b, bound=10.0)
        _c, radius = chebyshev_center(A, b, bound=10.0)
        assert alias_radius == radius == pytest.approx(10.0)

    @pytest.mark.parametrize("backend", ["polygon", "qhull"])
    def test_property_alias_warns_and_agrees(self, backend):
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0], backend=backend)
        with pytest.warns(DeprecationWarning, match="use chebyshev_center"):
            alias = square.chebyshev_centre
        assert alias.tobytes() == square.chebyshev_center.tobytes()

    def test_aliases_are_silent_when_unused(self, recwarn):
        square = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0])
        _ = square.chebyshev_center
        _c, _r = chebyshev_center(np.array([[1.0, 0.0]]), np.array([0.5]))
        deprecations = [w for w in recwarn.list if issubclass(w.category, DeprecationWarning)]
        assert not deprecations

    def test_alias_still_importable_from_package_root(self):
        from repro.geometry import chebyshev_centre as root_alias

        assert root_alias is chebyshev_centre
