"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.examples import figure1_dataset, table2_dataset
from repro.data.generators import generate_independent
from repro.preference.region import PreferenceRegion


@pytest.fixture
def figure1():
    """The paper's running-example dataset (Figure 1)."""
    return figure1_dataset()


@pytest.fixture
def table2():
    """The paper's kIPR-testing example dataset (Table 2)."""
    return table2_dataset()


@pytest.fixture
def figure1_region():
    """The running-example preference region wR = [0.2, 0.8]."""
    return PreferenceRegion.interval(0.2, 0.8)


@pytest.fixture
def table2_region():
    """The Table 2 / Figure 2 preference region [0.2, 0.3] x [0.1, 0.2]."""
    return PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])


@pytest.fixture
def small_ind_dataset():
    """A small independent dataset for integration tests."""
    return generate_independent(500, 3, rng=11)


@pytest.fixture
def medium_ind_dataset():
    """A medium independent dataset (d = 4) for solver agreement tests."""
    return generate_independent(2_000, 4, rng=13)


@pytest.fixture
def unit_square_dataset():
    """A tiny hand-written 2-attribute dataset with known structure."""
    values = np.array(
        [
            [0.95, 0.10],
            [0.80, 0.60],
            [0.55, 0.85],
            [0.10, 0.95],
            [0.40, 0.40],
            [0.20, 0.15],
        ]
    )
    return Dataset(values, attribute_names=["x", "y"], name="unit-square")
