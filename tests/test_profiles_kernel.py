"""Parity tests: the vectorized profile kernel against the per-vertex path.

The acceptance bar for the kernel refactor is that the array-backed
:class:`repro.core.profiles.RegionProfiles` produces *bit-identical*
verdicts — kIPR violations (Lemma 3), optimized-test results (Lemma 7) and
consistent top-λ reductions (Lemma 5) — to the legacy
:class:`repro.core.kipr.VertexProfile` path on randomized datasets and
regions, including tie-heavy inputs that stress the ``argpartition`` fast
path's boundary handling.
"""

import numpy as np
import pytest

from repro.core.kipr import (
    WorkingSet,
    consistent_top_lambda,
    find_kipr_violation,
    passes_lemma7,
    region_profiles,
)
from repro.core.profiles import (
    RegionProfiles,
    _topk_order_full,
    _topk_order_partition,
    affine_scores,
    topk_order_matrix,
)
from repro.core.splitting import find_swap_candidates, region_is_rank_invariant
from repro.data.dataset import Dataset
from repro.data.generators import generate_independent
from repro.preference.random_regions import random_hypercube_region
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import r_skyband
from repro.utils.tolerance import DEFAULT_TOL


def random_instance(trial: int):
    """One randomized (working set, region) pair, r-skyband filtered."""
    rng = np.random.default_rng(trial)
    n = int(rng.integers(30, 400))
    d = int(rng.integers(2, 6))
    k = int(rng.integers(1, 9))
    dataset = generate_independent(n, d, rng=trial)
    region = random_hypercube_region(d, float(rng.uniform(0.03, 0.15)), rng=trial + 1000)
    filtered = dataset.subset(r_skyband(dataset, min(k, n), region))
    working = WorkingSet.from_dataset(filtered, min(k, n))
    return working, region


class TestScoreKernel:
    def test_affine_scores_row_subset_invariance(self):
        """Any row subset of the batched score matrix is bit-identical."""
        rng = np.random.default_rng(5)
        vertices = rng.random((12, 4))
        coefficients = rng.standard_normal((200, 4))
        constants = rng.random(200)
        full = affine_scores(vertices, coefficients, constants)
        for i in range(vertices.shape[0]):
            row = affine_scores(vertices[i : i + 1], coefficients, constants)[0]
            assert np.array_equal(row, full[i])

    def test_scores_at_matches_batched_rows(self):
        working, region = random_instance(3)
        profiles = RegionProfiles.of_region(working, region)
        coefficients, constants = working.active_form()
        batched = affine_scores(region.vertices, coefficients, constants)
        for i, vertex in enumerate(region.vertices):
            assert np.array_equal(working.scores_at(vertex), batched[i])
        assert len(profiles) == region.vertices.shape[0]


class TestTopKOrder:
    def test_partition_path_matches_full_sort_on_random_rows(self):
        rng = np.random.default_rng(11)
        scores = rng.random((8, 500))
        ids = np.arange(500)
        k = 10
        fast = _topk_order_partition(scores, ids, k)
        assert fast is not None
        assert np.array_equal(fast, _topk_order_full(scores, ids, k))

    def test_partition_path_declines_on_boundary_ties(self):
        # Row with many identical scores straddling the k boundary: the fast
        # path must refuse rather than return an id-order-dependent set.
        scores = np.zeros((2, 100))
        scores[:, :3] = 1.0  # only 3 clear winners, the rest all tie at 0
        ids = np.arange(100)
        assert _topk_order_partition(scores, ids, 5) is None
        ordered = topk_order_matrix(scores, ids, 5)
        # Ties resolved by ascending id, matching the legacy lexsort.
        assert ordered.tolist() == [[0, 1, 2, 3, 4], [0, 1, 2, 3, 4]]

    def test_tie_heavy_duplicated_options(self):
        """Duplicated rows give exactly-equal scores; verdicts must agree."""
        rng = np.random.default_rng(23)
        base = rng.random((40, 3))
        values = np.vstack([base, base[:20]])  # 20 exact duplicates
        dataset = Dataset(values)
        region = PreferenceRegion.hyperrectangle([(0.3, 0.4), (0.2, 0.3)])
        working = WorkingSet.from_dataset(dataset, 6)
        legacy = region_profiles(working, region)
        vec = RegionProfiles.of_region(working, region)
        for i, profile in enumerate(legacy):
            assert profile.ordered == tuple(int(x) for x in vec.ordered[i])


@pytest.mark.parametrize("trial", range(12))
class TestVerdictParity:
    """Randomized equivalence of every region verdict, per trial."""

    def test_orderings_and_kth(self, trial):
        working, region = random_instance(trial)
        legacy = region_profiles(working, region)
        vec = RegionProfiles.of_region(working, region)
        assert len(legacy) == len(vec)
        for i, profile in enumerate(legacy):
            assert profile.ordered == tuple(int(x) for x in vec.ordered[i])
            assert profile.kth == int(vec.kth[i])
            assert profile.top_set == vec[i].top_set

    def test_kipr_lemma5_lemma7_verdicts(self, trial):
        working, region = random_instance(trial)
        legacy = region_profiles(working, region)
        vec = RegionProfiles.of_region(working, region)
        k = working.k
        assert find_kipr_violation(legacy) == find_kipr_violation(vec)
        assert passes_lemma7(legacy, k) == passes_lemma7(vec, k)
        assert consistent_top_lambda(legacy, k) == consistent_top_lambda(vec, k)

    def test_verdicts_after_lemma5_reduction(self, trial):
        working, region = random_instance(trial)
        vec = RegionProfiles.of_region(working, region)
        lam, phi = vec.consistent_top_lambda(working.k)
        if lam == 0 or working.n_active - lam < 1:
            pytest.skip("Lemma 5 does not fire on this instance")
        reduced = working.without_options(phi, working.k - lam)
        legacy = region_profiles(reduced, region)
        vec2 = RegionProfiles.of_region(reduced, region)
        assert find_kipr_violation(legacy) == find_kipr_violation(vec2)
        for i, profile in enumerate(legacy):
            assert profile.ordered == tuple(int(x) for x in vec2.ordered[i])

    def test_swap_candidates_and_rank_invariance(self, trial):
        working, region = random_instance(trial)
        legacy = region_profiles(working, region)
        vec = RegionProfiles.of_region(working, region)
        legacy_pairs = [
            (c.option_a, c.option_b) for c in find_swap_candidates(working, legacy, DEFAULT_TOL)
        ]
        vec_pairs = [
            (c.option_a, c.option_b) for c in find_swap_candidates(working, vec, DEFAULT_TOL)
        ]
        assert legacy_pairs == vec_pairs
        assert region_is_rank_invariant(working, legacy) == region_is_rank_invariant(working, vec)


class TestLemma5Stat:
    def test_n_after_lemma5_records_root_pruning(self):
        """Table 2 of the paper: Lemma 5 removes p5 at the root (λ = 1)."""
        from repro.core.stats import SolverStats
        from repro.core.tas_star import TASStarSolver
        from repro.data.examples import table2_dataset

        table2 = table2_dataset()
        region = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])
        working = WorkingSet.from_dataset(table2, 3)
        lam, _phi = RegionProfiles.of_region(working, region).consistent_top_lambda(3)
        assert lam == 1  # the paper's worked example

        stats = SolverStats()
        TASStarSolver().partition(table2, 3, region, stats=stats)
        assert stats.n_after_lemma5 == table2.n_options - lam

    def test_n_after_lemma5_untouched_when_root_does_not_fire(self):
        from repro.core.stats import SolverStats
        from repro.core.tas import TASSolver
        from repro.core.tas_star import TASStarSolver

        dataset = generate_independent(3_000, 4, rng=7)
        region = random_hypercube_region(4, 0.05, rng=8)
        k = 10
        filtered = dataset.subset(r_skyband(dataset, k, region))
        working = WorkingSet.from_dataset(filtered, k)
        lam, _phi = RegionProfiles.of_region(working, region).consistent_top_lambda(k)
        assert lam == 0  # root top-1 sets disagree on this instance

        star_stats = SolverStats()
        TASStarSolver().partition(filtered, k, region, stats=star_stats)
        # Lemma 5 fires deeper in the recursion, but those reductions are
        # subtree-local and must not masquerade as the initial pruning.
        assert star_stats.n_lemma5_reductions > 0
        assert star_stats.n_after_lemma5 == filtered.n_options

        tas_stats = SolverStats()
        TASSolver().partition(filtered, k, region, stats=tas_stats)
        # No Lemma 5 in plain TAS: the candidate set is unchanged.
        assert tas_stats.n_after_lemma5 == filtered.n_options


class TestSequenceProtocol:
    def test_getitem_and_iteration(self):
        working, region = random_instance(7)
        vec = RegionProfiles.of_region(working, region)
        profiles = list(vec)
        assert len(profiles) == len(vec)
        first = vec[0]
        assert first.kth == profiles[0].kth
        assert first.prefix_set(2) == profiles[0].prefix_set(2)

    def test_without_options_isin_matches_comprehension(self):
        working, _region = random_instance(9)
        drop = [int(working.active[0]), int(working.active[-1])]
        smaller = working.without_options(drop, new_k=max(1, working.k - 1))
        expected = [int(i) for i in working.active if int(i) not in set(drop)]
        assert smaller.active.tolist() == expected
        assert smaller.k == max(1, working.k - 1)
