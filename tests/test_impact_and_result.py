"""Unit tests for impact halfspaces, the oR construction and the TopRRResult API."""

import numpy as np
import pytest

from repro.core.impact import build_impact_region, impact_halfspace, impact_thresholds, is_top_ranking
from repro.core.toprr import make_solver, solve_toprr
from repro.core.tas_star import TASStarSolver
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.topk.query import top_k_score


class TestImpactHalfspace:
    def test_membership_matches_definition(self, figure1):
        weight = np.array([0.5, 0.5])
        threshold = top_k_score(figure1, weight, 3)
        halfspace = impact_halfspace(weight, threshold)
        # p2 scores 0.8 >= threshold, p6 scores 0.1 < threshold.
        assert halfspace.contains(figure1.values[1])
        assert not halfspace.contains(figure1.values[5])

    def test_thresholds_match_topk_scores(self, figure1, figure1_region):
        space = PreferenceSpace(2)
        vertices = figure1_region.vertices
        thresholds = impact_thresholds(figure1, vertices, 3)
        for vertex, threshold in zip(vertices, thresholds):
            assert threshold == pytest.approx(top_k_score(figure1, space.to_full(vertex), 3))

    def test_is_top_ranking_direct(self, figure1, figure1_region):
        vertices = figure1_region.vertices
        thresholds = impact_thresholds(figure1, vertices, 3)
        space = PreferenceSpace(2)
        full = space.to_full_many(vertices)
        assert is_top_ranking([1.0, 1.0], full, thresholds)
        assert not is_top_ranking([0.0, 0.0], full, thresholds)


class TestBuildImpactRegion:
    def test_region_contains_top_corner(self, figure1, figure1_region):
        polytope, _, _ = build_impact_region(figure1, figure1_region.vertices, 3)
        assert polytope.contains(np.ones(2))

    def test_clipping_to_unit_box(self, figure1, figure1_region):
        polytope, _, _ = build_impact_region(
            figure1, figure1_region.vertices, 3, clip_to_unit_box=True
        )
        assert not polytope.contains(np.array([1.5, 1.5]))

    def test_custom_bounds(self, figure1, figure1_region):
        bounds = (np.zeros(2), np.full(2, 2.0))
        polytope, _, _ = build_impact_region(
            figure1, figure1_region.vertices, 3, clip_to_unit_box=False, bounds=bounds
        )
        assert polytope.contains(np.array([1.5, 1.5]))


class TestSolveToprrValidation:
    def test_invalid_k(self, figure1, figure1_region):
        with pytest.raises(InvalidParameterError):
            solve_toprr(figure1, 0, figure1_region)
        with pytest.raises(InvalidParameterError):
            solve_toprr(figure1, 100, figure1_region)

    def test_region_dataset_mismatch(self, table2):
        region = PreferenceRegion.interval(0.2, 0.8)  # 2-attribute region
        with pytest.raises(InvalidParameterError):
            solve_toprr(table2, 2, region)

    def test_unknown_method(self, figure1, figure1_region):
        with pytest.raises(InvalidParameterError):
            solve_toprr(figure1, 2, figure1_region, method="magic")

    def test_make_solver_passthrough(self):
        solver = TASStarSolver(use_lemma7=False)
        assert make_solver(solver) is solver
        assert make_solver("TAS").name == "TAS"
        assert make_solver("pac").name == "PAC"

    def test_no_prefilter_gives_same_region(self, figure1, figure1_region):
        filtered = solve_toprr(figure1, 3, figure1_region, prefilter=True)
        unfiltered = solve_toprr(figure1, 3, figure1_region, prefilter=False)
        probes = np.random.default_rng(0).random((200, 2))
        assert np.array_equal(filtered.contains_many(probes), unfiltered.contains_many(probes))


class TestTopRRResultAPI:
    @pytest.fixture
    def result(self, figure1, figure1_region):
        return solve_toprr(figure1, 3, figure1_region)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert {"method", "k", "n_options", "n_filtered", "n_vertices", "volume", "seconds"} <= set(
            summary
        )

    def test_contains_many_matches_contains(self, result):
        probes = np.random.default_rng(4).random((50, 2))
        vector = result.contains_many(probes)
        scalar = np.array([result.contains(p) for p in probes])
        assert np.array_equal(vector, scalar)

    def test_volume_positive_and_bounded(self, result):
        assert 0.0 < result.volume() <= 1.0

    def test_option_region_vertices_inside_unit_box(self, result):
        vertices = result.option_region_vertices
        assert np.all(vertices >= -1e-9) and np.all(vertices <= 1 + 1e-9)

    def test_not_empty(self, result):
        assert not result.is_empty()

    def test_stats_recorded(self, result):
        stats = result.stats.as_dict()
        assert stats["n_input_options"] == 6
        assert stats["n_vertices"] == result.n_vertices
        assert stats["seconds"] > 0
