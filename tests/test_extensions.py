"""Tests for the core extensions: sampled baseline, parallel solving, pre-computation."""

import numpy as np
import pytest

from repro.core.parallel import solve_toprr_parallel, split_region_into_boxes
from repro.core.precompute import PrecomputedTopRR, region_fingerprint
from repro.core.sampled import evaluate_sampled_exactness, sampled_toprr
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion


@pytest.fixture(scope="module")
def market():
    return generate_independent(2_000, 3, rng=101)


@pytest.fixture(scope="module")
def region():
    return PreferenceRegion.hyperrectangle([(0.3, 0.38), (0.28, 0.36)])


@pytest.fixture(scope="module")
def exact_result(market, region):
    return solve_toprr(market, 8, region)


class TestSampledBaseline:
    def test_sampled_region_is_a_superset_of_the_exact_one(self, market, region, exact_result):
        sampled = sampled_toprr(market, 8, region, n_samples=16, rng=3)
        probes = np.random.default_rng(0).random((600, 3))
        exact_accept = exact_result.contains_many(probes)
        sampled_accept = sampled.contains_many(probes)
        # Everything the exact region accepts must also be accepted by the
        # sampled one (fewer halfspaces are intersected).
        assert np.all(sampled_accept[exact_accept])

    def test_exactness_report_structure(self, market, region, exact_result):
        sampled = sampled_toprr(market, 8, region, n_samples=8, rng=5)
        report = evaluate_sampled_exactness(exact_result, sampled, n_probes=400, rng=7)
        assert report.n_probes == 400
        assert 0.0 <= report.false_accept_rate <= 1.0
        assert 0.0 <= report.worst_uncovered_fraction <= 1.0
        assert report.is_exact == (report.n_false_accepts == 0)

    def test_more_samples_do_not_increase_false_accepts(self, market, region, exact_result):
        few = sampled_toprr(market, 8, region, n_samples=4, include_vertices=False, rng=11)
        many = sampled_toprr(market, 8, region, n_samples=256, include_vertices=False, rng=11)
        report_few = evaluate_sampled_exactness(exact_result, few, n_probes=500, rng=13)
        report_many = evaluate_sampled_exactness(exact_result, many, n_probes=500, rng=13)
        assert report_many.n_false_accepts <= report_few.n_false_accepts

    def test_method_label_and_stats(self, market, region):
        sampled = sampled_toprr(market, 8, region, n_samples=12, rng=1)
        assert "sampled" in sampled.method
        assert sampled.stats.extra["n_samples"] == 12

    def test_invalid_parameters(self, market, region):
        with pytest.raises(InvalidParameterError):
            sampled_toprr(market, 0, region)
        with pytest.raises(InvalidParameterError):
            sampled_toprr(market, 5, region, n_samples=0)
        with pytest.raises(InvalidParameterError):
            sampled_toprr(market, 5, PreferenceRegion.interval(0.2, 0.4))

    def test_mismatched_instances_rejected(self, market, region, exact_result):
        other = solve_toprr(market, 3, region)
        sampled = sampled_toprr(market, 8, region, n_samples=8)
        with pytest.raises(InvalidParameterError):
            evaluate_sampled_exactness(other, sampled)


class TestRegionChopping:
    def test_pieces_cover_the_region(self, region):
        pieces = split_region_into_boxes(region, 4)
        assert len(pieces) >= 2
        total = sum(piece.volume() for piece in pieces)
        assert total == pytest.approx(region.volume(), rel=1e-6)

    def test_single_piece_request(self, region):
        pieces = split_region_into_boxes(region, 1)
        assert len(pieces) == 1
        assert pieces[0].volume() == pytest.approx(region.volume())

    def test_invalid_piece_count(self, region):
        with pytest.raises(InvalidParameterError):
            split_region_into_boxes(region, 0)


class TestParallelSolving:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_matches_sequential_answer(self, market, region, exact_result, executor):
        parallel = solve_toprr_parallel(
            market, 8, region, n_workers=2, n_pieces=4, executor=executor
        )
        probes = np.random.default_rng(17).random((500, 3))
        assert np.array_equal(
            parallel.contains_many(probes), exact_result.contains_many(probes)
        )
        assert parallel.stats.extra["n_pieces"] >= 2

    def test_process_executor_smoke(self, region):
        # Keep the instance small: process start-up dominates at this scale,
        # the point is only that the pool path works end to end.
        small = generate_independent(400, 3, rng=3)
        sequential = solve_toprr(small, 5, region)
        parallel = solve_toprr_parallel(
            small, 5, region, n_workers=2, n_pieces=2, executor="process"
        )
        probes = np.random.default_rng(19).random((300, 3))
        assert np.array_equal(
            parallel.contains_many(probes), sequential.contains_many(probes)
        )

    def test_invalid_parameters(self, market, region):
        with pytest.raises(InvalidParameterError):
            solve_toprr_parallel(market, 0, region)
        with pytest.raises(InvalidParameterError):
            solve_toprr_parallel(market, 5, region, n_workers=0)
        with pytest.raises(InvalidParameterError):
            solve_toprr_parallel(market, 5, region, executor="gpu")


class TestPrecomputedTopRR:
    def test_matches_unindexed_answer(self, market, region):
        index = PrecomputedTopRR(market, k_max=10)
        direct = solve_toprr(market, 8, region)
        indexed = index.solve(8, region)
        probes = np.random.default_rng(23).random((500, 3))
        assert np.array_equal(indexed.contains_many(probes), direct.contains_many(probes))
        assert np.allclose(np.sort(indexed.thresholds), np.sort(direct.thresholds))

    def test_candidate_set_is_much_smaller(self, market):
        index = PrecomputedTopRR(market, k_max=10)
        assert index.skyband_size < market.n_options
        assert index.reduction_factor > 2

    def test_cache_hits_on_repeated_queries(self, market, region):
        index = PrecomputedTopRR(market, k_max=10)
        first = index.solve(5, region)
        second = index.solve(5, region)
        assert second is first
        assert index.cache_info()["hits"] == 1
        # A different k is a different cache entry.
        index.solve(6, region)
        assert index.cache_info()["entries"] == 2

    def test_existing_options_reported_in_original_indices(self, market, region):
        index = PrecomputedTopRR(market, k_max=10)
        indexed = index.solve(8, region)
        direct = solve_toprr(market, 8, region)
        assert set(indexed.existing_top_ranking_options().tolist()) == set(
            direct.existing_top_ranking_options().tolist()
        )

    def test_k_beyond_kmax_falls_back(self, market, region):
        index = PrecomputedTopRR(market, k_max=3)
        result = index.solve(6, region)
        direct = solve_toprr(market, 6, region)
        probes = np.random.default_rng(29).random((300, 3))
        assert np.array_equal(result.contains_many(probes), direct.contains_many(probes))

    def test_fingerprint_distinguishes_regions(self, region):
        other = PreferenceRegion.hyperrectangle([(0.31, 0.38), (0.28, 0.36)])
        assert region_fingerprint(region) != region_fingerprint(other)
        assert region_fingerprint(region) == region_fingerprint(region)

    def test_invalid_parameters(self, market, region):
        with pytest.raises(InvalidParameterError):
            PrecomputedTopRR(market, k_max=0)
        index = PrecomputedTopRR(market, k_max=5)
        with pytest.raises(InvalidParameterError):
            index.solve(0, region)
        with pytest.raises(InvalidParameterError):
            index.solve(3, PreferenceRegion.interval(0.2, 0.4))


class TestParallelIncrementalRouting:
    """The chopped-region path routes through the shared split-tree memo."""

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_incremental_matches_from_scratch(self, market, region, executor):
        incremental = solve_toprr_parallel(
            market, 8, region, n_workers=2, n_pieces=4, executor=executor, incremental=True
        )
        scratch = solve_toprr_parallel(
            market, 8, region, n_workers=2, n_pieces=4, executor=executor, incremental=False
        )
        assert incremental.vertices_reduced.tobytes() == scratch.vertices_reduced.tobytes()
        assert incremental.thresholds.tobytes() == scratch.thresholds.tobytes()
        # memo counters are live on the incremental path and silent otherwise
        stats = incremental.stats
        assert stats.n_score_rows_computed > 0
        assert stats.n_score_rows_reused > 0
        assert stats.n_score_batches > 0
        assert scratch.stats.n_score_rows_computed == 0
        assert scratch.stats.n_score_batches == 0

    def test_shared_memo_reuses_rows_across_pieces(self, market, region):
        # Piece-boundary vertices are shared between adjacent pieces; with the
        # serial executor all pieces feed one memo, so reuse must exceed what
        # any single piece's split tree could produce alone.
        result = solve_toprr_parallel(
            market, 8, region, n_workers=1, n_pieces=4, executor="serial"
        )
        stats = result.stats
        assert stats.n_score_rows_reused > 0
        assert stats.extra["n_pieces"] == stats.extra["n_pieces_requested"] == 4


class TestDegenerateChopping:
    def test_thin_region_warns_once_and_reports_shortfall(self):
        import warnings

        import repro.core.parallel as parallel_mod

        thin = PreferenceRegion.hyperrectangle(
            [(0.3, 0.3 + 1e-12), (0.3, 0.3 + 1e-12)]
        )
        parallel_mod._degenerate_split_warned = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = split_region_into_boxes(thin, 4)
                second = split_region_into_boxes(thin, 4)
            assert len(first) == 1 and len(second) == 1
            runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
            assert len(runtime) == 1  # warn once per process, not per call
            assert "4" in str(runtime[0].message)
        finally:
            parallel_mod._degenerate_split_warned = False

    def test_requested_piece_count_lands_in_stats(self):
        small = generate_independent(300, 3, rng=23)
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.3, 0.36)])
        result = solve_toprr_parallel(small, 4, region, n_pieces=3, executor="serial")
        assert result.stats.extra["n_pieces_requested"] == 3
        assert result.stats.extra["n_pieces"] <= 3
