"""Regression tests for the shared-memory segment lifecycle guards.

The no-leak invariant: after any sharded run — healthy, crashing, or
abandoned mid-query — no ``toprr_*`` segment created by the coordinator
survives on the host.  These tests pin every rung of the guard stack:
idempotent ``close``/``unlink``, the context-manager error path, the
``weakref`` finalizer on dropped references, the ``atexit`` hook on
interpreters that never clean up, and the end-to-end crashed-worker run.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.faults import FaultPlan, FaultSpec
from repro.core.sharded import solve_toprr_sharded
from repro.data.generators import generate_independent
from repro.data.sharding import (
    SEGMENT_PREFIX,
    SharedMatrix,
    attach_shared_matrix,
    leaked_segments,
)
from repro.preference.random_regions import random_hypercube_region


def own_leaked_segments():
    """This process's segments still present under ``/dev/shm``."""
    prefix = f"{SEGMENT_PREFIX}{os.getpid():x}_"
    return [name for name in leaked_segments() if name.startswith(prefix)]


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


class TestIdempotentCleanup:
    def test_unlink_is_idempotent(self):
        shared = SharedMatrix.create_from(np.ones((4, 3)))
        name = shared.name
        assert _segment_exists(name)
        shared.unlink()
        assert not _segment_exists(name)
        shared.unlink()  # second unlink must be a no-op, not an error
        shared.close()  # and close after unlink likewise

    def test_close_then_unlink(self):
        shared = SharedMatrix.create_from(np.ones((2, 2)))
        name = shared.name
        shared.close()
        shared.close()
        assert _segment_exists(name)  # close releases the mapping only
        shared.unlink()
        assert not _segment_exists(name)

    def test_context_manager_unlinks_on_error(self):
        name = None
        with pytest.raises(RuntimeError):
            with SharedMatrix.create_from(np.zeros((3, 3))) as shared:
                name = shared.name
                assert _segment_exists(name)
                raise RuntimeError("query failed mid-flight")
        assert not _segment_exists(name)

    def test_attached_copy_never_unlinks(self):
        with SharedMatrix.create_from(np.arange(6.0).reshape(2, 3)) as shared:
            attached = attach_shared_matrix(shared.spec)
            assert np.array_equal(attached.array, shared.array)
            attached.unlink()  # non-owner: releases its mapping only
            assert _segment_exists(shared.name)


class TestUnattendedCleanup:
    def test_finalizer_releases_dropped_reference(self):
        shared = SharedMatrix.create_from(np.ones((8, 2)))
        name = shared.name
        del shared
        gc.collect()
        assert not _segment_exists(name)

    def test_atexit_releases_on_interpreter_exit(self, tmp_path):
        # A child interpreter creates an owned segment and exits *without*
        # unlinking; the module's atexit hook must still reclaim it.
        script = (
            "import sys, numpy as np\n"
            "from repro.data.sharding import SharedMatrix\n"
            "shared = SharedMatrix.create_from(np.ones((16, 4)))\n"
            "print(shared.name)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            check=True,
        )
        name = result.stdout.strip().splitlines()[-1]
        assert name.startswith(SEGMENT_PREFIX)
        assert not _segment_exists(name)


class TestEndToEndNoLeaks:
    def test_no_orphans_after_crashed_worker_run(self, tmp_path):
        # The original leak: a worker crashed hard while attached, the query
        # aborted, and the coordinator's segment survived in /dev/shm.  The
        # supervised path must finish the query and reclaim the segment.
        dataset = generate_independent(400, 3, rng=51)
        region = random_hypercube_region(3, 0.07, rng=52)
        plan = FaultPlan(
            specs=[FaultSpec(point="kernel", key=0, kind="crash", times=1)],
            state_dir=str(tmp_path),
        )
        before = own_leaked_segments()
        with plan.installed():
            result = solve_toprr_sharded(
                dataset, 5, region, n_shards=3, executor="process", shard_retries=2
            )
        assert result.stats.n_worker_crashes == 1
        assert own_leaked_segments() == before == []
