"""Numeric graceful degradation of the closed-form geometry backends.

Covers the structural health validators (:func:`polygon_is_consistent`,
:func:`polyhedron_is_consistent`) in both directions — corrupted bodies are
rejected, healthy-but-gnarly bodies (per-face vertex copies, zero-area
sliver faces) are accepted — and the polytope-level demotion: a region whose
closed-form body fails validation falls back to the generic LP/qhull path
with identical answers, a bumped ``n_backend_fallbacks`` counter, and a
once-per-process warning.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.geometry.polytope as polytope_module
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.geometry.counters import geometry_counters
from repro.geometry.polygon import Polygon, polygon_from_halfspaces, polygon_is_consistent
from repro.geometry.polyhedron import (
    Polyhedron,
    polyhedron_from_halfspaces,
    polyhedron_is_consistent,
)
from repro.geometry.polytope import ConvexPolytope, use_backend
from repro.preference.random_regions import random_hypercube_region


def _unit_square_polygon() -> Polygon:
    A = np.vstack([np.eye(2), -np.eye(2)])
    b = np.array([1.0, 1.0, 0.0, 0.0])
    return polygon_from_halfspaces(A, b)


def _unit_cube_polyhedron() -> Polyhedron:
    A = np.vstack([np.eye(3), -np.eye(3)])
    b = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
    return polyhedron_from_halfspaces(A, b)


class TestPolygonValidator:
    def test_healthy_square_passes(self):
        assert polygon_is_consistent(_unit_square_polygon())

    def test_degenerate_bodies_pass(self):
        assert polygon_is_consistent(Polygon(np.empty((0, 2)), np.empty(0, dtype=int)))
        assert polygon_is_consistent(Polygon(np.array([[0.5, 0.5]]), np.array([0])))

    def test_nan_vertex_fails(self):
        square = _unit_square_polygon()
        points = square.points.copy()
        points[0, 0] = np.nan
        assert not polygon_is_consistent(Polygon(points, square.edge_labels))

    def test_inf_vertex_fails(self):
        square = _unit_square_polygon()
        points = square.points.copy()
        points[1, 1] = np.inf
        assert not polygon_is_consistent(Polygon(points, square.edge_labels))

    def test_clockwise_ring_fails(self):
        # The class invariant is counter-clockwise order; a reversed ring
        # means the ordering broke somewhere upstream.
        square = _unit_square_polygon()
        assert not polygon_is_consistent(Polygon(square.points[::-1], square.edge_labels))


class TestPolyhedronValidator:
    def test_healthy_cube_passes(self):
        assert polyhedron_is_consistent(_unit_cube_polyhedron())

    def test_degenerate_bodies_pass(self):
        assert polyhedron_is_consistent(Polyhedron(np.empty((0, 3)), []))
        assert polyhedron_is_consistent(Polyhedron(np.array([[0.1, 0.2, 0.3]]), []))

    def test_nan_vertex_fails(self):
        cube = _unit_cube_polyhedron()
        points = cube.points.copy()
        points[0, 2] = np.nan
        assert not polyhedron_is_consistent(Polyhedron(points, cube.faces))

    def test_dropped_face_fails(self):
        # Removing one face tears the surface: its edges are now one-covered.
        cube = _unit_cube_polyhedron()
        assert not polyhedron_is_consistent(Polyhedron(cube.points, cube.faces[1:]))

    def test_short_ring_fails(self):
        cube = _unit_cube_polyhedron()
        faces = list(cube.faces)
        ring, label = faces[0]
        faces[0] = (ring[:2], label)
        assert not polyhedron_is_consistent(Polyhedron(cube.points, faces))

    def test_out_of_range_index_fails(self):
        cube = _unit_cube_polyhedron()
        faces = list(cube.faces)
        ring, label = faces[0]
        bad = ring.copy()
        bad[0] = cube.n_vertices + 7
        faces[0] = (bad, label)
        assert not polyhedron_is_consistent(Polyhedron(cube.points, faces))

    def test_repeated_index_in_ring_fails(self):
        cube = _unit_cube_polyhedron()
        faces = list(cube.faces)
        ring, label = faces[0]
        bad = ring.copy()
        bad[1] = bad[0]
        faces[0] = (bad, label)
        assert not polyhedron_is_consistent(Polyhedron(cube.points, faces))

    def test_per_face_vertex_copies_pass(self):
        # Regression: the clipper emits per-face *copies* of shared corners,
        # so raw indices never agree across faces.  Edge identity must be
        # geometric — a body whose faces each reference their own copy of
        # every vertex is perfectly healthy.
        cube = _unit_cube_polyhedron()
        n = cube.n_vertices
        doubled = np.vstack([cube.points, cube.points])
        faces = [
            (ring + (n if face_index % 2 else 0), label)
            for face_index, (ring, label) in enumerate(cube.faces)
        ]
        assert polyhedron_is_consistent(Polyhedron(doubled, faces))

    def test_zero_area_sliver_face_passes(self):
        # Regression: near-degenerate clips can leave a face whose ring
        # collapses to a segment (distinct indices, coincident coordinates).
        # It has no area and borders nothing, so it must not read as a tear.
        cube = _unit_cube_polyhedron()
        n = cube.n_vertices
        doubled = np.vstack([cube.points, cube.points])
        faces = [(ring, label) for ring, label in cube.faces]
        a, b = int(faces[0][0][0]), int(faces[0][0][1])
        faces.append((np.array([a, b, b + n, a + n]), 99))
        assert polyhedron_is_consistent(Polyhedron(doubled, faces))

    def test_near_duplicate_coordinates_merge(self):
        # Copies that differ by strictly sub-tolerance noise still merge.
        cube = _unit_cube_polyhedron()
        n = cube.n_vertices
        jitter = np.full((n, 3), 1e-13)
        doubled = np.vstack([cube.points, cube.points + jitter])
        faces = [
            (ring + (n if face_index % 2 else 0), label)
            for face_index, (ring, label) in enumerate(cube.faces)
        ]
        assert polyhedron_is_consistent(Polyhedron(doubled, faces))


def _corrupt_polygon(polytope: ConvexPolytope) -> None:
    """Plant a NaN-vertex polygon body inside ``polytope`` (test-only)."""
    body = polytope._ensure_polygon()
    points = body.points.copy()
    points[0, 0] = np.nan
    polytope._polygon = Polygon(points, body.edge_labels)


def _corrupt_polyhedron(polytope: ConvexPolytope) -> None:
    """Tear one face off ``polytope``'s polyhedron body (test-only)."""
    body = polytope._ensure_polyhedron()
    polytope._polyhedron = Polyhedron(body.points, body.faces[1:])


class TestPolytopeDemotion:
    @pytest.fixture(autouse=True)
    def _quiet_warn_latch(self, monkeypatch):
        # Each test starts with the once-per-process warning already spent,
        # except where the test flips it back to assert the warning itself.
        monkeypatch.setattr(polytope_module, "_WARNED_BACKEND_FALLBACK", True)

    def test_corrupt_polygon_demotes_to_qhull_with_exact_answers(self):
        box = ConvexPolytope.from_box([0.0, 0.0], [1.0, 1.0])
        twin = ConvexPolytope(*box.halfspaces, backend="qhull")
        assert box.backend == "polygon"
        _corrupt_polygon(box)
        before = geometry_counters.snapshot()
        vertices = box.vertices
        assert box.backend == "qhull"
        assert np.array_equal(vertices, twin.vertices)
        assert geometry_counters.delta(before)[3] == 1

    def test_corrupt_polyhedron_demotes_to_qhull_with_exact_answers(self):
        box = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        twin = ConvexPolytope(*box.halfspaces, backend="qhull")
        assert box.backend == "polyhedron"
        _corrupt_polyhedron(box)
        before = geometry_counters.snapshot()
        vertices = box.vertices
        assert box.backend == "qhull"
        assert np.array_equal(vertices, twin.vertices)
        assert box.chebyshev_radius == pytest.approx(twin.chebyshev_radius)
        assert geometry_counters.delta(before)[3] == 1

    def test_healthy_bodies_are_not_demoted(self):
        box = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        before = geometry_counters.snapshot()
        assert box.vertices.shape == (8, 3)
        assert box.backend == "polyhedron"
        assert geometry_counters.delta(before)[3] == 0

    def test_validation_happens_once_per_region(self):
        box = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        _corrupt_polyhedron(box)
        before = geometry_counters.snapshot()
        box.vertices
        box.volume()
        box.chebyshev_radius
        assert geometry_counters.delta(before)[3] == 1  # demoted exactly once

    def test_demotion_warns_once(self, monkeypatch):
        monkeypatch.setattr(polytope_module, "_WARNED_BACKEND_FALLBACK", False)
        first = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        _corrupt_polyhedron(first)
        with pytest.warns(RuntimeWarning, match="inconsistent polyhedron"):
            first.vertices
        second = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        _corrupt_polyhedron(second)
        with warnings_none():
            second.vertices

    def test_derived_polytope_keeps_backend_spec(self):
        # Demotion is per-region: a child rebuilt from (A, b) starts fresh
        # on the closed-form backend instead of inheriting the demotion.
        box = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3)
        _corrupt_polyhedron(box)
        box.vertices
        assert box.backend == "qhull"
        child = ConvexPolytope(*box.halfspaces, backend=box._backend_spec)
        assert child.backend in ("polyhedron", "auto") or child._use_polyhedron
        assert child.vertices.shape == (8, 3)


class warnings_none:
    """Context manager asserting that no warning is raised inside it."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        import warnings as w

        w.simplefilter("always")
        return self

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        assert self._records == [], f"unexpected warnings: {self._records}"


class TestSolverLevelDegradation:
    def test_corrupted_backend_solve_matches_qhull_reference(self, monkeypatch):
        # Force every polyhedron body to read as corrupt: the solver must
        # demote each region to the LP/qhull path, count every demotion, and
        # still produce byte-identical results to a pure qhull-backend run.
        dataset = generate_independent(200, 3, rng=61)
        region = random_hypercube_region(3, 0.08, rng=62)
        with use_backend("qhull"):
            reference = solve_toprr(dataset, 4, region)
        monkeypatch.setattr(polytope_module, "_WARNED_BACKEND_FALLBACK", True)
        monkeypatch.setattr(polytope_module, "polygon_is_consistent", lambda body: False)
        monkeypatch.setattr(polytope_module, "polyhedron_is_consistent", lambda body: False)
        degraded = solve_toprr(dataset, 4, region)
        assert degraded.vertices_reduced.tobytes() == reference.vertices_reduced.tobytes()
        assert degraded.thresholds.tobytes() == reference.thresholds.tobytes()
        assert degraded.stats.n_backend_fallbacks > 0
        assert degraded.stats.as_dict()["n_backend_fallbacks"] > 0

    def test_healthy_solve_counts_zero_fallbacks(self):
        dataset = generate_independent(200, 3, rng=63)
        region = random_hypercube_region(3, 0.08, rng=64)
        result = solve_toprr(dataset, 4, region)
        assert result.stats.n_backend_fallbacks == 0
