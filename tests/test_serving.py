"""Tests for the HTTP serving layer: endpoints, coalescing, warm restarts.

Each test boots a real replica (:func:`start_server_thread` — the asyncio
server on a private loop in a daemon thread) and drives it over actual
sockets with the stdlib client, so the request parsing, routing, error
mapping, reader-writer exclusion and coalescing paths are all exercised
as deployed, not mocked.
"""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.generators import generate_synthetic
from repro.engine import TopRREngine
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.serving import (
    EngineRegistry,
    MutateRequest,
    SolveRequest,
    region_from_spec,
    request_json,
    start_server_thread,
)
from repro.serving.registry import AsyncReadWriteLock

REGION = {"intervals": [[0.2, 0.6], [0.1, 0.5]]}


@pytest.fixture
def replica():
    """A running single-dataset replica; yields ``(url, engine)``."""
    dataset = generate_synthetic("IND", 80, 3, rng=7)
    engine = TopRREngine(dataset, rng=7)
    registry = EngineRegistry()
    registry.add("default", engine)
    handle = start_server_thread(registry)
    try:
        yield handle.url, engine
    finally:
        handle.stop()


class TestEndpoints:
    def test_health(self, replica):
        url, _engine = replica
        status, body = request_json(url, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == ["default"]

    def test_metrics_never_keyerrors_on_a_fresh_replica(self, replica):
        # The satellite contract: every counter (including the mutation
        # block) exists from construction, before any request was served.
        url, _engine = replica
        status, body = request_json(url, "GET", "/metrics")
        assert status == 200
        entry = body["datasets"]["default"]
        assert entry["requests"] == {"solve": 0, "batch": 0, "mutate": 0}
        assert entry["n_coalesced"] == 0
        assert entry["n_result_cache_hits"] == 0
        assert entry["latency"]["count"] == 0
        mutations = entry["cache"]["mutations"]
        assert mutations["n_deltas"] == 0
        assert mutations["n_entries_survived"] == 0

    def test_solve_then_cache_hit_is_byte_identical(self, replica):
        url, _engine = replica
        status, first = request_json(url, "POST", "/solve", {"k": 3, "region": REGION})
        assert status == 200
        assert first["served"]["cache_hit"] is False
        status, second = request_json(url, "POST", "/solve", {"k": 3, "region": REGION})
        assert status == 200
        assert second["served"]["cache_hit"] is True
        assert second["result"] == first["result"]

    def test_solve_with_halfspace_region(self, replica):
        url, _engine = replica
        spec = {"A": [[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]],
                "b": [0.6, -0.2, 0.5, -0.1]}
        status, body = request_json(url, "POST", "/solve", {"k": 3, "region": spec})
        assert status == 200
        assert body["result"]["k"] == 3

    def test_solve_without_cache_recomputes(self, replica):
        url, _engine = replica
        request_json(url, "POST", "/solve", {"k": 3, "region": REGION})
        status, body = request_json(
            url, "POST", "/solve", {"k": 3, "region": REGION, "use_cache": False}
        )
        assert status == 200
        assert body["served"]["cache_hit"] is False

    def test_batch(self, replica):
        url, _engine = replica
        status, body = request_json(url, "POST", "/batch", {"queries": [
            {"k": 2, "region": REGION},
            {"k": 3, "region": REGION},
            {"k": 2, "region": REGION},
        ]})
        assert status == 200
        assert body["n_queries"] == 3
        # the third query repeats the first: answered from cache, identically
        assert body["responses"][2]["served"]["cache_hit"] is True
        assert body["responses"][2]["result"] == body["responses"][0]["result"]

    def test_mutate_bumps_the_dataset_version(self, replica):
        url, engine = replica
        before = engine.dataset.version
        status, body = request_json(url, "POST", "/mutate", {
            "insert": {"values": [[0.5, 0.5, 0.5]]},
            "delete": {"positions": [0]},
        })
        assert status == 200
        assert body["n_options"] == 80  # one in, one out
        assert body["version"] == before + 2
        assert [r["step"] for r in body["reports"]] == ["insert", "delete"]
        # the mutated replica still solves
        status, solved = request_json(url, "POST", "/solve", {"k": 3, "region": REGION})
        assert status == 200

    def test_mutation_counters_surface_in_metrics_after_mutate(self, replica):
        url, _engine = replica
        request_json(url, "POST", "/solve", {"k": 3, "region": REGION})
        request_json(url, "POST", "/mutate", {"insert": {"values": [[0.9, 0.9, 0.9]]}})
        status, body = request_json(url, "GET", "/metrics")
        entry = body["datasets"]["default"]
        assert entry["requests"]["mutate"] == 1
        assert entry["cache"]["mutations"]["n_deltas"] == 1


class TestErrorMapping:
    def test_unknown_route_is_404(self, replica):
        url, _engine = replica
        assert request_json(url, "GET", "/nope")[0] == 404

    def test_wrong_verb_is_405(self, replica):
        url, _engine = replica
        assert request_json(url, "POST", "/health", {})[0] == 405
        assert request_json(url, "GET", "/solve")[0] == 405

    def test_invalid_parameters_are_400(self, replica):
        url, _engine = replica
        for payload in (
            {"region": REGION},                                   # missing k
            {"k": 0, "region": REGION},                           # non-positive k
            {"k": 3},                                             # missing region
            {"k": 3, "region": {"intervals": [[0.2, 0.6]]}},      # wrong arity
            {"k": 3, "region": REGION, "method": 7},              # non-string method
            {"k": 3, "region": REGION, "dataset": "ghost"},       # unknown dataset
        ):
            status, body = request_json(url, "POST", "/solve", payload)
            assert status == 400, payload
            assert "error" in body

    def test_malformed_json_body_is_400(self, replica):
        import urllib.request

        url, _engine = replica
        request = urllib.request.Request(
            url + "/solve", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("expected a 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400

    def test_replica_keeps_serving_after_errors(self, replica):
        url, _engine = replica
        request_json(url, "POST", "/solve", {"k": -3, "region": REGION})
        status, _body = request_json(url, "GET", "/health")
        assert status == 200


class TestConcurrency:
    def test_identical_concurrent_solves_coalesce(self, replica):
        url, _engine = replica
        fresh = {"intervals": [[0.15, 0.7], [0.05, 0.6]]}

        def fire(_):
            return request_json(url, "POST", "/solve", {"k": 4, "region": fresh})

        with ThreadPoolExecutor(8) as pool:
            responses = list(pool.map(fire, range(8)))
        assert all(status == 200 for status, _ in responses)
        payloads = {json.dumps(body["result"], sort_keys=True) for _, body in responses}
        assert len(payloads) == 1, "coalesced requests must share one answer"
        coalesced = sum(1 for _, body in responses if body["served"]["coalesced"])
        assert coalesced >= 1, "concurrent identical solves must share the solve"
        status, metrics = request_json(url, "GET", "/metrics")
        assert metrics["datasets"]["default"]["n_coalesced"] == coalesced

    def test_mixed_solves_and_mutations_stay_consistent(self, replica):
        url, _engine = replica

        def solve(i):
            region = {"intervals": [[0.1 + 0.01 * (i % 4), 0.6], [0.1, 0.5]]}
            return request_json(url, "POST", "/solve", {"k": 2 + i % 3, "region": region})

        def mutate(i):
            return request_json(url, "POST", "/mutate", {
                "insert": {"values": [[0.3 + 0.01 * i, 0.4, 0.5]]},
                "delete": {"positions": [0]},
            })

        with ThreadPoolExecutor(6) as pool:
            futures = [pool.submit(solve, i) for i in range(10)]
            futures += [pool.submit(mutate, i) for i in range(3)]
            statuses = [f.result()[0] for f in futures]
        assert statuses == [200] * 13
        status, health = request_json(url, "GET", "/health")
        assert status == 200 and health["status"] == "ok"


class TestWarmRestart:
    def test_restarted_replica_answers_identically_from_cache(self, tmp_path):
        dataset = generate_synthetic("IND", 80, 3, rng=7)
        queries = [{"k": 3, "region": REGION},
                   {"k": 2, "region": {"intervals": [[0.1, 0.7], [0.2, 0.6]]}}]

        engine = TopRREngine(dataset, rng=7)
        registry = EngineRegistry()
        registry.add("default", engine)
        handle = start_server_thread(registry)
        try:
            cold = [request_json(handle.url, "POST", "/solve", q)[1] for q in queries]
            snapshot = engine.save_caches(tmp_path / "caches.json")
        finally:
            handle.stop()
        assert all(body["served"]["cache_hit"] is False for body in cold)

        # "kill" the replica, boot a fresh one from the snapshot
        engine2 = TopRREngine(dataset, rng=7)
        engine2.load_caches(snapshot)
        registry2 = EngineRegistry()
        registry2.add("default", engine2)
        handle2 = start_server_thread(registry2)
        try:
            warm = [request_json(handle2.url, "POST", "/solve", q)[1] for q in queries]
        finally:
            handle2.stop()

        for cold_body, warm_body in zip(cold, warm):
            assert warm_body["served"]["cache_hit"] is True, (
                "a snapshot-restored replica must answer its recorded mix from cache"
            )
            assert warm_body["result"] == cold_body["result"], (
                "warm-restore parity must be byte-identical"
            )


class TestSchemas:
    def test_region_from_spec_rejects_malformed_specs(self):
        with pytest.raises(InvalidParameterError):
            region_from_spec("not a dict", 3)
        with pytest.raises(InvalidParameterError):
            region_from_spec({"neither": 1}, 3)
        with pytest.raises(InvalidParameterError):
            region_from_spec({"A": [[1.0]], "b": [0.5]}, 3)  # wrong width

    def test_region_from_spec_hyperrectangle_matches_direct_construction(self):
        built = region_from_spec(REGION, 3)
        direct = PreferenceRegion.hyperrectangle([(0.2, 0.6), (0.1, 0.5)])
        assert built.polytope.vertices.tobytes() == direct.polytope.vertices.tobytes()

    def test_solve_request_parse(self):
        request = SolveRequest.parse({"k": 5, "region": REGION, "method": "tas"})
        assert request.k == 5 and request.method == "tas" and request.use_cache

    def test_mutate_request_needs_a_section(self):
        with pytest.raises(InvalidParameterError):
            MutateRequest.parse({})
        with pytest.raises(InvalidParameterError):
            MutateRequest.parse({"insert": {"no_values": 1}})
        with pytest.raises(InvalidParameterError):
            MutateRequest.parse({"delete": {"option_ids": [1], "positions": [0]}})

    def test_rw_lock_prefers_writers(self):
        """Readers arriving behind a waiting writer queue after it."""

        async def scenario():
            lock = AsyncReadWriteLock()
            order = []

            async def reader(name, hold):
                async with lock.read():
                    order.append(name)
                    await asyncio.sleep(hold)

            async def writer():
                async with lock.write():
                    order.append("writer")

            first = asyncio.ensure_future(reader("r1", 0.05))
            await asyncio.sleep(0.01)           # r1 holds the read side
            write = asyncio.ensure_future(writer())
            await asyncio.sleep(0.01)           # writer now waits
            late = asyncio.ensure_future(reader("r2", 0))
            await asyncio.gather(first, write, late)
            return order

        assert asyncio.run(scenario()) == ["r1", "writer", "r2"]
