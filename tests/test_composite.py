"""Tests for composite queries: non-convex target regions and constrained option domains."""

import numpy as np
import pytest

from repro.core.composite import constrain_result, solve_toprr_union
from repro.core.placement import cheapest_new_option
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.exceptions import InfeasibleProblemError, InvalidParameterError
from repro.geometry.halfspace import Halfspace
from repro.preference.region import PreferenceRegion


@pytest.fixture(scope="module")
def market():
    return generate_independent(1_500, 3, rng=91)


@pytest.fixture(scope="module")
def two_pieces():
    return [
        PreferenceRegion.hyperrectangle([(0.15, 0.22), (0.15, 0.22)]),
        PreferenceRegion.hyperrectangle([(0.45, 0.52), (0.25, 0.32)]),
    ]


class TestUnionOfRegions:
    def test_union_is_intersection_of_piece_results(self, market, two_pieces):
        union_result = solve_toprr_union(market, 5, two_pieces)
        piece_results = [solve_toprr(market, 5, piece) for piece in two_pieces]
        probes = np.random.default_rng(0).random((500, 3))
        expected = np.logical_and(
            piece_results[0].contains_many(probes), piece_results[1].contains_many(probes)
        )
        assert np.array_equal(union_result.contains_many(probes), expected)

    def test_union_volume_not_larger_than_any_piece(self, market, two_pieces):
        union_result = solve_toprr_union(market, 5, two_pieces)
        for piece in two_pieces:
            piece_result = solve_toprr(market, 5, piece)
            assert union_result.volume() <= piece_result.volume() + 1e-9

    def test_union_with_single_piece_matches_plain_solve(self, market, two_pieces):
        single = solve_toprr_union(market, 5, two_pieces[:1])
        plain = solve_toprr(market, 5, two_pieces[0])
        probes = np.random.default_rng(1).random((300, 3))
        assert np.array_equal(single.contains_many(probes), plain.contains_many(probes))

    def test_union_records_piece_count(self, market, two_pieces):
        result = solve_toprr_union(market, 5, two_pieces)
        assert result.stats.extra["n_region_pieces"] == 2
        assert "union" in result.method

    def test_union_validation(self, market, two_pieces):
        with pytest.raises(InvalidParameterError):
            solve_toprr_union(market, 5, [])
        mismatched = [two_pieces[0], PreferenceRegion.interval(0.2, 0.4)]
        with pytest.raises(InvalidParameterError):
            solve_toprr_union(market, 5, mismatched)

    def test_top_corner_still_qualifies(self, market, two_pieces):
        result = solve_toprr_union(market, 5, two_pieces)
        assert result.contains(np.ones(3))


def _binding_budget_cap(result):
    """A total-attribute-budget cap that is feasible for ``oR`` yet excludes its cheapest point.

    The cap sits halfway between the smallest attribute sum attained by the
    region's vertices (so the constrained region stays non-empty) and the sum
    of the unconstrained cost-optimal placement (so the constraint actually
    binds).
    """
    min_vertex_sum = float(result.option_region_vertices.sum(axis=1).min())
    unconstrained_sum = float(cheapest_new_option(result).option.sum())
    return (min_vertex_sum + unconstrained_sum) / 2.0


class TestConstrainedResult:
    def test_constraint_shrinks_the_polytope(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        cap = _binding_budget_cap(result)
        constrained = constrain_result(result, [Halfspace([1.0, 1.0, 1.0], cap)])
        assert not constrained.is_empty()
        assert constrained.volume() <= result.volume() + 1e-9
        assert constrained.volume() < result.volume()
        for vertex in constrained.option_region_vertices:
            assert vertex.sum() <= cap + 1e-6

    def test_membership_guarantee_is_unchanged(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        cap = _binding_budget_cap(result)
        constrained = constrain_result(result, [Halfspace([1.0, 1.0, 1.0], cap)])
        probes = np.random.default_rng(2).random((200, 3))
        assert np.array_equal(constrained.contains_many(probes), result.contains_many(probes))

    def test_cost_optimal_placement_respects_constraints(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        unconstrained = cheapest_new_option(result)
        cap = _binding_budget_cap(result)
        constrained = constrain_result(result, [Halfspace([1.0, 1.0, 1.0], cap)])
        placement = cheapest_new_option(constrained)
        assert placement.option.sum() <= cap + 1e-6
        # The binding constraint can only make the optimum more expensive.
        assert placement.cost >= unconstrained.cost - 1e-9

    def test_infeasible_budget_empties_the_region(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        too_tight = float(result.option_region_vertices.sum(axis=1).min()) - 0.5
        constrained = constrain_result(result, [Halfspace([1.0, 1.0, 1.0], too_tight)])
        assert constrained.is_empty()
        with pytest.raises(InfeasibleProblemError):
            cheapest_new_option(constrained)

    def test_no_constraints_is_a_no_op(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        assert constrain_result(result, []) is result

    def test_dimension_mismatch_rejected(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.25, 0.31)])
        result = solve_toprr(market, 5, region)
        with pytest.raises(InvalidParameterError):
            constrain_result(result, [Halfspace([1.0, 1.0], 1.0)])
