"""Thread-locality of the geometry counters.

:data:`repro.geometry.counters.geometry_counters` is ``threading.local`` so
that concurrent solves — :meth:`TopRREngine.query_batch` with the thread
executor — each observe their own deltas.  These tests pin down the two
guarantees that depend on it:

* counters incremented inside worker threads must **not** leak into the
  caller's thread (or into a caller-side :class:`SolverStats`), and
* the per-query ``SolverStats`` recorded on a worker thread must equal the
  stats of the same query solved serially — i.e. no cross-thread
  contamination in either direction.
"""

import threading

import pytest

from repro.data.generators import generate_anticorrelated
from repro.engine import TopRREngine
from repro.geometry.counters import geometry_counters
from repro.preference.region import PreferenceRegion


def test_raw_counters_are_thread_local():
    geometry_counters.reset()
    observed = {}

    def worker(name: int, increments: int) -> None:
        geometry_counters.reset()
        for _ in range(increments):
            geometry_counters.n_clip_calls += 1
            geometry_counters.n_lp_calls += 2
        observed[name] = geometry_counters.snapshot()

    threads = [threading.Thread(target=worker, args=(i, 5 * (i + 1))) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for i in range(4):
        assert observed[i].n_clip_calls == 5 * (i + 1)
        assert observed[i].n_lp_calls == 10 * (i + 1)
    # Nothing leaked into the caller's thread.
    caller = geometry_counters.snapshot()
    assert caller == (0, 0, 0, 0)


def _regions(d: int):
    """Four distinct, small query regions for a ``d``-attribute dataset.

    The regions shrink with the dimension: anti-correlated ``d = 4``
    instances split aggressively, and this test is about counter
    attribution, not solver throughput.
    """
    width = 0.07 if d == 3 else 0.02
    return [
        PreferenceRegion.hyperrectangle(
            [(0.2 + 0.02 * i, 0.2 + width + 0.02 * i)] * (d - 1)
        )
        for i in range(4)
    ]


@pytest.mark.parametrize("d", [3, 4])
def test_query_batch_thread_counters_do_not_leak(d):
    dataset = generate_anticorrelated(300, d, rng=5)

    serial_engine = TopRREngine(dataset)
    serial = serial_engine.query_batch(
        [(4, region) for region in _regions(d)], executor="serial", use_cache=False
    )

    geometry_counters.reset()
    thread_engine = TopRREngine(dataset)
    threaded = thread_engine.query_batch(
        [(4, region) for region in _regions(d)],
        executor="thread",
        n_workers=4,
        use_cache=False,
    )

    # The workers' geometry activity must not appear on the caller's thread.
    caller = geometry_counters.snapshot()
    assert caller == (0, 0, 0, 0)

    # ... and each worker's SolverStats must match the serial solve of the
    # same query exactly: no counts missing, none inherited from siblings.
    for serial_result, threaded_result in zip(serial, threaded):
        assert threaded_result.stats.n_clip_calls == serial_result.stats.n_clip_calls
        assert threaded_result.stats.n_lp_calls == serial_result.stats.n_lp_calls
        assert threaded_result.stats.n_qhull_calls == serial_result.stats.n_qhull_calls
        assert threaded_result.stats.n_regions_tested == serial_result.stats.n_regions_tested
        # Closed-form backends on both thread kinds: zero LP / qhull.
        assert threaded_result.stats.n_lp_calls == 0
        assert threaded_result.stats.n_qhull_calls == 0
    # The batch must not be vacuous: at least one query actually split (and
    # therefore clipped) inside a worker thread.
    assert sum(result.stats.n_clip_calls for result in threaded) > 0
