"""Tests for regret-minimizing representative sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.generators import generate_independent
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.related.regret import greedy_regret_set, max_regret_ratio
from repro.topk.onion import k_onion_layers
from repro.topk.query import top_k


@pytest.fixture(scope="module")
def market():
    return generate_independent(500, 3, rng=83)


class TestMaxRegretRatio:
    def test_full_dataset_has_zero_regret(self, market):
        assert max_regret_ratio(market, range(market.n_options)) == pytest.approx(0.0)

    def test_single_weak_option_has_high_regret(self, market):
        weakest = int(np.argmin(market.values.sum(axis=1)))
        assert max_regret_ratio(market, [weakest]) > 0.3

    def test_regret_is_monotone_in_the_subset(self, market):
        subset = list(range(10))
        larger = list(range(40))
        weights = np.random.default_rng(5).dirichlet(np.ones(3), size=200)
        small_regret = max_regret_ratio(market, subset, weights=weights)
        large_regret = max_regret_ratio(market, larger, weights=weights)
        assert large_regret <= small_regret + 1e-12

    def test_empty_subset_rejected(self, market):
        with pytest.raises(InvalidParameterError):
            max_regret_ratio(market, [])

    def test_region_restricted_regret(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.4), (0.3, 0.4)])
        subset = greedy_regret_set(market, 5, region=region)
        restricted = max_regret_ratio(market, subset, region=region)
        assert 0.0 <= restricted <= 1.0


class TestGreedyRegretSet:
    def test_size_and_uniqueness(self, market):
        chosen = greedy_regret_set(market, 8)
        assert chosen.shape == (8,)
        assert len(set(chosen.tolist())) == 8

    def test_regret_decreases_with_size(self, market):
        weights = np.random.default_rng(7).dirichlet(np.ones(3), size=300)
        regrets = [
            max_regret_ratio(market, greedy_regret_set(market, size, rng=1), weights=weights)
            for size in (1, 3, 8, 20)
        ]
        assert all(regrets[i + 1] <= regrets[i] + 1e-9 for i in range(len(regrets) - 1))

    def test_small_set_already_has_low_regret(self, market):
        chosen = greedy_regret_set(market, 10)
        assert max_regret_ratio(market, chosen) < 0.15

    def test_first_pick_is_a_strong_all_rounder(self, market):
        chosen = greedy_regret_set(market, 1)
        # The single representative must beat the dataset median score for
        # the uniform user by a clear margin.
        uniform = np.full(3, 1 / 3)
        scores = market.values @ uniform
        assert scores[chosen[0]] > np.median(scores)

    def test_axis_specialists_are_covered(self, market):
        # With enough representatives, each single-attribute user must find a
        # near-optimal option in the set (regret below 5%).
        chosen = greedy_regret_set(market, 15, rng=3)
        for axis in range(3):
            weight = np.eye(3)[axis]
            best_overall = top_k(market, weight, 1).threshold
            best_in_set = float((market.values[chosen] @ weight).max())
            assert best_in_set >= 0.95 * best_overall

    def test_first_onion_layer_members_rank_high_in_pick_order(self, market):
        # The earliest greedy picks should come from the first onion layers
        # (convex-hull options are the only possible top-1 answers).
        layer_one = set(k_onion_layers(market, 1).tolist())
        chosen = greedy_regret_set(market, 3)
        assert any(int(index) in layer_one for index in chosen[:3])

    def test_size_larger_than_dataset_is_clipped(self):
        tiny = Dataset(np.random.default_rng(0).random((4, 2)))
        assert greedy_regret_set(tiny, 10).shape == (4,)

    def test_invalid_size(self, market):
        with pytest.raises(InvalidParameterError):
            greedy_regret_set(market, 0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=80),
    d=st.integers(min_value=2, max_value=4),
    size=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_greedy_regret_property(n, d, size, seed):
    """Property: the greedy set is valid and its regret never exceeds the worst single option."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.random((n, d)) + 0.01)
    chosen = greedy_regret_set(dataset, size, n_witnesses=64, rng=seed)
    assert len(set(chosen.tolist())) == min(size, n)
    weights = rng.dirichlet(np.ones(d), size=50)
    regret = max_regret_ratio(dataset, chosen, weights=weights)
    worst_single = max(
        max_regret_ratio(dataset, [index], weights=weights) for index in range(n)
    )
    assert 0.0 <= regret <= worst_single + 1e-9
