"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9a" in out and "table6" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_solve_command(self, capsys):
        code = main(
            [
                "solve",
                "--n", "800",
                "--d", "3",
                "--k", "4",
                "--sigma", "0.05",
                "--method", "tas*",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TopRR result" in out
        assert "cost-optimal" in out or "empty" in out

    def test_run_command_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig12a.csv"
        code = main(["run", "fig12a", "--scale", "smoke", "--csv", str(csv_path)])
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "fig12a" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99", "--scale", "smoke"])

    def test_list_includes_extension_studies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "extension studies" in out
        assert "ablation_sampling" in out

    def test_run_ablation_by_name(self, capsys):
        code = main(["run", "substrate_engines", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "substrate_engines" in out
        assert "branch-and-bound" in out
