"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9a" in out and "table6" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_solve_command(self, capsys):
        code = main(
            [
                "solve",
                "--n", "800",
                "--d", "3",
                "--k", "4",
                "--sigma", "0.05",
                "--method", "tas*",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TopRR result" in out
        assert "cost-optimal" in out or "empty" in out

    def test_run_command_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig12a.csv"
        code = main(["run", "fig12a", "--scale", "smoke", "--csv", str(csv_path)])
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "fig12a" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99", "--scale", "smoke"])

    def test_list_includes_extension_studies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "extension studies" in out
        assert "ablation_sampling" in out

    def test_run_ablation_by_name(self, capsys):
        code = main(["run", "substrate_engines", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "substrate_engines" in out
        assert "branch-and-bound" in out


class TestMutateCli:
    SMALL = ["--n", "400", "--d", "3", "--k", "4", "--distinct", "3",
             "--rounds", "2", "--churn", "0.02", "--seed", "3"]

    def test_mutate_incremental(self, capsys):
        assert main(["mutate", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "incremental maintenance" in out
        assert "survivor rate" in out
        assert "bit-identical to a fresh rebuild" in out

    def test_mutate_flush_baseline(self, capsys):
        assert main(["mutate", *self.SMALL, "--flush"]) == 0
        out = capsys.readouterr().out
        assert "flush-all maintenance" in out
        assert "survivor rate" not in out  # baseline arm keeps nothing to report
        assert "bit-identical to a fresh rebuild" in out

    def test_mutate_sharded(self, capsys):
        assert main(["mutate", *self.SMALL, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to a fresh rebuild" in out

    def test_mutate_rejects_bad_churn(self, capsys):
        assert main(["mutate", "--churn", "1.5"]) == 2
        assert "--churn" in capsys.readouterr().err

    def test_batch_with_interleaved_mutations(self, capsys):
        code = main(
            ["batch", "--n", "400", "--d", "3", "--k", "4", "--queries", "12",
             "--distinct", "3", "--mutate-every", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mutations:" in out and "deltas" in out

    def test_batch_rejects_nonpositive_mutate_every(self, capsys):
        code = main(["batch", "--n", "400", "--d", "3", "--queries", "4",
                     "--mutate-every", "0"])
        assert code == 2
        assert "--mutate-every" in capsys.readouterr().err
