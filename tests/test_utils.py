"""Unit tests for the utility layer (tolerance, timer, rng, validation)."""

import time

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance
from repro.utils.validation import (
    as_matrix,
    as_point,
    check_in_unit_interval,
    check_positive_int,
)


class TestTolerance:
    def test_default_is_shared_instance(self):
        assert isinstance(DEFAULT_TOL, Tolerance)

    def test_is_zero_within_geometry_tolerance(self):
        assert DEFAULT_TOL.is_zero(0.0)
        assert DEFAULT_TOL.is_zero(DEFAULT_TOL.geometry / 2)
        assert not DEFAULT_TOL.is_zero(1e-3)

    def test_sign_predicates_are_strict(self):
        assert DEFAULT_TOL.is_positive(1e-3)
        assert not DEFAULT_TOL.is_positive(DEFAULT_TOL.geometry / 2)
        assert DEFAULT_TOL.is_negative(-1e-3)
        assert not DEFAULT_TOL.is_negative(-DEFAULT_TOL.geometry / 2)

    def test_scores_equal(self):
        assert DEFAULT_TOL.scores_equal(0.5, 0.5 + DEFAULT_TOL.score / 2)
        assert not DEFAULT_TOL.scores_equal(0.5, 0.6)

    def test_custom_tolerance_is_frozen(self):
        tol = Tolerance(geometry=1e-6)
        with pytest.raises(Exception):
            tol.geometry = 1e-3  # type: ignore[misc]


class TestTimer:
    def test_context_manager_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running(self):
        timer = Timer().start()
        assert timer.elapsed >= 0.0
        timer.stop()


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestValidation:
    def test_as_point_accepts_lists(self):
        point = as_point([1.0, 2.0], dimension=2)
        assert point.shape == (2,)

    def test_as_point_rejects_wrong_dimension(self):
        with pytest.raises(DimensionMismatchError):
            as_point([1.0, 2.0, 3.0], dimension=2)

    def test_as_point_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            as_point([1.0, float("nan")], dimension=2)

    def test_as_matrix_checks_columns(self):
        matrix = as_matrix([[1.0, 2.0], [3.0, 4.0]], dimension=2)
        assert matrix.shape == (2, 2)
        with pytest.raises(DimensionMismatchError):
            as_matrix([[1.0, 2.0]], dimension=3)

    def test_check_positive_int(self):
        assert check_positive_int(5, "k") == 5
        with pytest.raises(InvalidParameterError):
            check_positive_int(0, "k")
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.5, "k")  # type: ignore[arg-type]
        with pytest.raises(InvalidParameterError):
            check_positive_int(True, "k")  # type: ignore[arg-type]

    def test_check_in_unit_interval(self):
        assert check_in_unit_interval(0.5, "sigma") == 0.5
        with pytest.raises(InvalidParameterError):
            check_in_unit_interval(1.5, "sigma")
