"""Tests for the experiment harness (config, workloads, runner, reporting, figures)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.config import REAL_DATASETS, Scale, defaults, sweep_values
from repro.experiments.figures import (
    EXPERIMENTS,
    figure7_case_study,
    figure8_filter_tradeoff,
    figure9_methods,
    figure12_lemma5,
    figure13_lemma7,
    figure14_kswitch,
    run_experiment,
    table7_elongation,
)
from repro.experiments.reporting import format_table, print_rows, save_csv_rows
from repro.experiments.runner import run_method, run_methods
from repro.experiments.workloads import make_dataset, make_queries, make_real_dataset, make_regions


class TestConfig:
    def test_scale_parsing(self):
        assert Scale.parse("smoke") is Scale.SMOKE
        assert Scale.parse(Scale.PAPER) is Scale.PAPER
        with pytest.raises(InvalidParameterError):
            Scale.parse("enormous")

    def test_defaults_match_the_paper_bold_values(self):
        paper = defaults(Scale.PAPER)
        assert paper.k == 10
        assert paper.sigma == pytest.approx(0.01)
        assert paper.n_attributes == 4
        assert paper.distribution == "IND"
        assert paper.n_options == 400_000

    def test_sweeps_cover_table5(self):
        assert sweep_values("k", Scale.PAPER) == [1, 5, 10, 20, 40]
        assert sweep_values("n_attributes", Scale.PAPER) == [2, 4, 6, 8, 10, 12]
        assert sweep_values("sigma", Scale.PAPER) == [0.001, 0.005, 0.01, 0.05, 0.10]
        assert sweep_values("n_options", Scale.PAPER)[-1] == 1_600_000

    def test_unknown_sweep_parameter(self):
        with pytest.raises(InvalidParameterError):
            sweep_values("temperature", Scale.SMOKE)


class TestWorkloads:
    def test_make_dataset_uses_defaults(self):
        data = make_dataset(Scale.SMOKE)
        smoke = defaults(Scale.SMOKE)
        assert data.n_options == smoke.n_options
        assert data.n_attributes == smoke.n_attributes

    def test_make_real_dataset(self):
        for name in REAL_DATASETS:
            data = make_real_dataset(name, Scale.SMOKE)
            assert data.n_options > 0

    def test_make_regions_deterministic(self):
        a = make_regions(3, 0.05, 3, seed=9)
        b = make_regions(3, 0.05, 3, seed=9)
        for ra, rb in zip(a, b):
            assert np.allclose(np.sort(ra.vertices, axis=0), np.sort(rb.vertices, axis=0))

    def test_make_queries_overrides(self):
        queries = make_queries(Scale.SMOKE, k=3, sigma=0.05, n_queries=2)
        assert len(queries) == 2
        assert all(q.k == 3 for q in queries)


class TestRunner:
    def test_run_method_aggregates(self):
        queries = make_queries(Scale.SMOKE, n_queries=2)
        measurement = run_method("TAS*", queries)
        assert measurement.seconds > 0
        assert measurement.n_vertices > 0
        assert len(measurement.per_query) == 2

    def test_run_methods_keys(self):
        queries = make_queries(Scale.SMOKE, n_queries=1)
        results = run_methods(["TAS", "TAS*"], queries)
        assert set(results) == {"TAS", "TAS*"}


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 20, "b": 3.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "a" in text and "20" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_save_csv_rows(self, tmp_path):
        rows = [{"x": 1, "y": 2.5}, {"x": 2, "y": 3.5}]
        path = save_csv_rows(rows, tmp_path / "rows.csv")
        assert path.exists()
        assert path.read_text().splitlines()[0] == "x,y"

    def test_print_rows(self, capsys):
        print_rows([{"a": 1}], title="t")
        assert "a" in capsys.readouterr().out


class TestFigureRunners:
    """Smoke-scale runs of the per-figure harness functions."""

    def test_registry_covers_every_figure_and_table(self):
        expected = {
            "fig7", "fig8",
            "fig9a", "fig9b", "fig9c", "fig9d",
            "fig10a", "fig10b", "fig10c", "fig10d",
            "fig11a", "fig11b",
            "table6", "table7",
            "fig12a", "fig12b", "fig13a", "fig13b", "fig14a", "fig14b",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig7_case_study_rows(self):
        rows = figure7_case_study(Scale.SMOKE)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["optimal_performance"] <= 1.0
            assert 0.0 <= row["optimal_battery"] <= 1.0
            assert row["cost"] > 0

    def test_fig8_rows_have_all_filters(self):
        rows = figure8_filter_tradeoff(Scale.SMOKE)
        assert {row["filter"] for row in rows} == {"k-skyband", "k-onion", "r-skyband", "utk"}
        r_sky = next(r for r in rows if r["filter"] == "r-skyband")
        k_sky = next(r for r in rows if r["filter"] == "k-skyband")
        assert r_sky["retained"] <= k_sky["retained"]

    def test_fig9_k_sweep_shape(self):
        rows = figure9_methods("k", Scale.SMOKE, methods=["TAS", "TAS*"])
        k_values = sweep_values("k", Scale.SMOKE)
        assert len(rows) == 2 * len(k_values)
        star_rows = [r for r in rows if r["method"] == "TAS*"]
        plain_rows = [r for r in rows if r["method"] == "TAS"]
        assert sum(r["n_vertices"] for r in star_rows) <= sum(r["n_vertices"] for r in plain_rows)

    def test_fig12_lemma5_prunes(self):
        rows = figure12_lemma5("k", Scale.SMOKE)
        assert all(row["r_skyband_lemma5"] <= row["r_skyband"] for row in rows)

    def test_fig13_lemma7_reduces_vertices(self):
        rows = figure13_lemma7("k", Scale.SMOKE)
        assert all(row["lemma7_enabled"] <= row["lemma7_disabled"] + 1e-9 for row in rows)

    def test_fig14_rows(self):
        rows = figure14_kswitch("k", Scale.SMOKE)
        assert all("k_switch_enabled" in row and "k_switch_disabled" in row for row in rows)

    @pytest.mark.slow  # elongated-region TAS* sweeps dominate the suite's wall clock
    def test_table7_rows(self):
        rows = table7_elongation(Scale.SMOKE)
        gammas = sweep_values("gamma", Scale.SMOKE)
        assert [row["gamma"] for row in rows] == gammas

    def test_invalid_vary_arguments(self):
        with pytest.raises(ValueError):
            figure12_lemma5("n", Scale.SMOKE)
        with pytest.raises(ValueError):
            figure13_lemma7("d", Scale.SMOKE)
