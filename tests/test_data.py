"""Unit tests for the dataset container, generators, surrogates, examples and I/O."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.examples import figure1_dataset, table2_dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_synthetic,
)
from repro.data.io import load_csv, save_csv
from repro.data.surrogates import (
    CNET_LANDMARKS,
    cnet_laptops,
    hotel_surrogate,
    house_surrogate,
    nba_surrogate,
    real_dataset,
)
from repro.exceptions import DimensionMismatchError, InvalidParameterError


class TestDataset:
    def test_shape_accessors(self, unit_square_dataset):
        assert unit_square_dataset.n_options == 6
        assert unit_square_dataset.n_attributes == 2
        assert len(unit_square_dataset) == 6

    def test_rejects_non_matrix(self):
        with pytest.raises(DimensionMismatchError):
            Dataset(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            Dataset(np.zeros((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            Dataset([[0.1, float("nan")]])

    def test_attribute_names_default_and_custom(self):
        data = Dataset([[1.0, 2.0]])
        assert data.attribute_names == ["attr_0", "attr_1"]
        named = Dataset([[1.0, 2.0]], attribute_names=["speed", "battery"])
        assert named.attribute_names == ["speed", "battery"]
        with pytest.raises(DimensionMismatchError):
            Dataset([[1.0, 2.0]], attribute_names=["only-one"])

    def test_subset_preserves_ids(self, figure1):
        subset = figure1.subset([1, 3])
        assert subset.option_ids == ["p2", "p4"]
        assert np.allclose(subset.values[0], figure1.values[1])

    def test_without(self, figure1):
        remaining = figure1.without([0, 5])
        assert remaining.n_options == 4
        assert "p1" not in remaining.option_ids

    def test_id_index_roundtrip(self, figure1):
        assert figure1.id_of(2) == "p3"
        assert figure1.index_of("p3") == 2

    def test_scores(self, figure1):
        scores = figure1.scores([0.5, 0.5])
        assert scores[0] == pytest.approx(0.65)  # p1 = (0.9, 0.4)

    def test_scores_many(self, figure1):
        weights = np.array([[1.0, 0.0], [0.0, 1.0]])
        matrix = figure1.scores_many(weights)
        assert matrix.shape == (6, 2)
        assert matrix[0, 0] == pytest.approx(0.9)
        assert matrix[0, 1] == pytest.approx(0.4)

    def test_scores_dimension_mismatch(self, figure1):
        with pytest.raises(DimensionMismatchError):
            figure1.scores([0.5, 0.3, 0.2])

    def test_normalized(self):
        data = Dataset([[0.0, 5.0], [10.0, 5.0]])
        normalized = data.normalized()
        assert normalized.values[:, 0].tolist() == [0.0, 1.0]
        # Constant column maps to 0.5.
        assert normalized.values[:, 1].tolist() == [0.5, 0.5]

    def test_describe(self, figure1):
        info = figure1.describe()
        assert info["n_options"] == 6
        assert info["attribute_names"] == ["speed", "battery"]


class TestGenerators:
    @pytest.mark.parametrize("generator", [generate_independent, generate_correlated, generate_anticorrelated])
    def test_shapes_and_range(self, generator):
        data = generator(200, 4, rng=0)
        assert data.values.shape == (200, 4)
        assert np.all(data.values >= 0.0) and np.all(data.values <= 1.0)

    def test_determinism(self):
        a = generate_independent(100, 3, rng=5)
        b = generate_independent(100, 3, rng=5)
        assert np.allclose(a.values, b.values)

    def test_correlation_structure(self):
        correlated = generate_correlated(3_000, 2, rng=1)
        anticorrelated = generate_anticorrelated(3_000, 2, rng=1)
        corr_cor = np.corrcoef(correlated.values.T)[0, 1]
        corr_anti = np.corrcoef(anticorrelated.values.T)[0, 1]
        assert corr_cor > 0.5
        assert corr_anti < -0.2

    def test_dispatch(self):
        assert generate_synthetic("ind", 10, 2, rng=0).n_options == 10
        assert generate_synthetic("COR", 10, 2, rng=0).n_options == 10
        with pytest.raises(InvalidParameterError):
            generate_synthetic("weird", 10, 2)

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            generate_independent(0, 3)
        with pytest.raises(InvalidParameterError):
            generate_correlated(10, 2, spread=-1.0)


class TestPaperExampleData:
    def test_figure1_values(self):
        data = figure1_dataset()
        assert data.n_options == 6 and data.n_attributes == 2
        assert data.option_ids == ["p1", "p2", "p3", "p4", "p5", "p6"]
        assert np.allclose(data.values[0], [0.9, 0.4])

    def test_table2_values(self):
        data = table2_dataset()
        assert data.n_options == 5 and data.n_attributes == 3
        assert np.allclose(data.values[4], [0.92, 0.98, 0.99])


class TestSurrogates:
    def test_cardinalities_and_dimensions(self):
        assert hotel_surrogate(n_options=1_000).n_attributes == 4
        assert house_surrogate(n_options=1_000).n_attributes == 6
        assert nba_surrogate(n_options=1_000).n_attributes == 8
        assert cnet_laptops().n_options == 149

    def test_cnet_contains_landmarks(self):
        laptops = cnet_laptops()
        for name, _perf, _batt in CNET_LANDMARKS:
            assert name in laptops.option_ids

    def test_values_in_unit_range(self):
        for data in (hotel_surrogate(n_options=500), nba_surrogate(n_options=500)):
            assert np.all(data.values >= 0.0) and np.all(data.values <= 1.0)

    def test_determinism(self):
        assert np.allclose(hotel_surrogate(n_options=200).values, hotel_surrogate(n_options=200).values)

    def test_dispatch(self):
        assert real_dataset("nba", n_options=100).n_attributes == 8
        with pytest.raises(InvalidParameterError):
            real_dataset("unknown")

    def test_nba_more_correlated_than_house(self):
        nba = nba_surrogate(n_options=3_000)
        house = house_surrogate(n_options=3_000)
        mean_corr = lambda values: np.mean(  # noqa: E731 - concise test helper
            np.corrcoef(values.T)[np.triu_indices(values.shape[1], k=1)]
        )
        assert mean_corr(nba.values) > mean_corr(house.values)


class TestCsvIO:
    def test_roundtrip_with_ids(self, tmp_path, figure1):
        path = save_csv(figure1, tmp_path / "figure1.csv")
        loaded = load_csv(path)
        assert loaded.n_options == figure1.n_options
        assert loaded.attribute_names == figure1.attribute_names
        assert loaded.option_ids == figure1.option_ids
        assert np.allclose(loaded.values, figure1.values)

    def test_roundtrip_without_ids(self, tmp_path, unit_square_dataset):
        path = save_csv(unit_square_dataset, tmp_path / "plain.csv", include_ids=False)
        loaded = load_csv(path)
        assert loaded.n_options == unit_square_dataset.n_options
        assert np.allclose(loaded.values, unit_square_dataset.values)

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(InvalidParameterError):
            load_csv(empty)

    def test_header_only_raises(self, tmp_path):
        header_only = tmp_path / "header.csv"
        header_only.write_text("a,b\n")
        with pytest.raises(InvalidParameterError):
            load_csv(header_only)


class TestMutableDatasets:
    """Versioned insert/delete and the staleness of derived lookup tables."""

    @pytest.fixture()
    def catalogue(self):
        return generate_independent(20, 3, rng=77)

    def test_insert_appends_and_versions(self, catalogue):
        mutated, delta = catalogue.insert_options([[0.5, 0.5, 0.5], [0.1, 0.9, 0.2]])
        assert catalogue.version == 0 and mutated.version == 1
        assert mutated.n_options == 22
        assert mutated.option_ids[:20] == catalogue.option_ids
        assert delta.inserted_ids == tuple(mutated.option_ids[20:])
        assert delta.n_inserted == 2 and delta.n_deleted == 0
        # The parent is untouched (mutation is functional).
        assert catalogue.n_options == 20

    def test_delete_keeps_survivor_ids_and_order(self, catalogue):
        victims = [catalogue.option_ids[i] for i in (0, 5, 19)]
        mutated, delta = catalogue.delete_options(option_ids=victims)
        assert mutated.version == 1 and mutated.n_options == 17
        assert delta.deleted_ids == tuple(victims)
        assert list(delta.deleted_positions) == [0, 5, 19]
        survivors = [i for i in catalogue.option_ids if i not in victims]
        assert mutated.option_ids == survivors

    def test_index_of_table_not_inherited_stale(self, catalogue):
        """The O(1) id->index table is version-tagged: a mutated dataset must
        never serve positions computed for its parent."""
        assert catalogue.index_of(catalogue.option_ids[7]) == 7  # builds table
        mutated, _delta = catalogue.delete_options(positions=[0, 1, 2])
        # Every survivor shifted by three; a stale table would be off by 3.
        for position, option_id in enumerate(mutated.option_ids):
            assert mutated.index_of(option_id) == position
        # The parent's table still answers for the parent.
        assert catalogue.index_of(catalogue.option_ids[7]) == 7

    def test_insert_fast_path_seeds_child_table(self, catalogue):
        catalogue.index_of(catalogue.option_ids[0])  # build the parent table
        mutated, delta = catalogue.insert_options([[0.3, 0.3, 0.3]])
        # Seeded table is stamped with the child version, so it is used as-is.
        assert mutated._id_to_index_version == mutated.version
        assert mutated.index_of(delta.inserted_ids[0]) == 20
        assert mutated.index_of(catalogue.option_ids[13]) == 13

    def test_auto_ids_continue_from_current_max(self, catalogue):
        mutated, _delta = catalogue.insert_options([[0.2, 0.2, 0.2]])
        mutated, delta = mutated.insert_options([[0.3, 0.3, 0.3]])
        assert delta.inserted_ids[0] == max(catalogue.option_ids) + 2
        # Deleting the max id frees it: the next auto id may reuse it (the
        # engines' salvage guard handles reuse; see apply_delta).
        shrunk, _delta = catalogue.delete_options(positions=[19])
        regrown, delta = shrunk.insert_options([[0.2, 0.2, 0.2]])
        assert delta.inserted_ids[0] == max(shrunk.option_ids) + 1

    def test_non_integer_ids_require_explicit_ids(self):
        named = Dataset(np.random.default_rng(0).random((3, 2)), option_ids=["a", "b", "c"])
        with pytest.raises(InvalidParameterError):
            named.insert_options([[0.5, 0.5]])
        mutated, delta = named.insert_options([[0.5, 0.5]], option_ids=["d"])
        assert mutated.option_ids == ["a", "b", "c", "d"]

    def test_mutation_validation_errors(self, catalogue):
        with pytest.raises(DimensionMismatchError):
            catalogue.insert_options([[0.1, 0.2]])  # wrong attribute count
        with pytest.raises(InvalidParameterError):
            catalogue.insert_options([[0.1, 0.2, 0.3]], option_ids=[catalogue.option_ids[0]])
        with pytest.raises(InvalidParameterError):
            catalogue.delete_options(option_ids=catalogue.option_ids)  # delete all
        with pytest.raises(InvalidParameterError):
            catalogue.delete_options()  # no selector
        with pytest.raises(InvalidParameterError):
            catalogue.delete_options(option_ids=[1], positions=[1])  # both selectors
        with pytest.raises(InvalidParameterError):
            catalogue.delete_options(positions=[99])

    def test_version_chain_across_mutations(self, catalogue):
        current = catalogue
        for expected_version in (1, 2, 3):
            current, delta = current.insert_options([[0.4, 0.4, 0.4]])
            assert current.version == expected_version
            assert delta.parent_version == expected_version - 1
