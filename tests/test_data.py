"""Unit tests for the dataset container, generators, surrogates, examples and I/O."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.examples import figure1_dataset, table2_dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_synthetic,
)
from repro.data.io import load_csv, save_csv
from repro.data.surrogates import (
    CNET_LANDMARKS,
    cnet_laptops,
    hotel_surrogate,
    house_surrogate,
    nba_surrogate,
    real_dataset,
)
from repro.exceptions import DimensionMismatchError, InvalidParameterError


class TestDataset:
    def test_shape_accessors(self, unit_square_dataset):
        assert unit_square_dataset.n_options == 6
        assert unit_square_dataset.n_attributes == 2
        assert len(unit_square_dataset) == 6

    def test_rejects_non_matrix(self):
        with pytest.raises(DimensionMismatchError):
            Dataset(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            Dataset(np.zeros((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            Dataset([[0.1, float("nan")]])

    def test_attribute_names_default_and_custom(self):
        data = Dataset([[1.0, 2.0]])
        assert data.attribute_names == ["attr_0", "attr_1"]
        named = Dataset([[1.0, 2.0]], attribute_names=["speed", "battery"])
        assert named.attribute_names == ["speed", "battery"]
        with pytest.raises(DimensionMismatchError):
            Dataset([[1.0, 2.0]], attribute_names=["only-one"])

    def test_subset_preserves_ids(self, figure1):
        subset = figure1.subset([1, 3])
        assert subset.option_ids == ["p2", "p4"]
        assert np.allclose(subset.values[0], figure1.values[1])

    def test_without(self, figure1):
        remaining = figure1.without([0, 5])
        assert remaining.n_options == 4
        assert "p1" not in remaining.option_ids

    def test_id_index_roundtrip(self, figure1):
        assert figure1.id_of(2) == "p3"
        assert figure1.index_of("p3") == 2

    def test_scores(self, figure1):
        scores = figure1.scores([0.5, 0.5])
        assert scores[0] == pytest.approx(0.65)  # p1 = (0.9, 0.4)

    def test_scores_many(self, figure1):
        weights = np.array([[1.0, 0.0], [0.0, 1.0]])
        matrix = figure1.scores_many(weights)
        assert matrix.shape == (6, 2)
        assert matrix[0, 0] == pytest.approx(0.9)
        assert matrix[0, 1] == pytest.approx(0.4)

    def test_scores_dimension_mismatch(self, figure1):
        with pytest.raises(DimensionMismatchError):
            figure1.scores([0.5, 0.3, 0.2])

    def test_normalized(self):
        data = Dataset([[0.0, 5.0], [10.0, 5.0]])
        normalized = data.normalized()
        assert normalized.values[:, 0].tolist() == [0.0, 1.0]
        # Constant column maps to 0.5.
        assert normalized.values[:, 1].tolist() == [0.5, 0.5]

    def test_describe(self, figure1):
        info = figure1.describe()
        assert info["n_options"] == 6
        assert info["attribute_names"] == ["speed", "battery"]


class TestGenerators:
    @pytest.mark.parametrize("generator", [generate_independent, generate_correlated, generate_anticorrelated])
    def test_shapes_and_range(self, generator):
        data = generator(200, 4, rng=0)
        assert data.values.shape == (200, 4)
        assert np.all(data.values >= 0.0) and np.all(data.values <= 1.0)

    def test_determinism(self):
        a = generate_independent(100, 3, rng=5)
        b = generate_independent(100, 3, rng=5)
        assert np.allclose(a.values, b.values)

    def test_correlation_structure(self):
        correlated = generate_correlated(3_000, 2, rng=1)
        anticorrelated = generate_anticorrelated(3_000, 2, rng=1)
        corr_cor = np.corrcoef(correlated.values.T)[0, 1]
        corr_anti = np.corrcoef(anticorrelated.values.T)[0, 1]
        assert corr_cor > 0.5
        assert corr_anti < -0.2

    def test_dispatch(self):
        assert generate_synthetic("ind", 10, 2, rng=0).n_options == 10
        assert generate_synthetic("COR", 10, 2, rng=0).n_options == 10
        with pytest.raises(InvalidParameterError):
            generate_synthetic("weird", 10, 2)

    def test_invalid_sizes(self):
        with pytest.raises(InvalidParameterError):
            generate_independent(0, 3)
        with pytest.raises(InvalidParameterError):
            generate_correlated(10, 2, spread=-1.0)


class TestPaperExampleData:
    def test_figure1_values(self):
        data = figure1_dataset()
        assert data.n_options == 6 and data.n_attributes == 2
        assert data.option_ids == ["p1", "p2", "p3", "p4", "p5", "p6"]
        assert np.allclose(data.values[0], [0.9, 0.4])

    def test_table2_values(self):
        data = table2_dataset()
        assert data.n_options == 5 and data.n_attributes == 3
        assert np.allclose(data.values[4], [0.92, 0.98, 0.99])


class TestSurrogates:
    def test_cardinalities_and_dimensions(self):
        assert hotel_surrogate(n_options=1_000).n_attributes == 4
        assert house_surrogate(n_options=1_000).n_attributes == 6
        assert nba_surrogate(n_options=1_000).n_attributes == 8
        assert cnet_laptops().n_options == 149

    def test_cnet_contains_landmarks(self):
        laptops = cnet_laptops()
        for name, _perf, _batt in CNET_LANDMARKS:
            assert name in laptops.option_ids

    def test_values_in_unit_range(self):
        for data in (hotel_surrogate(n_options=500), nba_surrogate(n_options=500)):
            assert np.all(data.values >= 0.0) and np.all(data.values <= 1.0)

    def test_determinism(self):
        assert np.allclose(hotel_surrogate(n_options=200).values, hotel_surrogate(n_options=200).values)

    def test_dispatch(self):
        assert real_dataset("nba", n_options=100).n_attributes == 8
        with pytest.raises(InvalidParameterError):
            real_dataset("unknown")

    def test_nba_more_correlated_than_house(self):
        nba = nba_surrogate(n_options=3_000)
        house = house_surrogate(n_options=3_000)
        mean_corr = lambda values: np.mean(  # noqa: E731 - concise test helper
            np.corrcoef(values.T)[np.triu_indices(values.shape[1], k=1)]
        )
        assert mean_corr(nba.values) > mean_corr(house.values)


class TestCsvIO:
    def test_roundtrip_with_ids(self, tmp_path, figure1):
        path = save_csv(figure1, tmp_path / "figure1.csv")
        loaded = load_csv(path)
        assert loaded.n_options == figure1.n_options
        assert loaded.attribute_names == figure1.attribute_names
        assert loaded.option_ids == figure1.option_ids
        assert np.allclose(loaded.values, figure1.values)

    def test_roundtrip_without_ids(self, tmp_path, unit_square_dataset):
        path = save_csv(unit_square_dataset, tmp_path / "plain.csv", include_ids=False)
        loaded = load_csv(path)
        assert loaded.n_options == unit_square_dataset.n_options
        assert np.allclose(loaded.values, unit_square_dataset.values)

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(InvalidParameterError):
            load_csv(empty)

    def test_header_only_raises(self, tmp_path):
        header_only = tmp_path / "header.csv"
        header_only.write_text("a,b\n")
        with pytest.raises(InvalidParameterError):
            load_csv(header_only)
