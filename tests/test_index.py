"""Unit and property tests for the R-tree spatial index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.index import BoundingBox, RTree


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(7).random((500, 3))


@pytest.fixture(scope="module")
def tree(cloud):
    return RTree(cloud, leaf_capacity=16, fanout=8)


class TestBoundingBox:
    def test_of_points(self):
        points = np.array([[0.1, 0.9], [0.5, 0.2], [0.3, 0.7]])
        box = BoundingBox.of_points(points)
        assert box.lower.tolist() == [0.1, 0.2]
        assert box.upper.tolist() == [0.5, 0.9]

    def test_of_boxes(self):
        a = BoundingBox(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = BoundingBox(np.array([0.4, 0.2]), np.array([0.9, 0.3]))
        merged = BoundingBox.of_boxes([a, b])
        assert merged.lower.tolist() == [0.0, 0.0]
        assert merged.upper.tolist() == [0.9, 0.5]

    def test_contains_and_intersects(self):
        box = BoundingBox(np.array([0.2, 0.2]), np.array([0.6, 0.6]))
        assert box.contains_point([0.3, 0.5])
        assert not box.contains_point([0.7, 0.5])
        other = BoundingBox(np.array([0.5, 0.5]), np.array([0.9, 0.9]))
        disjoint = BoundingBox(np.array([0.7, 0.7]), np.array([0.9, 0.9]))
        assert box.intersects(other)
        assert not box.intersects(disjoint)

    def test_score_bounds(self):
        box = BoundingBox(np.array([0.2, 0.4]), np.array([0.6, 0.8]))
        weight = np.array([0.5, 0.5])
        assert box.max_score(weight) == pytest.approx(0.7)
        assert box.min_score(weight) == pytest.approx(0.3)

    def test_top_and_bottom_corners(self):
        box = BoundingBox(np.array([0.1, 0.2]), np.array([0.3, 0.4]))
        assert box.top_corner.tolist() == [0.3, 0.4]
        assert box.bottom_corner.tolist() == [0.1, 0.2]

    def test_volume(self):
        box = BoundingBox(np.array([0.0, 0.0, 0.0]), np.array([0.5, 0.2, 1.0]))
        assert box.volume() == pytest.approx(0.1)

    def test_empty_points_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundingBox.of_points(np.empty((0, 2)))
        with pytest.raises(InvalidParameterError):
            BoundingBox.of_boxes([])


class TestRTreeStructure:
    def test_every_point_is_stored_exactly_once(self, tree, cloud):
        stored = np.concatenate(
            [node.point_indices for node in tree.iter_nodes() if node.is_leaf]
        )
        assert np.array_equal(np.sort(stored), np.arange(cloud.shape[0]))

    def test_leaf_capacity_respected(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert node.n_entries() <= tree.leaf_capacity

    def test_fanout_respected(self, tree):
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_entries() <= tree.fanout

    def test_child_boxes_nested_in_parent(self, tree, cloud):
        for node in tree.iter_nodes():
            if node.is_leaf:
                points = cloud[node.point_indices]
                assert np.all(points >= node.box.lower - 1e-12)
                assert np.all(points <= node.box.upper + 1e-12)
            else:
                for child in node.children:
                    assert np.all(child.box.lower >= node.box.lower - 1e-12)
                    assert np.all(child.box.upper <= node.box.upper + 1e-12)

    def test_height_and_node_count(self, tree, cloud):
        assert tree.height >= 2
        assert tree.node_count() >= cloud.shape[0] // tree.leaf_capacity

    def test_single_leaf_tree(self):
        points = np.random.default_rng(0).random((5, 2))
        small = RTree(points, leaf_capacity=16)
        assert small.height == 1
        assert small.root.is_leaf

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            RTree(np.empty((0, 2)))
        with pytest.raises(DimensionMismatchError):
            RTree(np.ones(5))
        with pytest.raises(InvalidParameterError):
            RTree(np.ones((5, 2)), leaf_capacity=0)


class TestRangeQuery:
    def test_matches_brute_force(self, tree, cloud):
        rng = np.random.default_rng(3)
        for _ in range(20):
            lower = rng.random(3) * 0.6
            upper = lower + rng.random(3) * 0.4
            expected = np.flatnonzero(np.all((cloud >= lower) & (cloud <= upper), axis=1))
            assert np.array_equal(tree.range_query(lower, upper), expected)

    def test_full_box_returns_everything(self, tree, cloud):
        result = tree.range_query(np.zeros(3), np.ones(3))
        assert result.size == cloud.shape[0]

    def test_empty_box_returns_nothing(self, tree):
        assert tree.range_query(np.full(3, 2.0), np.full(3, 3.0)).size == 0

    def test_dimension_mismatch_rejected(self, tree):
        with pytest.raises(DimensionMismatchError):
            tree.range_query([0.0, 0.0], [1.0, 1.0])


class TestBestFirst:
    def test_yields_points_in_decreasing_key_order(self, tree, cloud):
        weight = np.array([0.5, 0.3, 0.2])
        produced = list(
            tree.best_first(
                node_key=lambda box: box.max_score(weight),
                point_key=lambda point: float(point @ weight),
            )
        )
        scores = [score for score, _ in produced]
        assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))
        assert len(produced) == cloud.shape[0]

    def test_enumerates_every_point_exactly_once(self, tree, cloud):
        produced = [
            index
            for _, index in tree.best_first(
                node_key=lambda box: float(box.upper.sum()),
                point_key=lambda point: float(point.sum()),
            )
        ]
        assert sorted(produced) == list(range(cloud.shape[0]))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_range_query_property(n, d, seed):
    """Property: for random clouds and boxes, the R-tree agrees with brute force."""
    rng = np.random.default_rng(seed)
    cloud = rng.random((n, d))
    tree = RTree(cloud, leaf_capacity=8, fanout=4)
    lower = rng.random(d) * 0.7
    upper = lower + rng.random(d) * 0.5
    expected = np.flatnonzero(np.all((cloud >= lower) & (cloud <= upper), axis=1))
    assert np.array_equal(tree.range_query(lower, upper), expected)
