"""Cross-check tests for the alternative top-k engines (branch-and-bound, TA, NRA).

All engines must return exactly the same answer as the exact reference
implementation :func:`repro.topk.query.top_k`; their value is in how much of
the dataset they can avoid touching, which the access-count assertions cover.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.generators import generate_anticorrelated, generate_correlated, generate_independent
from repro.exceptions import InvalidParameterError
from repro.index import RTree
from repro.topk.branch_and_bound import branch_and_bound_top_k, incremental_top, node_access_count
from repro.topk.query import top_k
from repro.topk.threshold import (
    AccessStatistics,
    SortedListIndex,
    no_random_access_algorithm,
    threshold_algorithm,
)


def _random_weight(d, rng):
    raw = rng.random(d) + 0.05
    return raw / raw.sum()


@pytest.fixture(scope="module")
def ind_dataset():
    return generate_independent(800, 4, rng=17)


@pytest.fixture(scope="module")
def ind_tree(ind_dataset):
    return RTree(ind_dataset.values)


@pytest.fixture(scope="module")
def ind_lists(ind_dataset):
    return SortedListIndex.build(ind_dataset)


class TestBranchAndBound:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_reference(self, ind_dataset, ind_tree, k):
        rng = np.random.default_rng(k)
        for _ in range(5):
            weight = _random_weight(4, rng)
            reference = top_k(ind_dataset, weight, k)
            candidate = branch_and_bound_top_k(ind_dataset, weight, k, tree=ind_tree)
            assert candidate.indices.tolist() == reference.indices.tolist()
            assert candidate.threshold == pytest.approx(reference.threshold)

    def test_incremental_enumeration_is_fully_sorted(self, ind_dataset, ind_tree):
        weight = _random_weight(4, np.random.default_rng(5))
        produced = list(incremental_top(ind_dataset, weight, tree=ind_tree))
        assert len(produced) == ind_dataset.n_options
        scores = [score for score, _ in produced]
        assert all(scores[i] >= scores[i + 1] - 1e-12 for i in range(len(scores) - 1))
        reference = top_k(ind_dataset, weight, ind_dataset.n_options)
        assert [index for _, index in produced] == reference.indices.tolist()

    def test_tree_built_on_demand(self, ind_dataset):
        weight = _random_weight(4, np.random.default_rng(9))
        reference = top_k(ind_dataset, weight, 5)
        candidate = branch_and_bound_top_k(ind_dataset, weight, 5)
        assert candidate.indices.tolist() == reference.indices.tolist()

    def test_prunes_nodes(self, ind_dataset, ind_tree):
        weight = _random_weight(4, np.random.default_rng(13))
        opened = node_access_count(ind_dataset, weight, 5, tree=ind_tree)
        assert opened < ind_tree.node_count()

    def test_rejects_negative_weights(self, ind_dataset):
        with pytest.raises(InvalidParameterError):
            branch_and_bound_top_k(ind_dataset, np.array([0.5, 0.5, 0.5, -0.5]), 3)

    def test_rejects_foreign_tree(self, ind_dataset):
        other_tree = RTree(np.random.default_rng(0).random((10, 4)))
        with pytest.raises(InvalidParameterError):
            branch_and_bound_top_k(ind_dataset, np.full(4, 0.25), 3, tree=other_tree)

    def test_k_larger_than_dataset(self):
        data = Dataset(np.random.default_rng(1).random((6, 3)))
        result = branch_and_bound_top_k(data, np.array([0.4, 0.3, 0.3]), 50)
        assert result.indices.shape[0] == 6


class TestThresholdAlgorithm:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_reference(self, ind_dataset, ind_lists, k):
        rng = np.random.default_rng(100 + k)
        for _ in range(5):
            weight = _random_weight(4, rng)
            reference = top_k(ind_dataset, weight, k)
            candidate = threshold_algorithm(ind_dataset, weight, k, index=ind_lists)
            assert candidate.indices.tolist() == reference.indices.tolist()
            assert candidate.threshold == pytest.approx(reference.threshold)

    def test_early_termination(self, ind_dataset, ind_lists):
        stats = AccessStatistics()
        weight = _random_weight(4, np.random.default_rng(3))
        threshold_algorithm(ind_dataset, weight, 5, index=ind_lists, stats=stats)
        assert stats.depth < ind_dataset.n_options
        assert stats.random_accesses <= stats.sorted_accesses

    def test_correlated_data_terminates_earlier_than_anticorrelated(self):
        k = 10
        weight = np.full(4, 0.25)
        cor = generate_correlated(2_000, 4, rng=21)
        anti = generate_anticorrelated(2_000, 4, rng=22)
        cor_stats, anti_stats = AccessStatistics(), AccessStatistics()
        threshold_algorithm(cor, weight, k, stats=cor_stats)
        threshold_algorithm(anti, weight, k, stats=anti_stats)
        assert cor_stats.depth <= anti_stats.depth

    def test_invalid_parameters(self, ind_dataset):
        with pytest.raises(InvalidParameterError):
            threshold_algorithm(ind_dataset, np.full(3, 1 / 3), 5)
        with pytest.raises(InvalidParameterError):
            threshold_algorithm(ind_dataset, np.full(4, 0.25), 0)


class TestNoRandomAccess:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_reference(self, ind_dataset, ind_lists, k):
        rng = np.random.default_rng(200 + k)
        for _ in range(3):
            weight = _random_weight(4, rng)
            reference = top_k(ind_dataset, weight, k)
            candidate = no_random_access_algorithm(ind_dataset, weight, k, index=ind_lists)
            assert candidate.index_set == reference.index_set
            assert candidate.threshold == pytest.approx(reference.threshold)

    def test_no_random_accesses_counted(self, ind_dataset, ind_lists):
        stats = AccessStatistics()
        weight = _random_weight(4, np.random.default_rng(7))
        no_random_access_algorithm(ind_dataset, weight, 5, index=ind_lists, stats=stats)
        assert stats.random_accesses == 0
        assert stats.sorted_accesses > 0

    def test_small_dataset_exhaustive(self):
        data = Dataset(np.array([[0.9, 0.1], [0.5, 0.5], [0.1, 0.9]]))
        weight = np.array([0.6, 0.4])
        reference = top_k(data, weight, 2)
        candidate = no_random_access_algorithm(data, weight, 2)
        assert candidate.index_set == reference.index_set


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=120),
    d=st.integers(min_value=2, max_value=5),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_all_engines_agree_property(n, d, k, seed):
    """Property: every engine produces the reference top-k set and threshold."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.random((n, d)))
    weight = _random_weight(d, rng)
    k = min(k, n)
    reference = top_k(dataset, weight, k)
    bnb = branch_and_bound_top_k(dataset, weight, k)
    ta = threshold_algorithm(dataset, weight, k)
    nra = no_random_access_algorithm(dataset, weight, k)
    assert bnb.indices.tolist() == reference.indices.tolist()
    assert ta.index_set == reference.index_set
    assert nra.index_set == reference.index_set
    for engine_result in (bnb, ta, nra):
        assert engine_result.threshold == pytest.approx(reference.threshold)
