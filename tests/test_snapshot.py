"""Round-trip and refusal tests for the engine cache snapshot format.

Covers the durable warm-cache contract end to end:

* **restore-then-query parity** — a fresh engine restored from a snapshot
  answers its recorded query mix byte-identically, with first-query cache
  hits, at d=3 and d=4 and with the prefilter on or off;
* **state coverage** — empty caches, post-mutation caches, skyband-only
  restores;
* **refusals** — truncated and corrupt files, base64/array rot, newer
  snapshot versions, mismatched datasets and prefilter modes all raise the
  typed :class:`~repro.exceptions.SerializationError` instead of restoring
  something subtly wrong.
"""

import copy
import json

import numpy as np
import pytest

from repro.core.serialization import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    dataset_digest,
    load_engine_snapshot,
    restore_engine,
    save_engine_snapshot,
    snapshot_engine,
)
from repro.data.generators import generate_synthetic
from repro.engine import ShardedEngine, TopRREngine
from repro.exceptions import InvalidParameterError, SerializationError
from repro.preference.random_regions import random_hypercube_region


def _workload(d, seed=7, n_pairs=3, k_max=5):
    """A deterministic (k, region) mix for a ``d``-attribute dataset."""
    return [
        (1 + (seed + i) % k_max, random_hypercube_region(d, 0.3, rng=seed + 1 + i))
        for i in range(n_pairs)
    ]


def _warm_engine(n=90, d=3, seed=7, **engine_kwargs):
    dataset = generate_synthetic("IND", n, d, rng=seed)
    engine = TopRREngine(dataset, rng=seed, **engine_kwargs)
    pairs = _workload(d, seed=seed)
    results = [engine.query(k, region) for k, region in pairs]
    return dataset, engine, pairs, results


def _assert_parity(engine, restored, pairs, results):
    """``restored`` must answer ``pairs`` byte-identically, from cache."""
    for (k, region), expected in zip(pairs, results):
        before = restored.cache_info()["results"]["hits"]
        answer = restored.query(k, region)
        assert restored.cache_info()["results"]["hits"] == before + 1, (
            "restored engine must answer its recorded mix from the result cache"
        )
        assert answer.vertices_reduced.tobytes() == expected.vertices_reduced.tobytes()
        assert answer.thresholds.tobytes() == expected.thresholds.tobytes()
        assert answer.full_weights.tobytes() == expected.full_weights.tobytes()
        assert list(answer.filtered.option_ids) == list(expected.filtered.option_ids)


class TestRoundTrip:
    @pytest.mark.parametrize("d", [3, 4])
    def test_restore_then_query_parity(self, d):
        dataset, engine, pairs, results = _warm_engine(d=d)
        payload = snapshot_engine(engine)
        restored = TopRREngine(dataset, rng=7)
        counts = restore_engine(restored, payload)
        assert counts["skyband_entries"] == len(pairs)
        assert counts["result_entries"] == len(pairs)
        assert counts["memo_rows"] > 0
        _assert_parity(engine, restored, pairs, results)

    def test_skyband_only_restore_still_solves_identically(self):
        dataset, engine, pairs, results = _warm_engine()
        payload = snapshot_engine(engine)
        payload["result_entries"] = []
        restored = TopRREngine(dataset, rng=7)
        counts = restore_engine(restored, payload)
        assert counts["result_entries"] == 0
        for (k, region), expected in zip(pairs, results):
            before = restored.cache_info()["skyband"]["hits"]
            answer = restored.query(k, region)
            assert restored.cache_info()["skyband"]["hits"] == before + 1
            assert answer.vertices_reduced.tobytes() == expected.vertices_reduced.tobytes()

    def test_prefilter_off_round_trips_the_full_memo(self):
        dataset = generate_synthetic("IND", 60, 3, rng=3)
        engine = TopRREngine(dataset, prefilter=False, rng=3)
        pairs = _workload(3, seed=3, n_pairs=2)
        results = [engine.query(k, region) for k, region in pairs]
        payload = snapshot_engine(engine)
        assert payload["full_memo"] is not None
        restored = TopRREngine(dataset, prefilter=False, rng=3)
        counts = restore_engine(restored, payload)
        assert counts["memo_rows"] > 0
        _assert_parity(engine, restored, pairs, results)

    def test_empty_cache_snapshot_round_trips(self):
        dataset = generate_synthetic("IND", 40, 3, rng=5)
        engine = TopRREngine(dataset, rng=5)
        payload = snapshot_engine(engine)
        assert payload["skyband_entries"] == []
        assert payload["result_entries"] == []
        restored = TopRREngine(dataset, rng=5)
        counts = restore_engine(restored, payload)
        assert counts == {"skyband_entries": 0, "result_entries": 0, "memo_rows": 0}
        # and the restored engine still solves normally afterwards
        k, region = _workload(3, seed=5, n_pairs=1)[0]
        assert restored.query(k, region).n_vertices >= 0

    def test_post_mutation_snapshot_binds_to_the_mutated_dataset(self):
        dataset, engine, pairs, _results = _warm_engine()
        rng = np.random.default_rng(11)
        inserted, delta = engine.dataset.insert_options(rng.random((3, 3)))
        engine.apply_delta(inserted, delta)
        mutated, delta = inserted.delete_options(positions=[0, 1])
        engine.apply_delta(mutated, delta)
        post = [engine.query(k, region) for k, region in pairs]

        payload = snapshot_engine(engine)
        assert payload["dataset"]["digest"] == dataset_digest(mutated)
        # the pre-mutation dataset is refused...
        with pytest.raises(SerializationError):
            restore_engine(TopRREngine(dataset, rng=7), payload)
        # ...the mutated one restores with full parity
        restored = TopRREngine(mutated, rng=7)
        restore_engine(restored, payload)
        _assert_parity(engine, restored, pairs, post)

    def test_save_load_caches_file_round_trip(self, tmp_path):
        dataset, engine, pairs, results = _warm_engine()
        path = engine.save_caches(tmp_path / "caches.json")
        assert path.exists()
        restored = TopRREngine(dataset, rng=7)
        counts = restored.load_caches(path)
        assert counts["result_entries"] == len(pairs)
        _assert_parity(engine, restored, pairs, results)

    def test_snapshot_does_not_capture_query_counters(self):
        dataset, engine, pairs, _results = _warm_engine()
        restored = TopRREngine(dataset, rng=7)
        restore_engine(restored, snapshot_engine(engine))
        assert restored.n_queries == 0


class TestShardedDelegation:
    def test_sharded_save_then_unsharded_restore(self, tmp_path):
        dataset = generate_synthetic("IND", 80, 3, rng=9)
        sharded = ShardedEngine(dataset, n_shards=2, executor="serial", rng=9)
        try:
            pairs = _workload(3, seed=9, n_pairs=2)
            results = [sharded.query(k, region) for k, region in pairs]
            path = sharded.save_caches(tmp_path / "sharded.json")
        finally:
            sharded.close()
        restored = TopRREngine(dataset, rng=9)
        counts = restored.load_caches(path)
        assert counts["result_entries"] == len(pairs)
        for (k, region), expected in zip(pairs, results):
            answer = restored.query(k, region)
            assert answer.vertices_reduced.tobytes() == expected.vertices_reduced.tobytes()

    def test_sharded_restore_short_circuits_the_fanout(self, tmp_path):
        dataset = generate_synthetic("IND", 80, 3, rng=9)
        pairs = _workload(3, seed=9, n_pairs=2)
        first = ShardedEngine(dataset, n_shards=2, executor="serial", rng=9)
        try:
            results = [first.query(k, region) for k, region in pairs]
            path = first.save_caches(tmp_path / "sharded.json")
        finally:
            first.close()
        second = ShardedEngine(dataset, n_shards=2, executor="serial", rng=9)
        try:
            second.load_caches(path)
            for (k, region), expected in zip(pairs, results):
                answer = second.query(k, region)
                assert answer.vertices_reduced.tobytes() == expected.vertices_reduced.tobytes()
        finally:
            second.close()


class TestRefusals:
    def test_truncated_file_raises_typed_error(self, tmp_path):
        dataset, engine, _pairs, _results = _warm_engine()
        path = engine.save_caches(tmp_path / "caches.json")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SerializationError):
            TopRREngine(dataset, rng=7).load_caches(path)

    def test_non_json_file_raises_typed_error(self, tmp_path):
        dataset = generate_synthetic("IND", 40, 3, rng=5)
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\x01 not json at all")
        with pytest.raises(SerializationError):
            TopRREngine(dataset, rng=5).load_caches(path)

    def test_missing_file_raises_typed_error(self, tmp_path):
        dataset = generate_synthetic("IND", 40, 3, rng=5)
        with pytest.raises(SerializationError):
            TopRREngine(dataset, rng=5).load_caches(tmp_path / "absent.json")

    def test_wrong_format_marker_is_refused(self):
        dataset, engine, _pairs, _results = _warm_engine()
        payload = snapshot_engine(engine)
        payload["format"] = "something-else"
        with pytest.raises(SerializationError):
            restore_engine(TopRREngine(dataset, rng=7), payload)

    def test_newer_snapshot_version_is_refused(self):
        dataset, engine, _pairs, _results = _warm_engine()
        payload = snapshot_engine(engine)
        assert payload["format"] == SNAPSHOT_FORMAT
        payload["schema_version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SerializationError, match="snapshot schema version"):
            restore_engine(TopRREngine(dataset, rng=7), payload)

    def test_mismatched_dataset_is_refused(self):
        _dataset, engine, _pairs, _results = _warm_engine()
        other = generate_synthetic("IND", 90, 3, rng=8)
        with pytest.raises(SerializationError, match="does not match"):
            restore_engine(TopRREngine(other, rng=7), snapshot_engine(engine))

    def test_prefilter_mode_mismatch_is_refused(self):
        dataset, engine, _pairs, _results = _warm_engine()
        unfiltered = TopRREngine(dataset, prefilter=False, rng=7)
        with pytest.raises(SerializationError, match="prefilter"):
            restore_engine(unfiltered, snapshot_engine(engine))

    def test_corrupt_base64_payload_is_refused(self):
        dataset, engine, _pairs, _results = _warm_engine()
        payload = copy.deepcopy(snapshot_engine(engine))
        payload["skyband_entries"][0]["full_vertices"]["data"] = "%%%not-base64%%%"
        with pytest.raises(SerializationError):
            restore_engine(TopRREngine(dataset, rng=7), payload)

    def test_mismatched_memo_key_count_is_refused(self):
        dataset, engine, _pairs, _results = _warm_engine()
        payload = copy.deepcopy(snapshot_engine(engine))
        memo_doc = payload["skyband_entries"][0]["memo"]
        assert memo_doc["row_keys"], "warm engine must have memo rows to corrupt"
        memo_doc["row_keys"] = memo_doc["row_keys"][:-1]
        with pytest.raises(SerializationError):
            restore_engine(TopRREngine(dataset, rng=7), payload)

    def test_typed_error_is_catchable_as_invalid_parameter(self, tmp_path):
        # Backwards compatibility: callers that predate the dedicated
        # SerializationError still catch load failures.
        dataset = generate_synthetic("IND", 40, 3, rng=5)
        path = tmp_path / "garbage.json"
        path.write_text("{}")
        with pytest.raises(InvalidParameterError):
            TopRREngine(dataset, rng=5).load_caches(path)

    def test_snapshot_json_is_pure_json(self, tmp_path):
        # The on-disk format must survive a plain json round trip (no
        # numpy scalars or other non-JSON leakage).
        _dataset, engine, _pairs, _results = _warm_engine()
        path = save_engine_snapshot(engine, tmp_path / "caches.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == SNAPSHOT_FORMAT

    def test_load_engine_snapshot_matches_restore_engine(self, tmp_path):
        dataset, engine, pairs, results = _warm_engine()
        path = save_engine_snapshot(engine, tmp_path / "caches.json")
        restored = TopRREngine(dataset, rng=7)
        counts = load_engine_snapshot(restored, path)
        assert counts["result_entries"] == len(pairs)
        _assert_parity(engine, restored, pairs, results)
