"""Unit and integration tests for cost-optimal option creation and enhancement."""

import numpy as np
import pytest

from repro.core.placement import (
    PlacementResult,
    cheapest_enhancement,
    cheapest_new_option,
    cost_saving_vs_competitors,
    smallest_k_within_budget,
)
from repro.core.toprr import solve_toprr
from repro.data.surrogates import cnet_laptops
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.topk.query import rank_of


@pytest.fixture(scope="module")
def laptop_result():
    dataset = cnet_laptops()
    region = PreferenceRegion.interval(0.7, 0.8)
    return solve_toprr(dataset, k=3, region=region)


class TestCheapestNewOption:
    def test_placement_is_top_ranking(self, laptop_result):
        placement = cheapest_new_option(laptop_result)
        assert isinstance(placement, PlacementResult)
        space = PreferenceSpace(2)
        for reduced in np.linspace(0.7, 0.8, 7):
            weight = space.to_full([reduced])
            assert rank_of(laptop_result.dataset, weight, placement.option) <= 3

    def test_placement_is_cheapest_among_samples(self, laptop_result):
        placement = cheapest_new_option(laptop_result)
        rng = np.random.default_rng(0)
        samples = laptop_result.polytope.sample(300, rng)
        sample_costs = np.sum(samples**2, axis=1)
        assert placement.cost <= sample_costs.min() + 1e-6

    def test_weighted_cost_changes_the_optimum(self, laptop_result):
        balanced = cheapest_new_option(laptop_result)
        battery_expensive = cheapest_new_option(laptop_result, weights=[0.1, 10.0])
        assert battery_expensive.option[1] <= balanced.option[1] + 1e-9

    def test_cost_matches_sum_of_squares(self, laptop_result):
        placement = cheapest_new_option(laptop_result)
        assert placement.cost == pytest.approx(float(np.sum(placement.option**2)), abs=1e-9)


class TestCheapestEnhancement:
    def test_already_top_ranking_option_is_unchanged(self, laptop_result):
        existing = np.array([0.99, 0.99])
        placement = cheapest_enhancement(laptop_result, existing)
        assert placement.cost == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(placement.option, existing)

    def test_enhancement_reaches_the_region(self, laptop_result):
        weak_laptop = np.array([0.4, 0.4])
        placement = cheapest_enhancement(laptop_result, weak_laptop)
        assert placement.cost > 0
        space = PreferenceSpace(2)
        for reduced in (0.7, 0.75, 0.8):
            weight = space.to_full([reduced])
            assert rank_of(laptop_result.dataset, weight, placement.option + 1e-9) <= 3

    def test_enhancement_cost_is_minimal_among_samples(self, laptop_result):
        weak_laptop = np.array([0.4, 0.4])
        placement = cheapest_enhancement(laptop_result, weak_laptop)
        rng = np.random.default_rng(1)
        samples = laptop_result.polytope.sample(300, rng)
        distances = np.linalg.norm(samples - weak_laptop, axis=1)
        assert placement.cost <= distances.min() + 1e-6


class TestCostSaving:
    def test_cost_saving_bounds(self, laptop_result):
        placement = cheapest_new_option(laptop_result)
        low, high = cost_saving_vs_competitors(laptop_result, placement)
        assert low <= high
        assert high <= 1.0

    def test_no_competitors_case(self, figure1):
        # k = 1 with a tiny region: only the very best options are inside oR
        # and the competitor set may be empty after excluding boundary effects.
        region = PreferenceRegion.interval(0.45, 0.5)
        result = solve_toprr(figure1, 1, region)
        placement = cheapest_new_option(result)
        low, high = cost_saving_vs_competitors(result, placement)
        assert (low, high) == (0.0, 0.0) or low <= high


class TestBudgetedRedesign:
    def test_smallest_k_within_budget_monotonicity(self, figure1):
        region = PreferenceRegion.interval(0.3, 0.6)
        p5 = figure1.values[4]
        generous = smallest_k_within_budget(figure1, region, p5, budget=2.0, k_max=4)
        tight = smallest_k_within_budget(figure1, region, p5, budget=0.05, k_max=4)
        assert generous is not None
        assert generous.k <= 4
        if tight is not None:
            assert tight.k >= generous.k
            assert tight.cost <= 0.05 + 1e-9

    def test_zero_budget_requires_already_top_ranking(self, figure1):
        region = PreferenceRegion.interval(0.3, 0.6)
        p2 = figure1.values[1]
        placement = smallest_k_within_budget(figure1, region, p2, budget=0.0, k_max=3)
        assert placement is not None
        assert placement.cost == pytest.approx(0.0, abs=1e-9)

    def test_invalid_parameters(self, figure1):
        region = PreferenceRegion.interval(0.3, 0.6)
        with pytest.raises(InvalidParameterError):
            smallest_k_within_budget(figure1, region, figure1.values[0], budget=-1.0, k_max=3)
        with pytest.raises(InvalidParameterError):
            smallest_k_within_budget(figure1, region, figure1.values[0], budget=1.0, k_max=0)
