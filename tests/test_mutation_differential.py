"""Mutation-differential oracle harness: mutate, query, byte-compare.

The incremental cache maintenance of ``apply_delta`` is only allowed to keep
a cached entry when the entry is *provably* byte-identical to what a fresh
engine would compute on the mutated dataset (the eviction-soundness lemma in
:mod:`repro.core.mutation`).  A stale survivor is a silently wrong answer,
so this harness fuzzes the contract end to end: seeded random
insert/delete/query schedules where, after every mutation, every query
answered by the long-lived engine is byte-compared — ``V_all``, lifted
weights, thresholds, output polytope, r-skyband ids and values — against a
from-scratch engine built directly on the mutated dataset.

200 schedules per dimension (d=3 and d=4, chunked for ``pytest-xdist``),
plus sharded runs (1/2/4 shards, both strategies) and the shard-geometry
edges: deleting down until shards are empty and inserting past the original
contiguous shard bounds.

The module carries the ``mutation`` marker: CI runs it in the dedicated
``mutation-fuzz`` lane while the fast/slow lanes exclude it (a plain
``pytest -x -q`` still runs everything).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import generate_anticorrelated, generate_independent
from repro.engine import ShardedEngine, TopRREngine
from repro.preference.random_regions import random_hypercube_region

pytestmark = pytest.mark.mutation

#: Schedules per dimension demanded by the acceptance criteria.
N_SCHEDULES = 200


def assert_bit_identical(result, oracle, context=""):
    """Byte-compare every output array of a TopRR result against the oracle."""
    assert result.vertices_reduced.tobytes() == oracle.vertices_reduced.tobytes(), context
    assert result.full_weights.tobytes() == oracle.full_weights.tobytes(), context
    assert result.thresholds.tobytes() == oracle.thresholds.tobytes(), context
    assert np.array_equal(result.polytope.vertices, oracle.polytope.vertices), context
    assert result.filtered.option_ids == oracle.filtered.option_ids, context
    assert result.filtered.values.tobytes() == oracle.filtered.values.tobytes(), context


def mutate_once(rng, dataset, d, max_insert=6, max_delete=4):
    """One random insert *or* delete step; returns ``(mutated, delta)``."""
    can_delete = dataset.n_options > 12
    if can_delete and rng.random() < 0.45:
        count = int(rng.integers(1, max_delete + 1))
        victims = rng.choice(dataset.option_ids, size=count, replace=False).tolist()
        return dataset.delete_options(option_ids=victims)
    count = int(rng.integers(1, max_insert + 1))
    # A mix of bulk-interior points (usually refused admission) and
    # near-corner points (likely to enter bands and force evictions), so
    # both maintenance verdicts are exercised.
    values = rng.random((count, d))
    sharp = rng.random(count) < 0.25
    values[sharp] = 0.85 + 0.15 * rng.random((int(sharp.sum()), d))
    return dataset.insert_options(values)


def run_schedule(seed, d, n0, max_k, engine_factory, n_events=3, queries_per_event=2):
    """One seeded insert/delete/query schedule against a long-lived engine.

    After every mutation the engine answers ``queries_per_event`` queries,
    each byte-compared against a fresh :class:`TopRREngine` built on the
    mutated dataset (the oracle never sees any maintained state).
    """
    rng = np.random.default_rng(seed)
    generate = generate_independent if d == 3 else generate_anticorrelated
    dataset = generate(n0, d, rng=int(rng.integers(0, 2**31)))
    regions = [
        random_hypercube_region(d, 0.07, rng=int(rng.integers(0, 2**31)))
        for _ in range(3)
    ]
    ks = sorted({int(rng.integers(2, max_k + 1)) for _ in range(2)})
    engine = engine_factory(dataset)

    # Warm the caches so the mutations actually have entries to maintain.
    for region in regions:
        for k in ks:
            engine.query(k, region)

    current = dataset
    for event in range(n_events):
        current, delta = mutate_once(rng, current, d)
        engine.apply_delta(current, delta)
        oracle_engine = TopRREngine(current, rng=0)
        for _ in range(queries_per_event):
            region = regions[int(rng.integers(0, len(regions)))]
            k = ks[int(rng.integers(0, len(ks)))]
            result = engine.query(k, region)
            oracle = oracle_engine.query(k, region)
            assert_bit_identical(
                result, oracle, context=f"seed={seed} d={d} event={event} k={k}"
            )
            assert result.dataset is current
    return engine


class TestUnshardedSchedules:
    """200 seeded schedules per dimension against :class:`TopRREngine`."""

    @pytest.mark.parametrize("chunk", range(20))
    def test_fuzz_d3(self, chunk):
        per_chunk = N_SCHEDULES // 20
        for i in range(per_chunk):
            seed = 10_000 + chunk * per_chunk + i
            run_schedule(seed, d=3, n0=60 + 10 * (seed % 7), max_k=5,
                         engine_factory=lambda ds: TopRREngine(ds, rng=0))

    @pytest.mark.parametrize("chunk", range(25))
    def test_fuzz_d4(self, chunk):
        per_chunk = N_SCHEDULES // 25
        for i in range(per_chunk):
            seed = 50_000 + chunk * per_chunk + i
            run_schedule(seed, d=4, n0=30 + 5 * (seed % 5), max_k=3,
                         engine_factory=lambda ds: TopRREngine(ds, rng=0),
                         queries_per_event=1)


class TestShardedSchedules:
    """Sharded engines maintain the coordinator caches and remap shards."""

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_fuzz_d3(self, n_shards, strategy):
        for i in range(4):
            seed = 90_000 + 100 * n_shards + 10 * len(strategy) + i

            def factory(ds):
                return ShardedEngine(
                    ds, n_shards=n_shards, strategy=strategy, executor="serial", rng=0
                )

            engine = run_schedule(seed, d=3, n0=120, max_k=5, engine_factory=factory)
            assert engine.plan[0].n_options == engine.dataset.n_options
            engine.close()

    def test_fuzz_d4_sharded(self):
        def factory(ds):
            return ShardedEngine(ds, n_shards=2, strategy="hash", executor="serial", rng=0)

        engine = run_schedule(95_001, d=4, n0=40, max_k=3,
                              engine_factory=factory, queries_per_event=1)
        engine.close()

    def test_process_executor_after_mutation(self):
        """Worker pools survive a mutation: only the plan/engines rebuild."""
        dataset = generate_independent(600, 3, rng=3)
        region = random_hypercube_region(3, 0.07, rng=4)
        with ShardedEngine(dataset, n_shards=2, executor="process", rng=0) as engine:
            engine.query(4, region)
            mutated, delta = dataset.insert_options(
                np.random.default_rng(5).random((30, 3))
            )
            engine.apply_delta(mutated, delta)
            result = engine.query(4, region)
            oracle = TopRREngine(mutated, rng=0).query(4, region)
            assert_bit_identical(result, oracle)


class TestShardGeometryEdges:
    def test_delete_to_empty_shard(self):
        """Deleting below the shard count leaves empty shards, not failures."""
        dataset = generate_independent(40, 3, rng=11)
        region = random_hypercube_region(3, 0.08, rng=12)
        with ShardedEngine(dataset, n_shards=4, executor="serial", rng=0) as engine:
            engine.query(3, region)
            current = dataset
            while current.n_options > 3:
                count = min(8, current.n_options - 3)
                current, delta = current.delete_options(
                    positions=list(range(current.n_options - count, current.n_options))
                )
                engine.apply_delta(current, delta)
                result = engine.query(2, region)
                oracle = TopRREngine(current, rng=0).query(2, region)
                assert_bit_identical(result, oracle, context=f"n={current.n_options}")
            # 3 options across 4 shards: at least one shard is now empty.
            assert any(spec.n_rows == 0 for spec in engine.plan)

    def test_insert_past_shard_capacity(self):
        """Inserts grow the contiguous bounds; stale bounds must never apply."""
        dataset = generate_independent(20, 3, rng=21)
        region = random_hypercube_region(3, 0.08, rng=22)
        rng = np.random.default_rng(23)
        with ShardedEngine(dataset, n_shards=4, strategy="contiguous",
                           executor="serial", rng=0) as engine:
            old_bounds = [spec.bounds() for spec in engine.plan]
            engine.query(3, region)
            # Quintuple the dataset: every original shard's row range is
            # exceeded, so any stale position map would slice garbage.
            current, delta = dataset.insert_options(rng.random((80, 3)))
            engine.apply_delta(current, delta)
            assert [spec.bounds() for spec in engine.plan] != old_bounds
            result = engine.query(3, region)
            oracle = TopRREngine(current, rng=0).query(3, region)
            assert_bit_identical(result, oracle)
