"""Tests for the exact 3-D polyhedron geometry backend.

Three layers, mirroring ``tests/test_geometry_polygon.py`` one dimension up:

* **property-based parity**: random halfspace sets and random split cascades
  must give *bit-identical* canonical vertices and identical
  emptiness / full-dimensionality verdicts on the polyhedron and the
  LP/qhull backends, with closely matching Chebyshev radii and volumes;
* **degenerate cases**: flat slabs, empty systems, slivers around the radius
  tolerance, grazing cuts, and unbounded intermediate H-representations;
* **unit tests** of the :class:`~repro.geometry.polyhedron.Polyhedron`
  primitives (clipping, cutting with a shared cut facet, volume, face
  structure, counters).
"""

import numpy as np
import pytest

from repro.exceptions import DegeneratePolytopeError
from repro.geometry.chebyshev import chebyshev_center
from repro.geometry.counters import geometry_counters
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polyhedron import (
    Polyhedron,
    polyhedron_chebyshev,
    polyhedron_from_halfspaces,
)
from repro.geometry.polytope import ConvexPolytope

UNIT_CUBE_A = np.vstack([np.eye(3), -np.eye(3)])
UNIT_CUBE_B = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])


def _pair(A, b, **kwargs):
    """The same H-representation on both backends."""
    return (
        ConvexPolytope(A, b, backend="polyhedron", **kwargs),
        ConvexPolytope(A, b, backend="qhull", **kwargs),
    )


def _random_halfspace_system(rng, n_extra):
    """Unit cube plus ``n_extra`` random halfspaces through its interior."""
    A = [row for row in UNIT_CUBE_A]
    b = list(UNIT_CUBE_B)
    for _ in range(n_extra):
        normal = rng.normal(size=3)
        normal /= np.linalg.norm(normal)
        point = rng.uniform(0.15, 0.85, size=3)
        A.append(normal)
        b.append(float(normal @ point))
    return np.asarray(A), np.asarray(b)


class TestBackendParity:
    """Polyhedron and LP/qhull backends must agree bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_halfspace_sets(self, seed):
        rng = np.random.default_rng(seed)
        for trial in range(20):
            A, b = _random_halfspace_system(rng, int(rng.integers(1, 7)))
            poly, ref = _pair(A, b)
            assert poly.is_empty() == ref.is_empty()
            assert poly.is_full_dimensional() == ref.is_full_dimensional()
            if poly.is_empty() or not poly.is_full_dimensional():
                continue
            assert np.array_equal(poly.vertices, ref.vertices), f"trial {trial}"
            assert poly.chebyshev_radius == pytest.approx(ref.chebyshev_radius, rel=1e-6, abs=1e-9)
            assert poly.volume() == pytest.approx(ref.volume(), rel=1e-6, abs=1e-10)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_random_split_cascades(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(20):
            poly = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
            ref = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="qhull")
            for _ in range(7):
                normal = rng.normal(size=3)
                offset = float(normal @ rng.uniform(0.1, 0.9, size=3))
                hyperplane = Hyperplane(normal, offset)
                side = int(rng.integers(2))
                poly_child = poly.split(hyperplane)[side]
                ref_child = ref.split(hyperplane)[side]
                assert poly_child.backend == "polyhedron"
                assert ref_child.backend == "qhull"
                assert poly_child.is_empty() == ref_child.is_empty()
                assert poly_child.is_full_dimensional() == ref_child.is_full_dimensional()
                if poly_child.is_empty() or not poly_child.is_full_dimensional():
                    break
                assert np.array_equal(poly_child.vertices, ref_child.vertices)
                poly, ref = poly_child, ref_child

    def test_split_children_share_cut_vertex_bytes(self):
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
        below, above = cube.split(Hyperplane(np.array([1.0, 0.3, 0.2]), 0.8))
        below_bytes = {v.tobytes() for v in below.vertices}
        above_bytes = {v.tobytes() for v in above.vertices}
        # The cut-facet vertices appear in both children with identical bytes.
        shared = below_bytes & above_bytes
        assert len(shared) >= 3

    def test_backend_counters(self):
        geometry_counters.reset()
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
        below, above = cube.split(Hyperplane(np.array([1.0, 0.0, 0.0]), 0.5))
        _ = below.vertices, above.vertices, below.chebyshev_radius
        snap = geometry_counters.snapshot()
        assert snap.n_lp_calls == 0
        assert snap.n_qhull_calls == 0
        assert snap.n_clip_calls >= 7  # 6 cube clips for the parent + 1 cut
        geometry_counters.reset()
        ref = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="qhull")
        _ = ref.vertices
        snap = geometry_counters.snapshot()
        assert snap.n_lp_calls >= 1 and snap.n_qhull_calls == 1 and snap.n_clip_calls == 0

    def test_vertices_match_on_the_cube(self):
        poly, ref = _pair(UNIT_CUBE_A, UNIT_CUBE_B)
        assert np.array_equal(poly.vertices, ref.vertices)
        assert poly.vertices.shape == (8, 3)


class TestDegenerateCases:
    """Flat bodies, empty systems, grazing cuts: verdicts must mirror the LP path."""

    SLAB_A = np.vstack([np.eye(3), -np.eye(3)])

    def test_flat_slab_is_degenerate_on_both_backends(self):
        b = np.array([0.5, 1.0, 1.0, -0.5, 0.0, 0.0])  # x pinned to 0.5
        for polytope in _pair(self.SLAB_A, b):
            assert not polytope.is_empty()
            assert not polytope.is_full_dimensional()
            with pytest.raises(DegeneratePolytopeError):
                _ = polytope.vertices

    def test_empty_system_on_both_backends(self):
        b = np.array([0.4, 1.0, 1.0, -0.5, 0.0, 0.0])  # x <= 0.4 and x >= 0.5
        for polytope in _pair(self.SLAB_A, b):
            assert polytope.is_empty()
            assert polytope.vertices.shape == (0, 3)
            assert polytope.chebyshev_radius == float("-inf")

    @pytest.mark.parametrize("width,full_dim", [(1e-9, True), (1e-11, False)])
    def test_sliver_verdicts_straddle_the_radius_tolerance(self, width, full_dim):
        b = np.array([0.5, 1.0, 1.0, -0.5 + width, 0.0, 0.0])
        for polytope in _pair(self.SLAB_A, b):
            assert polytope.is_full_dimensional() == full_dim

    def test_unbounded_intermediate_h_representation(self):
        A = np.array([[1.0, 0.0, 0.0]])
        b = np.array([0.5])
        polytope = ConvexPolytope(A, b, backend="polyhedron")
        assert not polytope.is_empty()
        assert polytope.is_full_dimensional()
        assert polyhedron_from_halfspaces(A, b).touches_bound()
        # Bounding it afterwards recovers an ordinary polyhedron.
        bounded = polytope.intersect_halfspaces(
            [
                Halfspace([-1.0, 0.0, 0.0], 0.0),
                Halfspace([0.0, 1.0, 0.0], 1.0),
                Halfspace([0.0, -1.0, 0.0], 0.0),
                Halfspace([0.0, 0.0, 1.0], 1.0),
                Halfspace([0.0, 0.0, -1.0], 0.0),
            ]
        )
        assert not bounded._ensure_polyhedron().touches_bound()
        assert bounded.volume() == pytest.approx(0.5)

    def test_grazing_cut_keeps_on_vertices_in_both_children(self):
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
        below, above = cube.split(Hyperplane(np.array([1.0, 0.0, 0.0]), 1.0))
        # `above` is the face x = 1: non-empty but lower-dimensional.
        assert below.is_full_dimensional()
        assert not above.is_empty()
        assert not above.is_full_dimensional()

    def test_cut_through_a_vertex(self):
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
        ref = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="qhull")
        # The plane x + y + z = 3 touches the cube only at (1, 1, 1).
        hyperplane = Hyperplane(np.array([1.0, 1.0, 1.0]), 3.0)
        below, above = cube.split(hyperplane)
        ref_below, ref_above = ref.split(hyperplane)
        assert below.is_full_dimensional() == ref_below.is_full_dimensional()
        assert above.is_empty() == ref_above.is_empty()
        assert above.is_full_dimensional() == ref_above.is_full_dimensional()
        assert np.array_equal(below.vertices, ref_below.vertices)


class TestPolyhedronPrimitives:
    """Unit tests of the closed-form polyhedron operations."""

    def test_build_clip_and_volume(self):
        polyhedron = polyhedron_from_halfspaces(UNIT_CUBE_A, UNIT_CUBE_B)
        assert polyhedron.n_vertices == 8
        assert polyhedron.n_faces == 6
        assert not polyhedron.touches_bound()
        assert polyhedron.volume() == pytest.approx(1.0)
        normal = np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0)
        clipped = polyhedron.clip(normal, float(normal @ [1.0, 1.0, 0.0]), label=6)
        # The corner cut at (1,1,1) removes a tetrahedron of volume 1/6.
        assert clipped.volume() == pytest.approx(1.0 - 1.0 / 6.0)
        assert 6 in set(label for _ring, label in clipped.faces)

    def test_cut_shares_cap_label_and_crossing_bytes(self):
        polyhedron = polyhedron_from_halfspaces(UNIT_CUBE_A, UNIT_CUBE_B)
        below, above = polyhedron.cut(np.array([1.0, 0.0, 0.0]), 0.25, label=6)
        assert below.volume() + above.volume() == pytest.approx(1.0)
        assert 6 in set(label for _ring, label in below.faces)
        assert 6 in set(label for _ring, label in above.faces)
        below_bytes = {p.tobytes() for p in below.points}
        above_bytes = {p.tobytes() for p in above.points}
        assert len(below_bytes & above_bytes) == 4

    def test_every_edge_is_shared_by_two_faces(self):
        rng = np.random.default_rng(11)
        A, b = _random_halfspace_system(rng, 4)
        polyhedron = polyhedron_from_halfspaces(A, b)
        counts: dict = {}
        for ring, _label in polyhedron.faces:
            m = ring.shape[0]
            for pos in range(m):
                i, j = int(ring[pos]), int(ring[(pos + 1) % m])
                key = (min(i, j), max(i, j))
                counts[key] = counts.get(key, 0) + 1
        assert counts and all(count == 2 for count in counts.values())

    def test_facet_labels_are_nonredundant_rows(self):
        A, b = _random_halfspace_system(np.random.default_rng(3), 2)
        # Append a clearly redundant constraint.
        A = np.vstack([A, np.array([[1.0, 0.0, 0.0]])])
        b = np.concatenate([b, [50.0]])
        polyhedron = polyhedron_from_halfspaces(A, b)
        assert A.shape[0] - 1 not in set(polyhedron.facet_labels().tolist())

    def test_polyhedron_chebyshev_of_a_box(self):
        A = UNIT_CUBE_A
        b = np.array([4.0, 2.0, 1.0, 0.0, 0.0, 0.0])
        polyhedron = polyhedron_from_halfspaces(A, b)
        center, radius = polyhedron_chebyshev(A, b, polyhedron)
        assert radius == pytest.approx(0.5)
        assert center[2] == pytest.approx(0.5)
        _lp_center, lp_radius = chebyshev_center(A, b)
        assert radius == pytest.approx(lp_radius, abs=1e-9)

    def test_empty_polyhedron_chebyshev(self):
        A = np.array([[1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        b = np.array([0.0, -1.0])
        polyhedron = polyhedron_from_halfspaces(A, b)
        assert polyhedron.is_empty()
        center, radius = polyhedron_chebyshev(A, b, polyhedron)
        assert center is None and radius == float("-inf")

    def test_prune_redundant_keeps_polyhedron_consistent(self):
        cube = ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend="polyhedron")
        child = cube.intersect_halfspace(Halfspace([1.0, 0.0, 0.0], 2.0))
        pruned = child.prune_redundant()
        assert pruned.n_constraints == 6
        assert pruned.backend == "polyhedron"
        assert np.array_equal(pruned.vertices, cube.vertices)
        below, above = pruned.split(Hyperplane(np.array([0.0, 1.0, 0.0]), 0.5))
        assert below.volume() + above.volume() == pytest.approx(1.0)
