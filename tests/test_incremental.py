"""Tests for the incremental split-tree scoring path.

Three layers:

* a **parity suite** asserting that the memo-backed path
  (``incremental=True``, the default) produces bit-identical ``V_all``,
  identical :class:`~repro.core.stats.SolverStats` (modulo the cache
  counters only the incremental path populates), and identical
  accepted-region counts versus the from-scratch path, across seeds, ``k``
  values, both splitting strategies and all three solvers;
* **unit tests** of :class:`~repro.core.scorecache.VertexScoreMemo`:
  fingerprinting, hit/miss/eviction accounting, frontier batching, Lemma-5
  column slicing, and bit-identity of memo-assembled profiles;
* **kernel tie tests** pinning the reworked
  :func:`~repro.core.profiles.topk_order_matrix` (per-row boundary-tie
  resolution) to the batched-lexsort reference.
"""

import numpy as np
import pytest

from repro.core.kipr import WorkingSet
from repro.core.pac import PACSolver
from repro.core.profiles import RegionProfiles, affine_scores, topk_order_matrix
from repro.core.scorecache import VertexScoreMemo, pending_frontier, vertex_key
from repro.core.stats import SolverStats
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.engine import TopRREngine
from repro.preference.random_regions import random_hypercube_region
from repro.pruning.rskyband import r_skyband

#: Stats fields only the incremental path populates (excluded from parity).
CACHE_FIELDS = {
    "n_score_rows_computed",
    "n_score_rows_reused",
    "n_score_batches",
    "n_order_rows_computed",
    "n_order_rows_reused",
    "vertex_cache_hit_rate",
    "seconds",
}


def _solve(solver_cls, filtered, k, region, incremental, **kwargs):
    solver = solver_cls(rng=5, incremental=incremental, **kwargs)
    stats = SolverStats()
    vall = solver.partition(filtered, k, region, stats=stats)
    return vall, stats


def _comparable(stats: SolverStats) -> dict:
    return {key: value for key, value in stats.as_dict().items() if key not in CACHE_FIELDS}


class TestSplitTreeParity:
    """Incremental and from-scratch solves must be bit-identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 6])
    @pytest.mark.parametrize("solver_cls", [TASStarSolver, TASSolver])
    def test_tas_variants(self, solver_cls, k, seed):
        dataset = generate_anticorrelated(900, 3, rng=seed)
        region = random_hypercube_region(3, 0.15, rng=seed + 50)
        filtered = dataset.subset(r_skyband(dataset, k, region))
        vall_scratch, stats_scratch = _solve(solver_cls, filtered, k, region, False)
        vall_inc, stats_inc = _solve(solver_cls, filtered, k, region, True)
        assert np.array_equal(vall_scratch, vall_inc)
        assert _comparable(stats_scratch) == _comparable(stats_inc)
        # The accepted-region sets are pinned through the counters: same
        # number popped, split, and accepted by each test.
        assert stats_scratch.n_kipr_regions == stats_inc.n_kipr_regions
        assert stats_scratch.n_lemma7_regions == stats_inc.n_lemma7_regions
        assert stats_inc.n_score_rows_reused > 0

    @pytest.mark.parametrize("use_lemma5,use_lemma7", [(True, False), (False, True)])
    def test_tas_star_ablations(self, use_lemma5, use_lemma7):
        dataset = generate_independent(800, 3, rng=9)
        region = random_hypercube_region(3, 0.12, rng=59)
        filtered = dataset.subset(r_skyband(dataset, 5, region))
        kwargs = {"use_lemma5": use_lemma5, "use_lemma7": use_lemma7}
        vall_scratch, stats_scratch = _solve(TASStarSolver, filtered, 5, region, False, **kwargs)
        vall_inc, stats_inc = _solve(TASStarSolver, filtered, 5, region, True, **kwargs)
        assert np.array_equal(vall_scratch, vall_inc)
        assert _comparable(stats_scratch) == _comparable(stats_inc)

    def test_pac(self):
        dataset = generate_anticorrelated(700, 3, rng=4)
        region = random_hypercube_region(3, 0.1, rng=44)
        filtered = dataset.subset(r_skyband(dataset, 4, region))
        vall_scratch, stats_scratch = _solve(PACSolver, filtered, 4, region, False)
        vall_inc, stats_inc = _solve(PACSolver, filtered, 4, region, True)
        assert np.array_equal(vall_scratch, vall_inc)
        assert _comparable(stats_scratch) == _comparable(stats_inc)

    def test_engine_routes_memo_and_matches(self):
        """Engine queries (memo shared per skyband entry) equal fresh solves."""
        dataset = generate_independent(1_200, 3, rng=21)
        regions = [random_hypercube_region(3, 0.08, rng=70 + i) for i in range(3)]
        engine = TopRREngine(dataset, rng=5, result_cache_size=0)
        for k, region in [(3, regions[0]), (5, regions[1]), (5, regions[2]), (5, regions[1])]:
            served = engine.query(k, region)
            filtered = dataset.subset(r_skyband(dataset, k, region))
            vall_scratch, _ = _solve(TASStarSolver, filtered, k, region, False)
            assert np.array_equal(served.vertices_reduced, vall_scratch)
        # The repeated (5, regions[1]) query reused the first solve's rows.
        repeat = engine.query(5, regions[1])
        assert repeat.stats.vertex_cache_hit_rate > 0.9


class TestVertexScoreMemo:
    def _working(self, n=200, d=3, k=5, seed=3):
        dataset = generate_independent(n, d, rng=seed)
        return WorkingSet.from_dataset(dataset, k)

    def test_vertex_key_exact_and_zero_normalised(self):
        assert vertex_key(np.array([0.25, 0.5])) == vertex_key(np.array([0.25, 0.5]))
        assert vertex_key(np.array([0.25, 0.5])) != vertex_key(np.array([0.25, 0.5 + 1e-16]))
        assert vertex_key(np.array([-0.0, 0.5])) == vertex_key(np.array([0.0, 0.5]))

    def test_score_matrix_matches_kernel_and_counts_hits(self):
        working = self._working()
        memo = VertexScoreMemo.for_working(working)
        vertices = np.random.default_rng(0).random((4, 2)) / 2
        expected = affine_scores(vertices, working.coefficients, working.constants)
        assert np.array_equal(memo.score_matrix(vertices), expected)
        info = memo.info()
        assert info["rows"] == {
            "hits": 0, "misses": 4, "evictions": 0, "currsize": 4,
            "maxsize": memo.max_rows,
        }
        # Second request: all hits, one of them via a freshly built array.
        assert np.array_equal(memo.score_matrix(vertices.copy()), expected)
        assert memo.info()["rows"]["hits"] == 4
        assert memo.info()["n_batches"] == 1

    def test_eviction_is_lru_and_lossless(self):
        working = self._working()
        memo = VertexScoreMemo.for_working(working, max_rows=2)
        rng = np.random.default_rng(1)
        vertices = rng.random((5, 2)) / 2
        expected = affine_scores(vertices, working.coefficients, working.constants)
        for i in range(5):
            memo.score_matrix(vertices[i])
        info = memo.info()
        assert info["rows"]["currsize"] == 2
        assert info["rows"]["evictions"] == 3
        # Evicted rows are recomputed bit-identically on demand.
        assert np.array_equal(memo.score_matrix(vertices), expected)

    def test_region_profiles_bit_identical(self):
        working = self._working(n=300, k=6)
        memo = VertexScoreMemo.for_working(working)
        vertices = np.random.default_rng(2).random((5, 2)) / 2
        reference = RegionProfiles.compute(working, vertices)
        via_memo = memo.region_profiles(working, vertices)
        assert np.array_equal(via_memo.ordered, reference.ordered)
        assert np.array_equal(via_memo.sorted_sets, reference.sorted_sets)
        # Warm pass: orderings come from the cache, still identical.
        warm = memo.region_profiles(working, vertices)
        assert np.array_equal(warm.ordered, reference.ordered)
        assert memo.info()["orders"]["hits"] == 5

    def test_lemma5_column_slicing_matches_rescore(self):
        """Reduced working sets reuse full-width rows via the column mask."""
        working = self._working(n=250, k=6)
        memo = VertexScoreMemo.for_working(working)
        vertices = np.random.default_rng(3).random((4, 2)) / 2
        base = memo.region_profiles(working, vertices)
        removed = [int(i) for i in base.ordered[0, :2]]
        reduced = working.without_options(removed, working.k - 2)
        reference = RegionProfiles.compute(reduced, vertices)
        via_memo = memo.region_profiles(reduced, vertices)
        assert np.array_equal(via_memo.ordered, reference.ordered)
        # No new score rows were needed: the reduction is a column slice.
        assert memo.info()["rows"]["misses"] == 4

    def test_lemma5_sliced_profiles_equal_recompute(self):
        working = self._working(n=220, k=5)
        memo = VertexScoreMemo.for_working(working)
        vertices = np.random.default_rng(4).random((4, 2)) / 2
        parent = memo.region_profiles(working, vertices)
        lam, phi = parent.consistent_top_lambda(working.k)
        if lam == 0:
            # Force a shared prefix by restricting to one vertex's top set.
            lam, phi = 1, frozenset({int(parent.ordered[0, 0])})
            vertices = vertices[:1]
            parent = memo.region_profiles(working, vertices)
        reduced = working.without_options(phi, working.k - lam)
        sliced = memo.lemma5_sliced_profiles(reduced, vertices, parent, lam)
        reference = RegionProfiles.compute(reduced, vertices)
        assert np.array_equal(sliced.ordered, reference.ordered)
        # Children popping the same vertices under the reduced set now hit.
        again = memo.region_profiles(reduced, vertices)
        assert np.array_equal(again.ordered, reference.ordered)

    def test_frontier_batching_prescores_pending_regions(self):
        working = self._working(n=300, k=5)
        memo = VertexScoreMemo.for_working(working)
        rng = np.random.default_rng(5)
        current = rng.random((3, 2)) / 2
        pending = rng.random((4, 2)) / 2

        class _Region:
            def __init__(self, vertices):
                self.vertices = vertices

        frontier = lambda: pending_frontier([(_Region(pending), working)])
        via_memo = memo.region_profiles(working, current, frontier=frontier)
        assert np.array_equal(
            via_memo.ordered, RegionProfiles.compute(working, current).ordered
        )
        # One kernel launch covered current + pending rows...
        assert memo.info()["n_batches"] == 1
        assert memo.info()["rows"]["currsize"] == 7
        # ...so the pending region is served without another launch.
        later = memo.region_profiles(working, pending)
        assert np.array_equal(
            later.ordered, RegionProfiles.compute(working, pending).ordered
        )
        assert memo.info()["n_batches"] == 1

    def test_mismatched_memo_is_rejected(self):
        dataset = generate_independent(120, 3, rng=8)
        other = VertexScoreMemo.for_working(self._working(n=50))
        region = random_hypercube_region(3, 0.2, rng=80)
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            TASStarSolver().partition(dataset, 3, region, score_memo=other)


class TestTopKOrderTies:
    """The reworked top-k selection must match the batched-lexsort reference."""

    @staticmethod
    def _reference(scores, ids, k):
        keys = np.broadcast_to(ids, scores.shape)
        order = np.lexsort((keys, -scores), axis=-1)[:, : min(k, scores.shape[1])]
        return ids[order]

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_ties_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(80, 400))
        rows = int(rng.integers(1, 9))
        k = int(rng.integers(1, 12))
        # Quantised scores: many exact ties, frequently straddling the
        # k-boundary (the case the PR-1 kernel punted to a full sort).
        scores = rng.integers(0, 6, size=(rows, n)).astype(float)
        ids = np.arange(n)
        assert np.array_equal(topk_order_matrix(scores, ids, k), self._reference(scores, ids, k))

    def test_mixed_clean_and_straddling_rows(self):
        ids = np.arange(200)
        clean = np.linspace(1.0, 0.0, 200)[None, :]
        tied = np.zeros((1, 200))
        tied[0, ::3] = 1.0  # tie plateau across the boundary
        scores = np.vstack([clean, tied, clean[:, ::-1]])
        for k in (1, 3, 7):
            assert np.array_equal(
                topk_order_matrix(scores, ids, k), self._reference(scores, ids, k)
            )

    def test_subset_of_ids(self):
        """Global ids (active subsets) are respected in the tie-break."""
        rng = np.random.default_rng(7)
        ids = np.sort(rng.choice(1_000, size=150, replace=False))
        scores = rng.integers(0, 4, size=(4, 150)).astype(float)
        assert np.array_equal(topk_order_matrix(scores, ids, 5), self._reference(scores, ids, 5))


class TestSplittingBatches:
    """The vectorized k-switch selection and batched swap confirms."""

    def _instance(self, seed=0, n=300, k=6):
        dataset = generate_anticorrelated(n, 3, rng=seed)
        region = random_hypercube_region(3, 0.2, rng=seed + 30)
        working = WorkingSet.from_dataset(dataset, k)
        profiles = RegionProfiles.compute(working, region.vertices)
        return working, profiles

    @pytest.mark.parametrize("seed", range(4))
    def test_k_switch_pair_matches_definition(self, seed):
        """The batched selection equals the per-candidate scan of Definition 4."""
        from repro.core.splitting import _k_switch_pair

        working, profiles = self._instance(seed=seed)
        violation = profiles.kipr_violation()
        if violation is None:
            pytest.skip("region is a kIPR for this seed")
        profile_a, profile_b = profiles[violation[0]], profiles[violation[1]]

        def reference(first, second):
            pz1 = first.kth
            s1a = float(affine_scores(first.vertex, working.coefficients[[pz1]], working.constants[[pz1]])[0, 0])
            s1b = float(affine_scores(second.vertex, working.coefficients[[pz1]], working.constants[[pz1]])[0, 0])
            candidates = []
            for candidate in second.top_set:
                if candidate == pz1:
                    continue
                sa = float(affine_scores(first.vertex, working.coefficients[[candidate]], working.constants[[candidate]])[0, 0])
                sb = float(affine_scores(second.vertex, working.coefficients[[candidate]], working.constants[[candidate]])[0, 0])
                if sa < s1a and sb > s1b:
                    candidates.append((abs(s1a - sa), candidate))
            if candidates:
                candidates.sort()
                return pz1, candidates[0][1]
            return None

        expected = reference(profile_a, profile_b) or reference(profile_b, profile_a)
        assert _k_switch_pair(working, profile_a, profile_b) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_swap_candidates_match_per_pair_confirms(self, seed):
        """Batched exact confirms emit the same decisions as the per-pair scan."""
        from repro.core.splitting import _has_strict_swap, find_swap_candidates
        from repro.utils.tolerance import DEFAULT_TOL

        working, profiles = self._instance(seed=seed, n=250, k=5)
        decisions = find_swap_candidates(working, profiles, DEFAULT_TOL)
        pool = profiles.candidate_pool()
        expected = [
            (int(a), int(b))
            for i, a in enumerate(pool)
            for b in pool[i + 1 :]
            if _has_strict_swap(working, profiles, int(a), int(b), DEFAULT_TOL)
        ]
        assert [(d.option_a, d.option_b) for d in decisions] == expected
        # max_candidates truncates without changing the prefix.
        head = find_swap_candidates(working, profiles, DEFAULT_TOL, max_candidates=1)
        assert [(d.option_a, d.option_b) for d in head] == expected[:1]


class TestStatsFields:
    def test_hit_rate_property_and_dict(self):
        stats = SolverStats()
        assert stats.vertex_cache_hit_rate == 0.0
        stats.n_score_rows_computed = 25
        stats.n_score_rows_reused = 75
        assert stats.vertex_cache_hit_rate == 0.75
        data = stats.as_dict()
        for field in CACHE_FIELDS - {"seconds"}:
            assert field in data
        assert data["vertex_cache_hit_rate"] == 0.75
