"""Tests for the related-query package (reverse top-k, maximum rank, why-not).

Besides exercising each query on its own, these tests cross-check the
queries against each other and against TopRR:

* an option placed inside ``oR`` must have a reverse top-k region covering
  all of ``wR``;
* the maximum-rank witness must actually attain the reported rank;
* why-not answers must bring the option into the top-k at the reported cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import cheapest_new_option
from repro.core.toprr import solve_toprr
from repro.data.dataset import Dataset
from repro.data.examples import figure1_dataset
from repro.data.generators import generate_independent
from repro.exceptions import InfeasibleProblemError, InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.related import (
    bichromatic_reverse_top_k,
    maximum_rank,
    monochromatic_reverse_top_k,
    why_not_option_modification,
    why_not_weight_perturbation,
)
from repro.related.reverse_topk import reverse_top_k_contains_region
from repro.topk.query import rank_of, top_k


@pytest.fixture(scope="module")
def market():
    return generate_independent(400, 3, rng=71)


class TestMonochromaticReverseTopK:
    def test_figure1_strong_laptop_wins_everywhere(self):
        # p2 = (0.7, 0.9) is in the top-3 for every preference in [0.2, 0.8]
        # (see Figure 1(d) of the paper).
        data = figure1_dataset()
        region = PreferenceRegion.interval(0.2, 0.8)
        answer = monochromatic_reverse_top_k(
            data, data.values[1], 3, region=region, exclude_index=1
        )
        assert answer.covers_region()

    def test_figure1_weak_laptop_never_wins(self):
        # p6 = (0.1, 0.1) is dominated by every other laptop, so it is never
        # in the top-3 of the remaining five.
        data = figure1_dataset()
        answer = monochromatic_reverse_top_k(data, data.values[5], 3, exclude_index=5)
        assert answer.winning_cells == []
        assert answer.coverage() == 0.0

    def test_figure1_partial_coverage(self):
        # p4 = (0.3, 0.8) is in the top-3 only for battery-leaning preferences
        # (w[0] below roughly 0.4 in Figure 1(d)).
        data = figure1_dataset()
        region = PreferenceRegion.interval(0.2, 0.8)
        answer = monochromatic_reverse_top_k(
            data, data.values[3], 3, region=region, exclude_index=3
        )
        assert 0.0 < answer.coverage() < 1.0
        assert answer.covers(np.array([0.25]))
        assert not answer.covers(np.array([0.75]))

    def test_cells_agree_with_pointwise_ranks(self, market):
        option = np.array([0.9, 0.55, 0.6])
        k = 10
        region = PreferenceRegion.hyperrectangle([(0.2, 0.5), (0.2, 0.5)])
        answer = monochromatic_reverse_top_k(market, option, k, region=region)
        rng = np.random.default_rng(5)
        space = PreferenceSpace(3)
        samples = region.sample_weights(200, rng)
        for reduced in samples:
            expected = rank_of(market, space.to_full(reduced), option) <= k
            assert answer.covers(reduced) == expected

    def test_coverage_grows_with_k(self, market):
        option = np.array([0.8, 0.5, 0.55])
        region = PreferenceRegion.hyperrectangle([(0.2, 0.5), (0.2, 0.5)])
        coverages = [
            monochromatic_reverse_top_k(market, option, k, region=region).coverage()
            for k in (1, 5, 20)
        ]
        assert coverages == sorted(coverages)

    def test_consistency_with_toprr_placement(self, market):
        region = PreferenceRegion.hyperrectangle([(0.3, 0.36), (0.3, 0.36)])
        k = 8
        result = solve_toprr(market, k, region)
        placement = cheapest_new_option(result)
        assert reverse_top_k_contains_region(market, placement.option, k, region)
        # A clearly uncompetitive option must not cover the region.
        assert not reverse_top_k_contains_region(market, np.full(3, 0.01), k, region)

    def test_input_validation(self, market):
        with pytest.raises(InvalidParameterError):
            monochromatic_reverse_top_k(market, np.array([0.5, 0.5]), 3)
        with pytest.raises(InvalidParameterError):
            monochromatic_reverse_top_k(market, np.full(3, 0.5), 0)
        with pytest.raises(InvalidParameterError):
            monochromatic_reverse_top_k(
                market, np.full(3, 0.5), 3, region=PreferenceRegion.interval(0.2, 0.4)
            )


class TestBichromaticReverseTopK:
    def test_matches_per_vector_topk(self, market):
        rng = np.random.default_rng(11)
        raw = rng.random((50, 3)) + 0.05
        weights = raw / raw.sum(axis=1, keepdims=True)
        option = np.array([0.85, 0.6, 0.55])
        k = 15
        answer = set(bichromatic_reverse_top_k(market, option, k, weights).tolist())
        for index, weight in enumerate(weights):
            expected = rank_of(market, weight, option) <= k
            assert (index in answer) == expected

    def test_existing_option_excluded_from_competition(self):
        data = figure1_dataset()
        weights = np.array([[0.5, 0.5], [0.9, 0.1]])
        answer = bichromatic_reverse_top_k(data, data.values[0], 1, weights, exclude_index=0)
        # p1 = (0.9, 0.4) is the top-1 for the performance-heavy customer.
        assert 1 in answer.tolist()

    def test_dimension_mismatch(self, market):
        with pytest.raises(InvalidParameterError):
            bichromatic_reverse_top_k(market, np.full(3, 0.5), 3, np.ones((4, 2)))


class TestMaximumRank:
    def test_witness_attains_the_reported_rank(self, market):
        option = np.array([0.7, 0.6, 0.65])
        answer = maximum_rank(market, option)
        attained = rank_of(market, answer.witness_full, option)
        assert attained == answer.best_rank

    def test_rank_is_minimal_over_samples(self, market):
        option = np.array([0.7, 0.6, 0.65])
        answer = maximum_rank(market, option)
        rng = np.random.default_rng(23)
        region = PreferenceRegion.full_simplex(3)
        for reduced in region.sample_weights(300, rng):
            space = PreferenceSpace(3)
            assert rank_of(market, space.to_full(reduced), option) >= answer.best_rank

    def test_dominant_option_has_rank_one(self, market):
        answer = maximum_rank(market, np.array([0.99, 0.99, 0.99]))
        assert answer.best_rank == 1

    def test_restricting_the_region_cannot_improve_the_rank(self, market):
        option = np.array([0.75, 0.5, 0.6])
        everywhere = maximum_rank(market, option)
        narrow = maximum_rank(
            market, option, region=PreferenceRegion.hyperrectangle([(0.4, 0.45), (0.4, 0.45)])
        )
        assert narrow.best_rank >= everywhere.best_rank

    def test_existing_option_not_its_own_competitor(self):
        data = figure1_dataset()
        answer = maximum_rank(data, data.values[0], exclude_index=0)
        assert answer.best_rank == 1  # p1 is top-1 for performance-only preferences

    def test_input_validation(self, market):
        with pytest.raises(InvalidParameterError):
            maximum_rank(market, np.array([0.5, 0.5]))


class TestWhyNotOption:
    def test_modification_reaches_the_topk(self, market):
        weight = np.array([0.4, 0.35, 0.25])
        option = np.array([0.3, 0.3, 0.3])
        answer = why_not_option_modification(market, option, weight, 10)
        assert answer.rank_before > 10
        assert answer.rank_after <= 10
        assert answer.cost > 0

    def test_already_qualified_option_unchanged(self, market):
        weight = np.array([0.4, 0.35, 0.25])
        option = np.array([0.99, 0.99, 0.99])
        answer = why_not_option_modification(market, option, weight, 10)
        assert answer.cost == 0.0
        assert np.array_equal(answer.modified, option)

    def test_modification_is_minimal(self, market):
        """Any cheaper modification along any direction must miss the top-k."""
        weight = np.array([0.4, 0.35, 0.25])
        option = np.array([0.3, 0.3, 0.3])
        answer = why_not_option_modification(market, option, weight, 10)
        threshold = top_k(market, weight, 10).threshold
        assert float(answer.modified @ weight) == pytest.approx(threshold, abs=1e-9)
        shortened = option + 0.95 * (answer.modified - option)
        assert rank_of(market, weight, shortened) > 10

    def test_figure1_enhancement(self):
        data = figure1_dataset()
        weight = np.array([0.5, 0.5])
        answer = why_not_option_modification(
            data, data.values[5], weight, 2, exclude_index=5
        )
        assert answer.rank_after <= 2


class TestWhyNotWeight:
    def test_perturbation_reaches_the_topk(self, market):
        # A battery specialist queried with a performance-heavy weight vector:
        # it is far outside the top-10 originally but wins for battery-leaning
        # preferences, so a feasible (non-trivial) perturbation exists.
        weight = np.array([0.7, 0.15, 0.15])
        option = np.array([0.3, 0.99, 0.3])
        answer = why_not_weight_perturbation(market, option, weight, 10)
        assert answer.rank_before > 10
        assert answer.rank_after <= 10
        assert answer.distance > 0

    def test_zero_distance_when_already_in_topk(self, market):
        weight = np.array([0.3, 0.4, 0.3])
        option = np.array([0.99, 0.99, 0.99])
        answer = why_not_weight_perturbation(market, option, weight, 5)
        assert answer.distance == pytest.approx(0.0, abs=1e-9)

    def test_infeasible_when_option_never_wins(self):
        data = figure1_dataset()
        with pytest.raises(InfeasibleProblemError):
            why_not_weight_perturbation(
                data, data.values[5], np.array([0.5, 0.5]), 3, exclude_index=5
            )

    def test_distance_shrinks_with_larger_k(self, market):
        weight = np.array([0.7, 0.15, 0.15])
        option = np.array([0.3, 0.99, 0.3])
        tight = why_not_weight_perturbation(market, option, weight, 5)
        loose = why_not_weight_perturbation(market, option, weight, 25)
        assert loose.distance <= tight.distance + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=60),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_reverse_topk_membership_property(n, k, seed):
    """Property: reverse top-k cell membership equals the pointwise rank test (2-d options)."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.random((n, 2)))
    option = rng.random(2)
    answer = monochromatic_reverse_top_k(dataset, option, min(k, n))
    space = PreferenceSpace(2)
    for reduced in rng.random((25, 1)):
        expected = rank_of(dataset, space.to_full(reduced), option) <= min(k, n)
        covered = answer.covers(reduced)
        if covered != expected:
            # Disagreements may only occur within tolerance of a tie.
            scores = dataset.values @ space.to_full(reduced)
            own = float(option @ space.to_full(reduced))
            margin = np.min(np.abs(scores - own)) if scores.size else 1.0
            assert margin <= 1e-6
