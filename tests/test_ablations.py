"""Smoke tests for the ablation/extension experiment runners."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    ablation_parallel,
    ablation_precompute,
    ablation_sampling,
    run_ablation,
    substrate_engines,
)
from repro.experiments.config import Scale


class TestAblationRunners:
    def test_sampling_rows(self):
        rows = ablation_sampling(Scale.SMOKE, sample_counts=[4, 32])
        assert [row["n_samples"] for row in rows] == [4, 32]
        for row in rows:
            assert 0.0 <= row["false_accept_rate"] <= 1.0
            assert row["exact_is_guaranteed"]

    def test_parallel_rows_serial_executor(self):
        rows = ablation_parallel(Scale.SMOKE, worker_counts=(1, 2), executor="serial")
        assert rows[0]["configuration"] == "sequential TAS*"
        assert all(row["answers_match"] for row in rows)
        assert len(rows) == 2

    def test_precompute_rows(self):
        rows = ablation_precompute(Scale.SMOKE, n_repeated_queries=3)
        assert len(rows) == 2
        direct, precomputed = rows
        assert precomputed["candidate_options"] <= direct["candidate_options"]
        assert precomputed["answers_match"]

    def test_substrate_rows(self):
        rows = substrate_engines(Scale.SMOKE, n_weights=2)
        assert {row["engine"] for row in rows} == {
            "full scan (reference)",
            "branch-and-bound (R-tree)",
            "threshold algorithm (sorted lists)",
        }
        assert all(row["agrees_with_reference"] for row in rows)

    def test_registry_and_dispatch(self):
        assert set(ABLATIONS) == {
            "ablation_sampling",
            "ablation_parallel",
            "ablation_precompute",
            "substrate_engines",
        }
        rows = run_ablation("substrate_engines", Scale.SMOKE, n_weights=1)
        assert rows
        with pytest.raises(KeyError):
            run_ablation("does_not_exist", Scale.SMOKE)
