"""Tests for the BBS skyline/k-skyband algorithms and the cardinality estimates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.generators import generate_anticorrelated, generate_correlated, generate_independent
from repro.exceptions import InvalidParameterError
from repro.index import RTree
from repro.skyline import (
    bbs_k_skyband,
    bbs_skyline,
    dominates,
    expected_k_skyband_size,
    expected_skyline_size,
    harmonic_number,
)
from repro.skyline.bbs import pruned_node_fraction
from repro.topk.query import top_k
from repro.topk.skyband import k_skyband, skyline


@pytest.fixture(scope="module")
def ind_dataset():
    return generate_independent(600, 3, rng=29)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(np.array([0.9, 0.8]), np.array([0.5, 0.5]))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(np.array([0.5, 0.5]), np.array([0.5, 0.5]))

    def test_incomparable_points(self):
        assert not dominates(np.array([0.9, 0.1]), np.array([0.1, 0.9]))
        assert not dominates(np.array([0.1, 0.9]), np.array([0.9, 0.1]))

    def test_dominance_with_one_equal_coordinate(self):
        assert dominates(np.array([0.5, 0.9]), np.array([0.5, 0.5]))


class TestBBSAgainstReference:
    def test_skyline_matches_sort_based(self, ind_dataset):
        assert np.array_equal(bbs_skyline(ind_dataset), skyline(ind_dataset))

    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_skyband_matches_sort_based(self, ind_dataset, k):
        assert np.array_equal(bbs_k_skyband(ind_dataset, k), k_skyband(ind_dataset, k))

    def test_figure1_skyline(self, figure1):
        ids = {figure1.id_of(i) for i in bbs_skyline(figure1)}
        assert ids == {"p1", "p2"}

    def test_reusing_a_tree(self, ind_dataset):
        tree = RTree(ind_dataset.values)
        first = bbs_k_skyband(ind_dataset, 3, tree=tree)
        second = bbs_k_skyband(ind_dataset, 3, tree=tree)
        assert np.array_equal(first, second)

    def test_foreign_tree_rejected(self, ind_dataset):
        tree = RTree(np.random.default_rng(0).random((10, 3)))
        with pytest.raises(InvalidParameterError):
            bbs_k_skyband(ind_dataset, 3, tree=tree)

    def test_invalid_k(self, ind_dataset):
        with pytest.raises(InvalidParameterError):
            bbs_k_skyband(ind_dataset, 0)

    def test_skyband_contains_top_k_for_random_weights(self, ind_dataset):
        k = 4
        band = set(bbs_k_skyband(ind_dataset, k).tolist())
        rng = np.random.default_rng(31)
        for _ in range(15):
            raw = rng.random(3) + 0.05
            weight = raw / raw.sum()
            assert set(top_k(ind_dataset, weight, k).indices.tolist()) <= band

    def test_pruning_happens_on_correlated_data(self):
        dataset = generate_correlated(2_000, 3, rng=41)
        assert pruned_node_fraction(dataset, 2) > 0.3

    def test_anticorrelated_band_is_larger_than_correlated(self):
        cor = generate_correlated(1_000, 3, rng=51)
        anti = generate_anticorrelated(1_000, 3, rng=52)
        assert bbs_k_skyband(anti, 3).size > bbs_k_skyband(cor, 3).size


class TestCardinalityEstimates:
    def test_harmonic_number_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_harmonic_number_asymptotic_matches_exact(self):
        exact = sum(1.0 / i for i in range(1, 1001))
        assert harmonic_number(1000) == pytest.approx(exact, rel=1e-9)

    def test_harmonic_number_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            harmonic_number(-1)

    def test_skyline_size_one_dimension(self):
        assert expected_skyline_size(1_000, 1) == 1.0

    def test_skyline_size_two_dimensions_is_harmonic(self):
        assert expected_skyline_size(100, 2) == pytest.approx(harmonic_number(100))

    def test_skyline_size_monotone_in_dimension(self):
        sizes = [expected_skyline_size(10_000, d) for d in (2, 3, 4, 5)]
        assert sizes == sorted(sizes)

    def test_skyline_size_never_exceeds_n(self):
        assert expected_skyline_size(10, 8) <= 10.0

    def test_skyband_size_bounds(self):
        estimate = expected_k_skyband_size(10_000, 3, 5)
        assert 5.0 <= estimate <= 10_000.0
        assert expected_k_skyband_size(100, 3, 200) == 100.0

    def test_skyband_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            expected_k_skyband_size(100, 3, 0)

    def test_estimate_is_in_the_right_ballpark(self):
        """The IND estimate should be within a small factor of the measured skyline."""
        dataset = generate_independent(5_000, 3, rng=61)
        measured = skyline(dataset).size
        estimate = expected_skyline_size(5_000, 3)
        assert estimate / 4 <= measured <= estimate * 4


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=150),
    d=st.integers(min_value=2, max_value=4),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_bbs_matches_reference_property(n, d, k, seed):
    """Property: BBS and the sort-based skyband agree on random datasets."""
    rng = np.random.default_rng(seed)
    dataset = Dataset(rng.random((n, d)))
    assert np.array_equal(bbs_k_skyband(dataset, k), k_skyband(dataset, k))
