"""Unit tests for convex polytopes, Chebyshev centres and vertex enumeration."""

import numpy as np
import pytest

from repro.exceptions import EmptyRegionError, InfeasibleProblemError
from repro.geometry.chebyshev import chebyshev_center, interior_point, is_feasible, maximize_linear
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import ConvexPolytope, merge_vertex_sets
from repro.geometry.vertex_enum import (
    deduplicate_points,
    enumerate_box_vertices,
    enumerate_vertices,
    vertex_facet_incidence,
)
from repro.geometry.volume import exact_volume, monte_carlo_volume, relative_volume


class TestChebyshev:
    def test_center_of_unit_square(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        A, b = box.halfspaces
        center, radius = chebyshev_center(A, b)
        assert np.allclose(center, [0.5, 0.5], atol=1e-6)
        assert radius == pytest.approx(0.5, abs=1e-6)

    def test_infeasible_system(self):
        A = np.array([[1.0], [-1.0]])
        b = np.array([0.0, -1.0])  # x <= 0 and x >= 1
        center, radius = chebyshev_center(A, b)
        assert center is None
        assert radius == float("-inf")
        assert not is_feasible(A, b)

    def test_interior_point_raises_on_degenerate(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        b = np.array([0.5, -0.5, 1.0, 0.0])  # x = 0.5 exactly
        with pytest.raises(InfeasibleProblemError):
            interior_point(A, b)

    def test_maximize_linear(self):
        box = ConvexPolytope.from_box([0, 0], [1, 2])
        A, b = box.halfspaces
        point, value = maximize_linear(np.array([1.0, 1.0]), A, b)
        assert value == pytest.approx(3.0, abs=1e-6)
        assert np.allclose(point, [1.0, 2.0], atol=1e-6)


class TestVertexEnumeration:
    def test_unit_square_vertices(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        A, b = box.halfspaces
        vertices = enumerate_vertices(A, b)
        assert vertices.shape == (4, 2)
        expected = {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}
        assert {tuple(np.round(v, 6)) for v in vertices} == expected

    def test_one_dimensional_interval(self):
        A = np.array([[1.0], [-1.0]])
        b = np.array([0.8, -0.2])
        vertices = enumerate_vertices(A, b)
        assert sorted(vertices.ravel().tolist()) == pytest.approx([0.2, 0.8])

    def test_one_dimensional_empty(self):
        A = np.array([[1.0], [-1.0]])
        b = np.array([0.2, -0.8])
        assert enumerate_vertices(A, b).shape[0] == 0

    def test_empty_region_raises(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([0.0, -1.0])
        with pytest.raises(EmptyRegionError):
            enumerate_vertices(A, b)

    def test_deduplicate_points(self):
        points = np.array([[0.1, 0.2], [0.1 + 1e-12, 0.2], [0.3, 0.4]])
        assert deduplicate_points(points).shape[0] == 2

    def test_box_corner_enumeration(self):
        corners = enumerate_box_vertices(np.array([0.0, 0.0, 0.0]), np.array([1.0, 1.0, 1.0]))
        assert corners.shape == (8, 3)
        assert len({tuple(c) for c in corners}) == 8

    def test_vertex_facet_incidence_of_square(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        A, b = box.halfspaces
        vertices = enumerate_vertices(A, b)
        incidence = vertex_facet_incidence(vertices, A, b)
        # In a square every vertex lies on exactly 2 of the 4 facets.
        assert incidence.shape == (4, 4)
        assert np.all(incidence.sum(axis=1) == 2)
        assert np.all(incidence.sum(axis=0) == 2)


class TestConvexPolytope:
    def test_from_box_membership(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        assert box.contains([0.5, 0.5])
        assert box.contains([1.0, 1.0])
        assert not box.contains([1.1, 0.5])

    def test_contains_many(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        mask = box.contains_many(np.array([[0.5, 0.5], [2.0, 0.0]]))
        assert mask.tolist() == [True, False]

    def test_from_halfspaces_triangle(self):
        triangle = ConvexPolytope.from_halfspaces(
            [
                Halfspace([-1.0, 0.0], 0.0),   # x >= 0
                Halfspace([0.0, -1.0], 0.0),   # y >= 0
                Halfspace([1.0, 1.0], 1.0),    # x + y <= 1
            ]
        )
        assert triangle.n_vertices == 3
        assert triangle.volume() == pytest.approx(0.5, abs=1e-6)

    def test_volume_of_box(self):
        box = ConvexPolytope.from_box([0, 0, 0], [1, 2, 3])
        assert box.volume() == pytest.approx(6.0, abs=1e-6)

    def test_empty_polytope(self):
        empty = ConvexPolytope(np.array([[1.0, 0.0], [-1.0, 0.0]]), np.array([0.0, -1.0]))
        assert empty.is_empty()
        assert not empty.is_full_dimensional()
        assert empty.volume() == 0.0

    def test_split_square_by_diagonal(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        below, above = box.split(Hyperplane([1.0, -1.0], 0.0))
        assert below.volume() == pytest.approx(0.5, abs=1e-6)
        assert above.volume() == pytest.approx(0.5, abs=1e-6)
        # The diagonal's endpoints are vertices of both children.
        for child in (below, above):
            rounded = {tuple(np.round(v, 6)) for v in child.vertices}
            assert (0.0, 0.0) in rounded and (1.0, 1.0) in rounded

    def test_split_missing_the_polytope_gives_empty_side(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        below, above = box.split(Hyperplane([1.0, 0.0], 2.0))
        assert not below.is_empty()
        assert above.is_empty()

    def test_classify_vertices(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        below, on, above = box.classify_vertices(Hyperplane([1.0, 0.0], 0.5))
        assert len(below) == 2 and len(above) == 2 and len(on) == 0

    def test_intersect_halfspace(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        half = box.intersect_halfspace(Halfspace([1.0, 0.0], 0.5))
        assert half.volume() == pytest.approx(0.5, abs=1e-6)

    def test_prune_redundant_keeps_geometry(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        redundant = box.intersect_halfspace(Halfspace([1.0, 0.0], 5.0))
        pruned = redundant.prune_redundant()
        assert pruned.n_constraints <= redundant.n_constraints
        assert pruned.volume() == pytest.approx(1.0, abs=1e-6)

    def test_bounding_box(self):
        triangle = ConvexPolytope.from_halfspaces(
            [Halfspace([-1.0, 0.0], 0.0), Halfspace([0.0, -1.0], 0.0), Halfspace([1.0, 1.0], 1.0)]
        )
        lower, upper = triangle.bounding_box()
        assert np.allclose(lower, [0, 0], atol=1e-6)
        assert np.allclose(upper, [1, 1], atol=1e-6)

    def test_support_direction(self):
        box = ConvexPolytope.from_box([0, 0], [2, 1])
        point, value = box.support([1.0, 0.0])
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_sampling_stays_inside(self):
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        samples = box.sample(50, np.random.default_rng(0))
        assert samples.shape == (50, 2)
        assert np.all(box.contains_many(samples))

    def test_merge_vertex_sets_deduplicates(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[1.0, 1.0], [0.5, 0.5]])
        merged = merge_vertex_sets([a, b])
        assert merged.shape[0] == 3


class TestVolumeHelpers:
    def test_monte_carlo_close_to_exact(self):
        triangle = ConvexPolytope.from_halfspaces(
            [Halfspace([-1.0, 0.0], 0.0), Halfspace([0.0, -1.0], 0.0), Halfspace([1.0, 1.0], 1.0)]
        )
        estimate = monte_carlo_volume(triangle, n_samples=20_000, rng=0)
        assert estimate == pytest.approx(exact_volume(triangle), rel=0.1)

    def test_relative_volume(self):
        outer = ConvexPolytope.from_box([0, 0], [1, 1])
        inner = ConvexPolytope.from_box([0, 0], [0.5, 0.5])
        assert relative_volume(inner, outer) == pytest.approx(0.25, abs=1e-6)

    def test_relative_volume_with_empty_outer(self):
        empty = ConvexPolytope(np.array([[1.0, 0.0], [-1.0, 0.0]]), np.array([0.0, -1.0]))
        box = ConvexPolytope.from_box([0, 0], [1, 1])
        assert relative_volume(box, empty) == 0.0
