"""Unit tests for hyperplanes and halfspaces."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.geometry.halfspace import Halfspace, stack_halfspaces
from repro.geometry.hyperplane import Hyperplane


class TestHyperplane:
    def test_normalisation(self):
        plane = Hyperplane([3.0, 4.0], 10.0)
        assert np.isclose(np.linalg.norm(plane.normal), 1.0)
        assert np.isclose(plane.offset, 2.0)

    def test_no_normalisation_keeps_coefficients(self):
        plane = Hyperplane([3.0, 4.0], 10.0, normalize=False)
        assert np.allclose(plane.normal, [3.0, 4.0])
        assert plane.offset == 10.0

    def test_zero_normal_rejected(self):
        with pytest.raises(InvalidParameterError):
            Hyperplane([0.0, 0.0], 1.0)

    def test_evaluate_signed_distance(self):
        plane = Hyperplane([1.0, 0.0], 0.5)
        assert plane.evaluate([0.5, 0.3]) == pytest.approx(0.0)
        assert plane.evaluate([0.7, 0.0]) == pytest.approx(0.2)
        assert plane.evaluate([0.2, 0.0]) == pytest.approx(-0.3)

    def test_side_classification(self):
        plane = Hyperplane([1.0, 1.0], 1.0)
        assert plane.side([0.5, 0.5]) == 0
        assert plane.side([0.9, 0.9]) == 1
        assert plane.side([0.1, 0.1]) == -1

    def test_classify_many(self):
        plane = Hyperplane([1.0, 0.0], 0.5)
        labels = plane.classify_many(np.array([[0.1, 0.0], [0.5, 0.0], [0.9, 0.0]]))
        assert labels.tolist() == [-1, 0, 1]

    def test_flipped_plane_has_same_zero_set(self):
        plane = Hyperplane([2.0, -1.0], 0.3)
        flipped = plane.flipped()
        point = np.array([0.4, 0.5])
        assert np.isclose(plane.evaluate(point), -flipped.evaluate(point))

    def test_contains(self):
        plane = Hyperplane([0.0, 1.0], 0.25)
        assert plane.contains([0.9, 0.25])
        assert not plane.contains([0.9, 0.35])

    def test_intersection_parameter_on_crossing_segment(self):
        plane = Hyperplane([1.0, 0.0], 0.5)
        t = plane.intersection_parameter(np.array([0.0, 0.0]), np.array([1.0, 0.0]))
        assert t == pytest.approx(0.5)

    def test_intersection_parameter_parallel_segment(self):
        plane = Hyperplane([1.0, 0.0], 0.5)
        t = plane.intersection_parameter(np.array([0.2, 0.0]), np.array([0.2, 1.0]))
        assert t is None

    def test_dimension(self):
        assert Hyperplane([1.0, 2.0, 3.0], 1.0).dimension == 3


class TestHalfspace:
    def test_contains_below_boundary(self):
        half = Halfspace([1.0, 0.0], 0.5)
        assert half.contains([0.4, 0.9])
        assert half.contains([0.5, 0.0])
        assert not half.contains([0.6, 0.0])

    def test_contains_many(self):
        half = Halfspace([0.0, 1.0], 0.5)
        mask = half.contains_many(np.array([[0.0, 0.2], [0.0, 0.8]]))
        assert mask.tolist() == [True, False]

    def test_violation_amount(self):
        half = Halfspace([1.0, 0.0], 0.5)
        assert half.violation([0.4, 0.0]) == 0.0
        assert half.violation([0.8, 0.0]) == pytest.approx(0.3)

    def test_complement_covers_the_other_side(self):
        half = Halfspace([1.0, 0.0], 0.5)
        other = half.complement()
        assert other.contains([0.9, 0.0])
        assert not other.contains([0.1, 0.0])
        # Boundary belongs to both closed halfspaces.
        assert half.contains([0.5, 0.0]) and other.contains([0.5, 0.0])

    def test_from_hyperplane(self):
        plane = Hyperplane([1.0, 1.0], 1.0)
        half = Halfspace.from_hyperplane(plane)
        assert half.contains([0.2, 0.2])

    def test_as_inequality_roundtrip(self):
        half = Halfspace([2.0, 0.0], 1.0)
        normal, offset = half.as_inequality()
        assert np.allclose(normal, [1.0, 0.0])
        assert offset == pytest.approx(0.5)

    def test_stack_halfspaces(self):
        A, b = stack_halfspaces([Halfspace([1.0, 0.0], 1.0), Halfspace([0.0, 1.0], 2.0)])
        assert A.shape == (2, 2)
        assert b.shape == (2,)

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack_halfspaces([])
