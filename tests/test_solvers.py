"""Integration tests: solver agreement, UTK partitioning, ablations and the verifier."""

import numpy as np
import pytest

from repro.core.kipr import WorkingSet, is_kipr, region_profiles
from repro.core.splitting import region_is_rank_invariant
from repro.core.pac import PACSolver
from repro.core.stats import SolverStats
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.core.toprr import solve_toprr
from repro.core.utk import UTKPartitioner, possible_top_k_options
from repro.core.verify import verify_result_by_sampling
from repro.data.generators import generate_anticorrelated, generate_correlated, generate_independent
from repro.preference.random_regions import random_hypercube_region
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.pruning.rskyband import r_skyband
from repro.topk.query import top_k


def _membership_signature(result, probes):
    return result.contains_many(probes)


@pytest.mark.parametrize(
    "generator,n,d,k,sigma,seed",
    [
        (generate_independent, 1_500, 3, 5, 0.08, 1),
        (generate_independent, 2_000, 4, 8, 0.04, 2),
        (generate_correlated, 1_500, 3, 5, 0.08, 3),
        (generate_anticorrelated, 1_500, 3, 5, 0.05, 4),
        (generate_independent, 1_000, 5, 4, 0.03, 5),
    ],
)
class TestSolverAgreement:
    def test_methods_agree_and_verify(self, generator, n, d, k, sigma, seed):
        dataset = generator(n, d, rng=seed)
        region = random_hypercube_region(d, sigma, rng=seed + 100)
        results = {
            method: solve_toprr(dataset, k, region, method=method)
            for method in ("tas*", "tas", "pac")
        }
        probes = np.random.default_rng(seed).random((400, d))
        reference = _membership_signature(results["tas*"], probes)
        for method, result in results.items():
            assert np.array_equal(_membership_signature(result, probes), reference), method
        assert verify_result_by_sampling(
            results["tas*"], n_weight_samples=16, n_option_samples=128, rng=seed
        ).passed


class TestSolverOrdering:
    @pytest.mark.slow
    def test_tas_star_never_produces_more_vertices(self):
        dataset = generate_independent(2_000, 4, rng=31)
        region = random_hypercube_region(4, 0.05, rng=32)
        star = solve_toprr(dataset, 10, region, method="tas*")
        plain = solve_toprr(dataset, 10, region, method="tas")
        pac = solve_toprr(dataset, 10, region, method="pac")
        assert star.n_vertices <= plain.n_vertices
        assert star.stats.n_splits <= plain.stats.n_splits
        assert star.n_vertices <= pac.n_vertices

    @pytest.mark.slow
    def test_ablation_lemma7_reduces_vertices(self):
        dataset = generate_independent(2_000, 4, rng=41)
        region = random_hypercube_region(4, 0.05, rng=42)
        enabled = solve_toprr(dataset, 10, region, method=TASStarSolver(use_lemma7=True))
        disabled = solve_toprr(dataset, 10, region, method=TASStarSolver(use_lemma7=False))
        assert enabled.n_vertices <= disabled.n_vertices

    @pytest.mark.slow
    def test_ablation_k_switch_reduces_vertices(self):
        dataset = generate_independent(2_000, 4, rng=51)
        region = random_hypercube_region(4, 0.05, rng=52)
        enabled = solve_toprr(dataset, 10, region, method=TASStarSolver(use_k_switch=True))
        disabled = solve_toprr(dataset, 10, region, method=TASStarSolver(use_k_switch=False))
        assert enabled.n_vertices <= disabled.n_vertices * 1.25 + 5

    def test_solver_descriptions(self):
        assert TASSolver().describe()["strategy"] == "random"
        assert TASStarSolver().describe()["use_k_switch"] is True
        assert "UTK" in PACSolver().describe()["building_block"]


class TestUTKPartitioner:
    @pytest.fixture
    def instance(self):
        dataset = generate_independent(800, 3, rng=61)
        region = random_hypercube_region(3, 0.08, rng=62)
        k = 4
        filtered = dataset.subset(r_skyband(dataset, k, region))
        return dataset, filtered, region, k

    def test_cells_cover_the_region(self, instance):
        _dataset, filtered, region, k = instance
        cells = UTKPartitioner().partition(filtered, k, region)
        total = sum(cell.region.volume() for cell in cells)
        assert total == pytest.approx(region.volume(), rel=1e-3)

    def test_every_cell_is_rank_invariant(self, instance):
        # Output cells are kIPRs up to score ties on their boundary facets:
        # either the exact vertex profiles agree, or every disagreement comes
        # from a pair of options that never strictly swaps inside the cell.
        _dataset, filtered, region, k = instance
        working = WorkingSet.from_dataset(filtered, k)
        cells = UTKPartitioner().partition(filtered, k, region)
        exact_kipr = 0
        for cell in cells:
            profiles = region_profiles(working, cell.region)
            if is_kipr(profiles):
                exact_kipr += 1
            assert region_is_rank_invariant(working, profiles)
        assert exact_kipr >= 1

    def test_cell_top_sets_match_centroid_topk(self, instance):
        _dataset, filtered, region, k = instance
        space = PreferenceSpace(filtered.n_attributes)
        cells = UTKPartitioner().partition(filtered, k, region)
        for cell in cells:
            centroid = cell.region.centroid()
            result = top_k(filtered, space.to_full(centroid), k)
            assert result.index_set == cell.top_set

    def test_possible_top_k_options_union(self, instance):
        _dataset, filtered, region, k = instance
        indices = possible_top_k_options(filtered, k, region)
        cells = UTKPartitioner().partition(filtered, k, region)
        union = set().union(*(cell.top_set for cell in cells))
        assert set(indices.tolist()) == union

    def test_stats_collected(self, instance):
        _dataset, filtered, region, k = instance
        stats = SolverStats()
        UTKPartitioner().partition(filtered, k, region, stats=stats)
        assert stats.n_regions_tested >= 1
        assert stats.extra["n_cells"] >= 1


class TestVerifier:
    def test_verifier_detects_a_corrupted_result(self):
        dataset = generate_independent(1_000, 3, rng=71)
        region = random_hypercube_region(3, 0.08, rng=72)
        result = solve_toprr(dataset, 5, region)
        assert verify_result_by_sampling(result, rng=0).passed
        # Corrupt the thresholds: pretending the bar is much lower should let
        # non-top-k placements into the region and be caught by the verifier.
        result.thresholds = result.thresholds * 0.5
        report = verify_result_by_sampling(result, rng=0)
        assert not report.passed

    def test_report_counts_are_consistent(self):
        dataset = generate_independent(500, 3, rng=73)
        region = random_hypercube_region(3, 0.05, rng=74)
        result = solve_toprr(dataset, 3, region)
        report = verify_result_by_sampling(result, n_weight_samples=8, n_option_samples=64, rng=1)
        assert report.n_inside_checked + report.n_outside_checked <= report.n_option_samples
        assert report.n_weight_samples >= 8


class TestSafetyCaps:
    def test_max_regions_cap_raises(self):
        dataset = generate_independent(2_000, 4, rng=81)
        region = random_hypercube_region(4, 0.1, rng=82)
        solver = TASStarSolver(max_regions=2)
        with pytest.raises(RuntimeError):
            solve_toprr(dataset, 20, region, method=solver)

    def test_k_equals_one_fast_path(self, figure1):
        region = PreferenceRegion.interval(0.3, 0.7)
        result = solve_toprr(figure1, 1, region)
        # For k = 1 Lemma 6 applies directly: only the input vertices are needed.
        assert result.n_vertices == 2
        assert verify_result_by_sampling(result, rng=5).passed
