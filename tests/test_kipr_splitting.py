"""Unit tests for vertex profiles, the kIPR tests (Lemmas 3, 5, 7) and splitting."""

import numpy as np
import pytest

from repro.core.kipr import (
    WorkingSet,
    consistent_top_lambda,
    find_kipr_violation,
    is_kipr,
    passes_lemma7,
    region_profiles,
    vertex_profile,
)
from repro.core.splitting import (
    SplitDecision,
    find_swap_candidates,
    select_splitting_pair,
    split_region,
)
from repro.data.examples import table2_dataset
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion


@pytest.fixture
def table2_working(table2):
    return WorkingSet.from_dataset(table2, 3)


class TestWorkingSet:
    def test_from_dataset(self, table2_working, table2):
        assert table2_working.n_active == table2.n_options
        assert table2_working.k == 3

    def test_invalid_k(self, table2):
        with pytest.raises(InvalidParameterError):
            WorkingSet.from_dataset(table2, 0)

    def test_scores_match_full_weights(self, table2, table2_working):
        reduced = np.array([0.25, 0.15])
        full = np.array([0.25, 0.15, 0.60])
        assert np.allclose(table2_working.scores_at(reduced), table2.values @ full)

    def test_without_options(self, table2_working):
        smaller = table2_working.without_options([4], new_k=2)
        assert smaller.n_active == 4
        assert smaller.k == 2
        assert 4 not in smaller.active.tolist()


class TestVertexProfilesTable3:
    """Table 3 of the paper: top-3 sets at the vertices of wR_i = [0.2,0.3]x[0.1,0.2]."""

    def expected(self):
        # (reduced vertex) -> (top-3 ids, top-3rd id)
        return {
            (0.2, 0.1): ({"p5", "p1", "p3"}, "p3"),
            (0.2, 0.2): ({"p5", "p1", "p3"}, "p3"),
            (0.3, 0.1): ({"p5", "p1", "p4"}, "p4"),
            (0.3, 0.2): ({"p5", "p2", "p4"}, "p4"),
        }

    def test_profiles_match_paper(self, table2, table2_working):
        expected = self.expected()
        for vertex, (top_set, kth) in expected.items():
            profile = vertex_profile(table2_working, np.array(vertex))
            ids = {table2.id_of(i) for i in profile.top_set}
            assert ids == top_set, f"vertex {vertex}"
            assert table2.id_of(profile.kth) == kth, f"vertex {vertex}"

    def test_region_is_not_kipr(self, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        assert not is_kipr(profiles)
        violation = find_kipr_violation(profiles)
        assert violation is not None and violation[2] == "set"

    def test_lemma5_common_top1_is_p5(self, table2, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        lam, phi = consistent_top_lambda(profiles, 3)
        assert lam == 1
        assert {table2.id_of(i) for i in phi} == {"p5"}

    def test_lemma7_fails_here(self, table2_working, table2_region):
        # The top-2 sets differ across vertices ({p5,p1} vs {p5,p2}), so Lemma 7 does not apply.
        profiles = region_profiles(table2_working, table2_region)
        assert not passes_lemma7(profiles, 3)

    def test_lemma7_trivial_for_k1(self, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        assert passes_lemma7(profiles, 1)


class TestKIPRDetection:
    def test_kipr_region_passes(self, figure1):
        # [0.67, 0.8] is a kIPR in the running example (same top-3, same 3rd = p3).
        working = WorkingSet.from_dataset(figure1, 3)
        region = PreferenceRegion.interval(0.7, 0.8)
        profiles = region_profiles(working, region)
        assert is_kipr(profiles)
        assert find_kipr_violation(profiles) is None

    def test_case2_violation(self, figure1):
        # [0.25, 0.6] has the same top-3 set {p1,p2,p4} but the 3rd changes at 0.4.
        working = WorkingSet.from_dataset(figure1, 3)
        region = PreferenceRegion.interval(0.25, 0.6)
        profiles = region_profiles(working, region)
        violation = find_kipr_violation(profiles)
        assert violation is not None
        assert violation[2] == "kth"

    def test_consistent_top_lambda_zero_when_prefixes_differ(self, figure1):
        working = WorkingSet.from_dataset(figure1, 3)
        region = PreferenceRegion.interval(0.2, 0.8)
        profiles = region_profiles(working, region)
        lam, phi = consistent_top_lambda(profiles, 3)
        # Top-1 is p2 at 0.2 but p1 at 0.8, and top-2 is {p2,p4} vs {p1,p2}:
        # no common prefix, so Lemma 5 cannot prune anything here.
        assert lam == 0
        assert phi == frozenset()

    def test_consistent_top_lambda_on_narrow_region(self, figure1):
        # On [0.45, 0.6] the top-2 set is {p1, p2} at both ends, while the
        # 3rd-ranked option is p4 throughout, so Lemma 5 finds lambda = 2.
        working = WorkingSet.from_dataset(figure1, 3)
        region = PreferenceRegion.interval(0.45, 0.6)
        profiles = region_profiles(working, region)
        lam, phi = consistent_top_lambda(profiles, 3)
        assert lam == 2
        assert {figure1.id_of(i) for i in phi} == {"p1", "p2"}


class TestSplittingSelection:
    def test_case2_pair_is_the_two_kth_options(self, figure1):
        working = WorkingSet.from_dataset(figure1, 3)
        region = PreferenceRegion.interval(0.25, 0.6)
        profiles = region_profiles(working, region)
        violation = find_kipr_violation(profiles)
        decision = select_splitting_pair(
            working, profiles[violation[0]], profiles[violation[1]], violation[2], "k-switch"
        )
        assert {decision.option_a, decision.option_b} == {profiles[0].kth, profiles[1].kth}

    def test_k_switch_picks_closest_scoring_candidate(self, table2, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        violation = find_kipr_violation(profiles)
        decision = select_splitting_pair(
            table2_working,
            profiles[violation[0]],
            profiles[violation[1]],
            violation[2],
            "k-switch",
        )
        assert isinstance(decision, SplitDecision)
        # pz1 must be the k-th option at one of the violating vertices.
        assert decision.option_a in {profiles[violation[0]].kth, profiles[violation[1]].kth}

    def test_unknown_strategy_rejected(self, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        with pytest.raises(ValueError):
            select_splitting_pair(table2_working, profiles[0], profiles[1], "set", "fancy")

    def test_swap_candidates_exist_for_genuine_violation(self, table2_working, table2_region):
        profiles = region_profiles(table2_working, table2_region)
        candidates = find_swap_candidates(table2_working, profiles, table2_region.polytope.tol)
        assert candidates

    def test_split_region_produces_two_full_dimensional_children(
        self, table2_working, table2_region
    ):
        profiles = region_profiles(table2_working, table2_region)
        violation = find_kipr_violation(profiles)
        below, above, decision, cut_found = split_region(
            table2_region, table2_working, profiles, violation
        )
        assert cut_found
        assert below.is_full_dimensional() and above.is_full_dimensional()
        total = below.volume() + above.volume()
        assert total == pytest.approx(table2_region.volume(), rel=1e-6)

    def test_split_walkthrough_of_table4(self, table2, table2_working, table2_region):
        """The paper's Table 4: splitting wR_i by wHP(p3, p4) creates two new shared vertices."""
        plane = table2_region.scoring_hyperplane(table2.values[2], table2.values[3])
        below, above = table2_region.split(plane)
        below_vertices = {tuple(np.round(v, 6)) for v in below.vertices}
        above_vertices = {tuple(np.round(v, 6)) for v in above.vertices}
        shared = below_vertices & above_vertices
        # The splitting facet contributes exactly two shared vertices (v5 and v6 in Figure 2(b)).
        assert len(shared) == 2
        assert len(below_vertices) == 4 and len(above_vertices) == 4
