"""Unit tests for the option-space sharding substrate.

Covers the shard plans (disjoint union, stability, empty shards), the
zero-copy dataset views, the shared-memory matrices (attach really maps the
same pages) and the zero-pickle contract of the process-pool task payloads.
The end-to-end sharded-vs-unsharded equivalences live in
``tests/test_sharded_differential.py``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.sharded import _shard_filter_task, shard_skyband
from repro.data.dataset import Dataset
from repro.data.generators import generate_independent
from repro.data.sharding import (
    SHARD_STRATEGIES,
    SharedMatrix,
    ShardSpec,
    attach_shared_matrix,
    hash_assignments,
    plan_shards,
    shard_dataset,
)
from repro.exceptions import EngineClosedError, InvalidParameterError, ReproError
from repro.preference.region import PreferenceRegion
from repro.utils.tolerance import DEFAULT_TOL


class TestShardPlans:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    @pytest.mark.parametrize("n_options,n_shards", [(1, 1), (10, 3), (100, 7), (5, 7), (64, 4)])
    def test_plan_is_a_disjoint_cover(self, n_options, n_shards, strategy):
        plan = plan_shards(n_options, n_shards, strategy)
        assert len(plan) == n_shards
        union = np.concatenate([spec.positions() for spec in plan])
        assert sorted(union.tolist()) == list(range(n_options))

    def test_contiguous_bounds_are_balanced(self):
        plan = plan_shards(10, 3, "contiguous")
        assert [spec.bounds() for spec in plan] == [(0, 3), (3, 6), (6, 10)]
        assert [spec.n_rows for spec in plan] == [3, 3, 4]

    def test_positions_are_ascending(self):
        for spec in plan_shards(200, 5, "hash"):
            positions = spec.positions()
            assert np.all(np.diff(positions) > 0)
            assert spec.n_rows == positions.shape[0]

    def test_hash_assignment_is_stable_and_seedless(self):
        first = hash_assignments(1000, 4)
        second = hash_assignments(1000, 4)
        assert np.array_equal(first, second)
        assert first.min() >= 0 and first.max() < 4
        # splitmix64 mixes well enough that no shard is starved
        counts = np.bincount(first, minlength=4)
        assert counts.min() > 150

    def test_empty_shards_when_more_shards_than_rows(self):
        plan = plan_shards(3, 7, "contiguous")
        sizes = [spec.n_rows for spec in plan]
        assert sum(sizes) == 3
        assert 0 in sizes

    def test_plan_validation(self):
        with pytest.raises(InvalidParameterError):
            plan_shards(10, 0)
        with pytest.raises(InvalidParameterError):
            plan_shards(10, 2, "roundrobin")


class TestShardDatasets:
    def test_contiguous_shard_is_a_zero_copy_view(self):
        dataset = generate_independent(100, 3, rng=0)
        shard = shard_dataset(dataset, plan_shards(100, 4, "contiguous")[1])
        assert np.shares_memory(shard.values, dataset.values)
        assert shard.option_ids == list(range(25, 50))

    def test_hash_shard_carries_parent_positions_as_ids(self):
        dataset = generate_independent(60, 3, rng=1)
        spec = plan_shards(60, 3, "hash")[2]
        shard = shard_dataset(dataset, spec)
        assert shard.option_ids == spec.positions().tolist()
        assert np.array_equal(shard.values, dataset.values[spec.positions()])

    def test_slice_view_shares_memory_and_validates(self):
        dataset = generate_independent(50, 3, rng=2)
        view = dataset.slice_view(10, 30)
        assert np.shares_memory(view.values, dataset.values)
        assert view.option_ids == dataset.option_ids[10:30]
        with pytest.raises(InvalidParameterError):
            dataset.slice_view(-1, 10)
        with pytest.raises(InvalidParameterError):
            dataset.slice_view(10, 51)
        with pytest.raises(InvalidParameterError):
            dataset.slice_view(30, 10)


class TestSharedMatrix:
    def test_attach_maps_the_same_pages(self):
        matrix = np.arange(12, dtype=float).reshape(4, 3)
        with SharedMatrix.create_from(matrix) as owner:
            attached = attach_shared_matrix(owner.spec)
            assert np.array_equal(attached.array, matrix)
            # write-through: owner mutations are visible without any transfer
            owner.array[2, 1] = -5.0
            assert attached.array[2, 1] == -5.0
            attached.close()

    def test_spec_round_trips_and_validates_dtype(self):
        with SharedMatrix.create_from(np.ones((2, 2))) as owner:
            spec = pickle.loads(pickle.dumps(owner.spec))
            bad = type(spec)(name=spec.name, shape=spec.shape, dtype="float32")
            with pytest.raises(InvalidParameterError):
                attach_shared_matrix(bad)
            attached = attach_shared_matrix(spec)
            assert attached.array.shape == (2, 2)
            attached.close()

    def test_create_rejects_non_2d(self):
        with pytest.raises(InvalidParameterError):
            SharedMatrix.create_from(np.ones(5))


class TestZeroPickleContract:
    def test_task_payload_size_is_independent_of_n(self):
        """The process-pool task ships metadata only — never score arrays."""
        sizes = {}
        for n in (1_000, 1_000_000):
            with SharedMatrix.create_from(np.ones((4, 3))) as shared:
                spec = plan_shards(n, 8, "contiguous")[3]
                payload = pickle.dumps((shared.spec, spec, 10, DEFAULT_TOL))
                sizes[n] = len(payload)
        # constant up to integer-width wobble in the pickled n_options
        assert abs(sizes[1_000] - sizes[1_000_000]) <= 8
        assert max(sizes.values()) < 2048

    def test_worker_task_reads_through_shared_memory(self):
        """A real pool worker attaches to the segment and filters its shard."""
        dataset = generate_independent(400, 3, rng=3)
        vertices = np.array([[0.3, 0.3, 0.4], [0.35, 0.3, 0.35], [0.3, 0.35, 0.35]])
        scores = dataset.values @ vertices.T
        spec = plan_shards(400, 4, "contiguous")[1]
        expected = shard_skyband(scores, spec, 5)
        with ProcessPoolExecutor(max_workers=1) as pool:
            with SharedMatrix.create_from(scores) as shared:
                shard_id, kept, seconds = pool.submit(
                    _shard_filter_task, shared.spec, spec, 5, DEFAULT_TOL
                ).result()
        assert shard_id == 1
        assert np.array_equal(kept, expected)
        assert seconds >= 0.0


class TestShardSkyband:
    def test_empty_shard_contributes_no_candidates(self):
        scores = np.random.default_rng(0).random((3, 2))
        empty = ShardSpec(shard_id=0, n_shards=7, n_options=3, strategy="contiguous")
        assert empty.n_rows == 0
        assert shard_skyband(scores, empty, 2).size == 0


class TestStaleSpecGuard:
    """Shard specs are planned for one option count; mutation re-plans."""

    def test_shard_dataset_rejects_stale_spec(self):
        dataset = generate_independent(30, 3, rng=5)
        spec = plan_shards(30, 3, "contiguous")[0]
        mutated, _delta = dataset.insert_options(
            np.random.default_rng(6).random((10, 3))
        )
        with pytest.raises(InvalidParameterError):
            shard_dataset(mutated, spec)  # spec planned for 30, dataset has 40
        # The spec still applies to the dataset it was planned for.
        assert shard_dataset(dataset, spec).n_options == spec.n_rows

    def test_sharded_engine_replans_after_delta(self):
        from repro.engine.sharded import ShardedEngine

        dataset = generate_independent(24, 3, rng=7)
        with ShardedEngine(dataset, n_shards=4, executor="serial") as engine:
            _ = engine.shard_engines  # materialise the stale-prone state
            old_plan = list(engine.plan)
            mutated, delta = dataset.insert_options(
                np.random.default_rng(8).random((16, 3))
            )
            engine.apply_delta(mutated, delta)
            assert engine.dataset is mutated
            assert all(spec.n_options == 40 for spec in engine.plan)
            assert engine.plan != old_plan
            # Per-shard engines were dropped and rebuild against the new plan.
            engines = engine.shard_engines
            assert sum(e.dataset.n_options for e in engines if e is not None) == 40


class TestClosedEngineSurface:
    """Satellite contract: every post-close call either stays safe (pure
    cache reads) or raises the typed :class:`EngineClosedError` — never a
    hang, a deadlock on a dead pool, or a silent wrong answer.
    """

    @pytest.fixture
    def closed_engine(self):
        from repro.engine.sharded import ShardedEngine

        dataset = generate_independent(40, 3, rng=11)
        engine = ShardedEngine(dataset, n_shards=2, executor="serial", rng=11)
        region = PreferenceRegion.hyperrectangle([(0.3, 0.4), (0.3, 0.4)])
        engine.query(3, region)
        engine.close()
        return engine, dataset, region

    def test_query_raises_engine_closed(self, closed_engine):
        engine, _dataset, region = closed_engine
        with pytest.raises(EngineClosedError, match="closed ShardedEngine"):
            engine.query(3, region)

    def test_query_batch_raises_engine_closed(self, closed_engine):
        engine, _dataset, region = closed_engine
        with pytest.raises(EngineClosedError):
            engine.query_batch([(3, region)])

    def test_warm_raises_engine_closed(self, closed_engine):
        engine, _dataset, region = closed_engine
        with pytest.raises(EngineClosedError):
            engine.warm([3], [region])

    def test_apply_delta_raises_engine_closed(self, closed_engine):
        engine, dataset, _region = closed_engine
        mutated, delta = dataset.insert_options(
            np.random.default_rng(12).random((2, 3))
        )
        with pytest.raises(EngineClosedError):
            engine.apply_delta(mutated, delta)

    def test_pool_health_raises_engine_closed(self, closed_engine):
        engine, _dataset, _region = closed_engine
        with pytest.raises(EngineClosedError):
            engine.pool_health()

    def test_load_caches_raises_engine_closed(self, closed_engine, tmp_path):
        engine, _dataset, _region = closed_engine
        path = tmp_path / "caches.json"
        path.write_text("{}")
        with pytest.raises(EngineClosedError):
            engine.load_caches(path)

    def test_cache_reads_stay_usable_after_close(self, closed_engine, tmp_path):
        engine, _dataset, region = closed_engine
        info = engine.cache_info()
        assert info["merged"]["results"]["currsize"] >= 1
        assert engine.cached_result(3, region, engine.method) is not None
        path = engine.save_caches(tmp_path / "caches.json")
        assert path.exists()
        engine.clear_caches()
        assert engine.cached_result(3, region, engine.method) is None

    def test_close_is_idempotent(self, closed_engine):
        engine, _dataset, _region = closed_engine
        engine.close()  # second close must not raise
        with pytest.raises(EngineClosedError):
            engine.query(3, PreferenceRegion.hyperrectangle([(0.3, 0.4), (0.3, 0.4)]))

    def test_error_type_is_catchable_as_repro_error(self, closed_engine):
        engine, _dataset, _region = closed_engine
        with pytest.raises(ReproError):
            engine.pool_health()
