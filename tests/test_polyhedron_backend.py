"""Solver-level parity of the polyhedron geometry backend.

The exact 3-D backend replaces the solvers' innermost geometric primitive
(split / emptiness / vertex enumeration) for ``d = 4`` datasets (3-D
preference space) — the paper's second headline setting.  Mirroring
``tests/test_polygon_backend.py``, the guarantee is end-to-end: every solver
run on the polyhedron backend must produce **bit-identical** ``V_all`` —
and identical split/region/vertex counters — to the LP/qhull path, while
reporting **zero** LP and qhull calls in :class:`~repro.core.stats.SolverStats`.
"""

import numpy as np
import pytest

from repro.core.pac import PACSolver
from repro.core.stats import SolverStats
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.engine import TopRREngine
from repro.engine.fingerprint import region_fingerprint
from repro.geometry.polytope import use_backend
from repro.preference.region import PreferenceRegion

#: Stats fields that legitimately differ between backends (the geometry
#: call mix and timing), plus the incremental-path cache counters.
BACKEND_FIELDS = {"n_lp_calls", "n_qhull_calls", "n_clip_calls", "seconds"}

INTERVALS = [(0.22, 0.27), (0.22, 0.27), (0.22, 0.27)]


def _regions():
    """The same d=4 region built on the polyhedron (auto) and the qhull backend."""
    polyhedron_region = PreferenceRegion.hyperrectangle(INTERVALS)
    with use_backend("qhull"):
        qhull_region = PreferenceRegion.hyperrectangle(INTERVALS)
    assert polyhedron_region.polytope.backend == "polyhedron"
    assert qhull_region.polytope.backend == "qhull"
    return polyhedron_region, qhull_region


def _solve(solver_cls, dataset, k, region, **kwargs):
    solver = solver_cls(rng=5, **kwargs)
    stats = SolverStats()
    vall = solver.partition(dataset, k, region, stats=stats)
    return vall, stats


def _comparable(stats: SolverStats) -> dict:
    return {
        key: value
        for key, value in stats.as_dict().items()
        if key not in BACKEND_FIELDS
    }


class TestSolverParity:
    """`V_all` and solve statistics must not depend on the geometry backend."""

    @pytest.mark.parametrize("solver_cls", [TASStarSolver, TASSolver, PACSolver])
    @pytest.mark.parametrize("generator", [generate_independent, generate_anticorrelated])
    def test_vall_bit_identical_and_zero_lp(self, solver_cls, generator):
        dataset = generator(1200, 4, rng=1)
        polyhedron_region, qhull_region = _regions()
        vall_polyhedron, stats_polyhedron = _solve(solver_cls, dataset, 5, polyhedron_region)
        vall_qhull, stats_qhull = _solve(solver_cls, dataset, 5, qhull_region)

        assert np.array_equal(vall_polyhedron, vall_qhull)
        assert _comparable(stats_polyhedron) == _comparable(stats_qhull)

        # The tentpole claim: d=4 geometry without a single LP or qhull call.
        assert stats_polyhedron.n_lp_calls == 0
        assert stats_polyhedron.n_qhull_calls == 0
        assert stats_polyhedron.n_clip_calls > 0
        # ... which the reference arm pays per region.
        assert stats_qhull.n_lp_calls >= stats_qhull.n_regions_tested

    @pytest.mark.slow
    @pytest.mark.parametrize("use_k_switch", [False, True])
    def test_strategies_and_ablations(self, use_k_switch):
        dataset = generate_anticorrelated(500, 4, rng=3)
        for use_lemma7 in (False, True):
            polyhedron_region, qhull_region = _regions()
            vall_polyhedron, _ = _solve(
                TASStarSolver,
                dataset,
                4,
                polyhedron_region,
                use_k_switch=use_k_switch,
                use_lemma7=use_lemma7,
            )
            vall_qhull, _ = _solve(
                TASStarSolver,
                dataset,
                4,
                qhull_region,
                use_k_switch=use_k_switch,
                use_lemma7=use_lemma7,
            )
            assert np.array_equal(vall_polyhedron, vall_qhull)

    def test_incremental_off_also_matches(self):
        dataset = generate_independent(1000, 4, rng=7)
        polyhedron_region, qhull_region = _regions()
        vall_polyhedron, _ = _solve(
            TASStarSolver, dataset, 5, polyhedron_region, incremental=False
        )
        vall_qhull, _ = _solve(TASStarSolver, dataset, 5, qhull_region, incremental=False)
        assert np.array_equal(vall_polyhedron, vall_qhull)

    def test_memo_hit_rate_carries_over(self):
        # Canonical vertex bytes are shared across split siblings, so the
        # vertex-score memo keeps its hit rate on the polyhedron backend.
        dataset = generate_independent(1200, 4, rng=9)
        polyhedron_region, qhull_region = _regions()
        _vall_p, stats_p = _solve(TASStarSolver, dataset, 6, polyhedron_region)
        _vall_q, stats_q = _solve(TASStarSolver, dataset, 6, qhull_region)
        assert stats_p.vertex_cache_hit_rate == pytest.approx(stats_q.vertex_cache_hit_rate)
        if stats_p.n_splits >= 5:
            assert stats_p.vertex_cache_hit_rate > 0.5


class TestEngineIntegration:
    """The query engine is backend-transparent at d=4, including cache keys."""

    def test_fingerprints_are_backend_independent(self):
        polyhedron_region, qhull_region = _regions()
        assert region_fingerprint(polyhedron_region) == region_fingerprint(qhull_region)

    def test_engine_results_match_across_backends(self):
        dataset = generate_independent(1200, 4, rng=2)
        polyhedron_region, qhull_region = _regions()
        engine = TopRREngine(dataset)
        result_polyhedron = engine.query(5, polyhedron_region)
        # Same fingerprint: the qhull-built region must hit the result cache.
        result_again = engine.query(5, qhull_region)
        assert result_again is result_polyhedron

        with use_backend("qhull"):
            reference_engine = TopRREngine(dataset)
            result_qhull = reference_engine.query(5, qhull_region)
        assert np.array_equal(
            result_polyhedron.vertices_reduced, result_qhull.vertices_reduced
        )
        assert result_polyhedron.stats.n_lp_calls == 0
        assert result_polyhedron.stats.n_qhull_calls == 0
        assert result_qhull.stats.n_lp_calls > 0
