"""Tests for saving and loading TopRR results."""

import json

import numpy as np
import pytest

from repro.core.placement import cheapest_new_option
from repro.core.serialization import (
    SCHEMA_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.exceptions import InvalidParameterError, SerializationError
from repro.preference.region import PreferenceRegion


@pytest.fixture(scope="module")
def market():
    return generate_independent(1_200, 3, rng=113)


@pytest.fixture(scope="module")
def result(market):
    region = PreferenceRegion.hyperrectangle([(0.32, 0.38), (0.3, 0.36)])
    return solve_toprr(market, 6, region)


class TestRoundTrip:
    def test_membership_predicate_survives_the_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        probes = np.random.default_rng(1).random((400, 3))
        assert np.array_equal(loaded.contains_many(probes), result.contains_many(probes))

    def test_geometry_survives_the_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.k == result.k
        assert loaded.n_vertices == result.n_vertices
        assert loaded.volume() == pytest.approx(result.volume(), rel=1e-6)
        assert np.allclose(np.sort(loaded.thresholds), np.sort(result.thresholds))

    def test_placement_on_the_loaded_result(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        original = cheapest_new_option(result)
        reloaded = cheapest_new_option(loaded)
        assert np.allclose(reloaded.option, original.option, atol=1e-6)

    def test_loading_with_the_original_dataset(self, market, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path, dataset=market)
        assert set(loaded.existing_top_ranking_options().tolist()) == set(
            result.existing_top_ranking_options().tolist()
        )

    def test_file_is_human_readable_json(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "toprr-result"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["k"] == result.k
        assert len(payload["thresholds"]) == result.n_vertices


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidParameterError):
            result_from_dict({"format": "something-else"})

    def test_newer_schema_rejected(self, result):
        payload = result_to_dict(result)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(InvalidParameterError):
            result_from_dict(payload)

    def test_mismatched_dataset_rejected(self, result):
        payload = result_to_dict(result)
        wrong = generate_independent(50, 4, rng=0)
        with pytest.raises(InvalidParameterError):
            result_from_dict(payload, dataset=wrong)

    def test_schema_stub_keeps_attribute_names(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.dataset.attribute_names == result.dataset.attribute_names


class TestByteExactRoundTrip:
    """Regression: loading without a dataset used to rebuild the result on a
    synthetic schema stub, silently replacing the real option ids and values
    (and dropping the tolerance).  Schema v2 embeds the dataset, so the
    round trip is exact — and documents predating v2 fail loudly instead.
    """

    def test_dataset_payload_is_byte_exact(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert loaded.dataset.values.tobytes() == result.dataset.values.tobytes()
        assert list(loaded.dataset.option_ids) == list(result.dataset.option_ids)
        assert loaded.dataset.name == result.dataset.name

    def test_filtered_subset_keeps_real_option_ids(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        loaded = load_result(path)
        assert list(loaded.filtered.option_ids) == list(result.filtered.option_ids)
        assert loaded.filtered.values.tobytes() == result.filtered.values.tobytes()

    def test_geometry_is_byte_exact(self, result, tmp_path):
        # JSON float serialisation is repr-based, hence exact for float64:
        # the loaded arrays must be bit-identical, not merely close.
        loaded = load_result(save_result(result, tmp_path / "result.json"))
        assert loaded.vertices_reduced.tobytes() == result.vertices_reduced.tobytes()
        assert loaded.thresholds.tobytes() == result.thresholds.tobytes()
        assert loaded.full_weights.tobytes() == result.full_weights.tobytes()

    def test_tolerance_survives_the_round_trip(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "result.json"))
        assert loaded._tol == result._tol

    def test_pre_v2_document_without_dataset_fails_loudly(self, result):
        payload = result_to_dict(result)
        del payload["dataset"]  # what a schema-v1 writer produced
        payload["schema_version"] = 1
        with pytest.raises(SerializationError, match="does not embed its dataset"):
            result_from_dict(payload)

    def test_pre_v2_document_loads_with_an_explicit_dataset(self, market, result):
        payload = result_to_dict(result)
        del payload["dataset"]
        payload["schema_version"] = 1
        loaded = result_from_dict(payload, dataset=market)
        assert list(loaded.filtered.option_ids) == list(result.filtered.option_ids)

    def test_load_errors_carry_the_typed_exception(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ this is not json")
        with pytest.raises(SerializationError):
            load_result(path)
        with pytest.raises(SerializationError):
            load_result(tmp_path / "missing.json")
