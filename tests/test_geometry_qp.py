"""Unit tests for the quadratic-programming placement solvers."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleProblemError
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.qp import (
    minimize_quadratic_cost,
    project_point_onto_polytope,
    quadratic_cost,
)


@pytest.fixture
def shifted_box():
    """The box [0.5, 1] x [0.5, 1]; its closest point to the origin is (0.5, 0.5)."""
    return ConvexPolytope.from_box([0.5, 0.5], [1.0, 1.0])


class TestMinimizeQuadraticCost:
    def test_origin_projection_onto_shifted_box(self, shifted_box):
        optimum = minimize_quadratic_cost(shifted_box)
        assert np.allclose(optimum, [0.5, 0.5], atol=1e-5)

    def test_unconstrained_optimum_inside_region(self):
        box = ConvexPolytope.from_box([-1.0, -1.0], [1.0, 1.0])
        optimum = minimize_quadratic_cost(box)
        assert np.allclose(optimum, [0.0, 0.0], atol=1e-8)

    def test_weighted_cost_prefers_cheap_attribute(self):
        # Halfplane x + y >= 1 inside the unit box; weight makes y cheap.
        region = ConvexPolytope.from_box([0, 0], [1, 1]).intersect_halfspace(
            Halfspace([-1.0, -1.0], -1.0)
        )
        optimum = minimize_quadratic_cost(region, weights=[10.0, 0.1])
        assert optimum[1] > optimum[0]
        assert optimum[0] + optimum[1] == pytest.approx(1.0, abs=1e-4)

    def test_empty_region_raises(self):
        empty = ConvexPolytope(np.array([[1.0, 0.0], [-1.0, 0.0]]), np.array([0.0, -1.0]))
        with pytest.raises(InfeasibleProblemError):
            minimize_quadratic_cost(empty)

    def test_invalid_weights_rejected(self, shifted_box):
        with pytest.raises(ValueError):
            minimize_quadratic_cost(shifted_box, weights=[1.0, -1.0])

    def test_triangle_optimum_on_facet(self):
        # x + y >= 1 within the unit box: the closest point to the origin is (0.5, 0.5).
        region = ConvexPolytope.from_box([0, 0], [1, 1]).intersect_halfspace(
            Halfspace([-1.0, -1.0], -1.0)
        )
        optimum = minimize_quadratic_cost(region)
        assert np.allclose(optimum, [0.5, 0.5], atol=1e-5)


class TestProjection:
    def test_point_already_inside_is_unchanged(self, shifted_box):
        projected = project_point_onto_polytope([0.75, 0.75], shifted_box)
        assert np.allclose(projected, [0.75, 0.75])

    def test_projection_onto_face(self, shifted_box):
        projected = project_point_onto_polytope([0.75, 0.0], shifted_box)
        assert np.allclose(projected, [0.75, 0.5], atol=1e-5)

    def test_projection_onto_corner(self, shifted_box):
        projected = project_point_onto_polytope([0.0, 0.0], shifted_box)
        assert np.allclose(projected, [0.5, 0.5], atol=1e-5)

    def test_projection_reduces_distance_monotonically(self, shifted_box):
        target = np.array([0.2, 0.3])
        projected = project_point_onto_polytope(target, shifted_box)
        # No feasible point can be closer than the projection (convexity check on samples).
        samples = shifted_box.sample(200, np.random.default_rng(1))
        best_sample = min(np.linalg.norm(samples - target, axis=1))
        assert np.linalg.norm(projected - target) <= best_sample + 1e-6


class TestQuadraticCost:
    def test_unweighted_cost_is_sum_of_squares(self):
        assert quadratic_cost([0.3, 0.4]) == pytest.approx(0.25)

    def test_weighted_cost(self):
        assert quadratic_cost([1.0, 2.0], weights=[2.0, 0.5]) == pytest.approx(2.0 + 2.0)
