"""Cross-backend differential property-test harness.

The closed-form geometry backends (2-D polygon, 3-D polyhedron) promise to
be **bit-identical** to the LP/qhull reference path — which makes the
reference path a perfect *oracle* for property-based testing, in the spirit
of the metamorphic/differential testing used for comparison-based choice
models.  A lightweight seeded fuzzer (no external dependency) generates
random split trees over random datasets at ``d = 3`` *and* ``d = 4`` and
drives every region operation through both backends:

* **cut** (``ConvexPolytope.split`` by a scoring hyperplane of a random
  option pair, exactly the hyperplanes the solvers cut on),
* **clip** (``intersect_halfspace``),
* **emptiness** and **full-dimensionality** verdicts,
* **Chebyshev centre / radius**,
* **vertex enumeration** (canonical bytes compared with ``tobytes()`` —
  stricter than ``array_equal``, which treats ``-0.0 == 0.0``).

A second layer runs whole TAS* solves on both backends and asserts
identical solver-level ``V_all`` bytes with zero LP/qhull calls on the
closed-form arm.  Each dimension runs >= 200 seeded cases (the acceptance
bar of the PR that introduced the polyhedron backend); cases are chunked so
pytest/xdist can spread them over workers.
"""

import numpy as np
import pytest

from repro.core.stats import SolverStats
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.exceptions import InvalidParameterError
from repro.geometry.counters import geometry_counters
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import use_backend
from repro.preference.region import PreferenceRegion

#: Fuzz cases per (dimension, chunk): 8 chunks x 25 cases = 200 per dimension.
CASES_PER_CHUNK = 25
N_CHUNKS = 8

#: Reduced-space dimensions under test and the backend each must select.
DIMENSIONS = {2: "polygon", 3: "polyhedron"}


def _random_region(rng, dim):
    """A random axis-aligned box region inside the weight simplex."""
    lower = rng.uniform(0.02, 0.28, size=dim)
    width = rng.uniform(0.04, 0.3, size=dim)
    upper = np.minimum(lower + width, 0.97)
    intervals = list(zip(lower.tolist(), upper.tolist()))
    region = PreferenceRegion.hyperrectangle(intervals)
    with use_backend("qhull"):
        reference = PreferenceRegion.hyperrectangle(intervals)
    return region, reference


def _random_options(rng, dim, n_options):
    """Random option values; anti-correlated-ish to make rank swaps common."""
    values = rng.random((n_options, dim + 1))
    return values


def _compare_pair(closed, reference, counts):
    """Assert one closed-form/qhull polytope pair agrees on every operation."""
    assert closed.is_empty() == reference.is_empty()
    assert closed.is_full_dimensional() == reference.is_full_dimensional()
    counts["verdicts"] += 1
    if closed.is_empty():
        return False
    radius = closed.chebyshev_radius
    assert radius == pytest.approx(reference.chebyshev_radius, rel=1e-6, abs=1e-8)
    if not closed.is_full_dimensional():
        return False
    # Canonical vertex enumeration must agree to the byte.
    assert closed.vertices.tobytes() == reference.vertices.tobytes()
    counts["vertex_sets"] += 1
    # The Chebyshev centre of a full-dimensional body is strictly interior
    # on both backends (the centres themselves may differ when the optimum
    # is degenerate — only the radius is unique).
    assert closed.contains(closed.chebyshev_center)
    assert reference.contains(reference.chebyshev_center)
    return True


def _run_split_tree_case(rng, dim, counts):
    """One fuzz case: a random split tree compared operation-by-operation."""
    region, reference = _random_region(rng, dim)
    assert region.polytope.backend == DIMENSIONS[dim]
    assert reference.polytope.backend == "qhull"
    options = _random_options(rng, dim, n_options=int(rng.integers(8, 40)))

    frontier = [(region, reference)]
    for _step in range(int(rng.integers(3, 8))):
        if not frontier:
            break
        node, ref_node = frontier.pop(int(rng.integers(len(frontier))))
        pair = rng.choice(options.shape[0], size=2, replace=False)
        try:
            hyperplane = node.scoring_hyperplane(options[pair[0]], options[pair[1]])
        except InvalidParameterError:
            continue  # numerically identical options: no scoring hyperplane
        if int(rng.integers(4)) == 0:
            # Occasionally exercise the one-sided clip path instead of a cut.
            child = node.polytope.intersect_halfspace(Halfspace.from_hyperplane(hyperplane))
            ref_child = ref_node.polytope.intersect_halfspace(
                Halfspace.from_hyperplane(hyperplane)
            )
            counts["clips"] += 1
            if _compare_pair(child, ref_child, counts):
                frontier.append(
                    (
                        PreferenceRegion(child, n_attributes=dim + 1),
                        PreferenceRegion(ref_child, n_attributes=dim + 1),
                    )
                )
            continue
        below, above = node.split(hyperplane)
        ref_below, ref_above = ref_node.split(hyperplane)
        counts["cuts"] += 1
        for child, ref_child in ((below, ref_below), (above, ref_above)):
            if _compare_pair(child.polytope, ref_child.polytope, counts):
                frontier.append((child, ref_child))


@pytest.mark.parametrize("dim", sorted(DIMENSIONS))
@pytest.mark.parametrize("chunk", range(N_CHUNKS))
def test_region_operations_differential(dim, chunk):
    """>= 200 seeded random split trees per dimension, all ops bit-compared."""
    counts = {"verdicts": 0, "vertex_sets": 0, "cuts": 0, "clips": 0}
    for case in range(CASES_PER_CHUNK):
        seed = 10_000 * dim + 100 * chunk + case
        _run_split_tree_case(np.random.default_rng(seed), dim, counts)
    # The harness must not pass vacuously: every chunk exercises real work.
    assert counts["cuts"] + counts["clips"] >= CASES_PER_CHUNK
    assert counts["vertex_sets"] >= CASES_PER_CHUNK


@pytest.mark.parametrize("dim", sorted(DIMENSIONS))
@pytest.mark.parametrize("seed", range(4))
def test_solver_level_differential(dim, seed):
    """Whole TAS* solves: identical `V_all` bytes, zero LP/qhull closed-form."""
    rng = np.random.default_rng(7_000 + 97 * dim + seed)
    generator = generate_anticorrelated if seed % 2 else generate_independent
    dataset = generator(int(rng.integers(150, 400)), dim + 1, rng=int(rng.integers(1 << 16)))
    k = int(rng.integers(2, 6))
    region, reference = _random_region(rng, dim)

    geometry_counters.reset()
    stats = SolverStats()
    vall = TASStarSolver(rng=3).partition(dataset, k, region, stats=stats)
    ref_stats = SolverStats()
    ref_vall = TASStarSolver(rng=3).partition(dataset, k, reference, stats=ref_stats)

    assert vall.tobytes() == ref_vall.tobytes()
    assert stats.n_lp_calls == 0
    assert stats.n_qhull_calls == 0
    assert stats.n_regions_tested == ref_stats.n_regions_tested
    assert stats.n_splits == ref_stats.n_splits
