"""Unit tests for the top-k query layer, k-skyband and onion layers."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.topk.onion import k_onion_layers, onion_layer_assignment
from repro.topk.query import rank_of, top_k, top_k_from_scores, top_k_score
from repro.topk.scoring import linear_scores, linear_scores_many, score_difference_affine
from repro.topk.skyband import dominance_count, k_skyband, skyband_of_values, skyline


class TestScoring:
    def test_linear_scores(self, figure1):
        scores = linear_scores(figure1.values, [0.5, 0.5])
        assert scores[1] == pytest.approx(0.8)  # p2 = (0.7, 0.9)

    def test_linear_scores_many(self, figure1):
        matrix = linear_scores_many(figure1.values, np.array([[1.0, 0.0], [0.5, 0.5]]))
        assert matrix.shape == (6, 2)

    def test_dimension_mismatch(self, figure1):
        with pytest.raises(DimensionMismatchError):
            linear_scores(figure1.values, [1.0, 0.0, 0.0])

    def test_score_difference_affine_matches_direct_computation(self, figure1):
        p1, p2 = figure1.values[0], figure1.values[1]
        coeff, const = score_difference_affine(p1, p2)
        for w1 in (0.2, 0.5, 0.8):
            full = np.array([w1, 1 - w1])
            direct = full @ p1 - full @ p2
            affine = coeff @ np.array([w1]) + const
            assert affine == pytest.approx(direct)


class TestTopK:
    def test_figure1_top3_at_balanced_weight(self, figure1):
        # At w = (0.5, 0.5): p2=0.8, p1=0.65, p4=0.55, p3=0.4, ...
        result = top_k(figure1, [0.5, 0.5], 3)
        assert [figure1.id_of(i) for i in result.indices] == ["p2", "p1", "p4"]
        assert result.threshold == pytest.approx(0.55)
        assert result.kth_index == 3

    def test_top_k_score(self, figure1):
        assert top_k_score(figure1, [0.5, 0.5], 1) == pytest.approx(0.8)

    def test_k_larger_than_dataset(self, figure1):
        result = top_k(figure1, [1.0, 0.0], 100)
        assert len(result.indices) == 6

    def test_invalid_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            top_k(figure1, [1.0, 0.0], 0)

    def test_tie_break_by_index(self):
        data = Dataset([[0.5, 0.5], [0.5, 0.5], [0.9, 0.1]])
        result = top_k(data, [0.5, 0.5], 2)
        # All three score 0.5; ties resolved by ascending index.
        assert result.indices.tolist() == [0, 1]

    def test_top_k_from_scores_matches_top_k(self, figure1):
        weight = np.array([0.3, 0.7])
        direct = top_k(figure1, weight, 4)
        from_scores = top_k_from_scores(figure1.values @ weight, 4)
        assert direct.indices.tolist() == from_scores.indices.tolist()

    def test_top_k_large_input_uses_partition_path(self):
        rng = np.random.default_rng(0)
        data = Dataset(rng.random((10_000, 3)))
        weight = np.array([0.2, 0.3, 0.5])
        result = top_k(data, weight, 10)
        brute = np.lexsort((np.arange(10_000), -(data.values @ weight)))[:10]
        assert result.indices.tolist() == brute.tolist()

    def test_index_set_is_frozen(self, figure1):
        result = top_k(figure1, [0.5, 0.5], 2)
        assert isinstance(result.index_set, frozenset)


class TestRankOf:
    def test_new_option_dominating_everything_is_rank_one(self, figure1):
        assert rank_of(figure1, [0.5, 0.5], [1.0, 1.0]) == 1

    def test_new_option_below_everything(self, figure1):
        assert rank_of(figure1, [0.5, 0.5], [0.0, 0.0]) == 7

    def test_tie_counts_in_favour_of_new_option(self, figure1):
        # p2 scores 0.8 at the balanced weight; an equal-scoring new option gets rank 1.
        assert rank_of(figure1, [0.5, 0.5], [0.8, 0.8]) == 1


class TestSkyband:
    def test_skyline_of_figure1(self, figure1):
        # p1 (0.9, 0.4) and p2 (0.7, 0.9) are not dominated; the rest are.
        assert [figure1.id_of(i) for i in skyline(figure1)] == ["p1", "p2"]

    def test_two_skyband_of_figure1(self, figure1):
        # p3 = (0.6, 0.2) is dominated by both p1 and p2, so it drops out of
        # the 2-skyband but re-enters the 3-skyband.
        band2 = {figure1.id_of(i) for i in k_skyband(figure1, 2)}
        assert band2 == {"p1", "p2", "p4"}
        band3 = {figure1.id_of(i) for i in k_skyband(figure1, 3)}
        assert band3 == {"p1", "p2", "p3", "p4"}

    def test_skyband_grows_with_k(self, small_ind_dataset):
        sizes = [len(k_skyband(small_ind_dataset, k)) for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_skyband_contains_top_k_for_any_weight(self, small_ind_dataset):
        k = 3
        band = set(k_skyband(small_ind_dataset, k).tolist())
        rng = np.random.default_rng(2)
        for _ in range(20):
            raw = rng.random(small_ind_dataset.n_attributes)
            weight = raw / raw.sum()
            result = top_k(small_ind_dataset, weight, k)
            assert set(result.indices.tolist()) <= band

    def test_dominance_count_caps(self):
        values = np.array([[0.9, 0.9], [0.5, 0.5], [0.4, 0.4], [0.1, 0.1]])
        counts = dominance_count(values, cap=2)
        assert counts.tolist() == [0, 1, 2, 2]

    def test_skyband_invalid_k(self, figure1):
        with pytest.raises(InvalidParameterError):
            k_skyband(figure1, 0)

    def test_skyband_of_values_empty(self):
        assert skyband_of_values(np.empty((0, 3)), 2).size == 0

    def test_duplicates_do_not_dominate_each_other(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert skyband_of_values(values, 1).tolist() == [0, 1]


class TestOnion:
    def test_first_layer_is_convex_hull(self, unit_square_dataset):
        layer = k_onion_layers(unit_square_dataset, 1)
        # The interior points (0.40, 0.40) and (0.20, 0.15) are not hull vertices.
        ids = set(layer.tolist())
        assert 4 not in ids or 5 not in ids

    def test_layers_grow_with_k(self, small_ind_dataset):
        sizes = [len(k_onion_layers(small_ind_dataset, k)) for k in (1, 2, 3)]
        assert sizes == sorted(sizes)

    def test_onion_contains_top_k_for_any_weight(self, small_ind_dataset):
        k = 2
        selected = set(k_onion_layers(small_ind_dataset, k).tolist())
        rng = np.random.default_rng(3)
        for _ in range(20):
            raw = rng.random(small_ind_dataset.n_attributes)
            weight = raw / raw.sum()
            result = top_k(small_ind_dataset, weight, k)
            assert set(result.indices.tolist()) <= selected

    def test_invalid_k(self, unit_square_dataset):
        with pytest.raises(InvalidParameterError):
            k_onion_layers(unit_square_dataset, 0)

    def test_layer_assignment_covers_all_options(self, unit_square_dataset):
        layers = onion_layer_assignment(unit_square_dataset)
        assert np.all(layers >= 1)

    def test_layer_assignment_respects_max_layers(self, small_ind_dataset):
        layers = onion_layer_assignment(small_ind_dataset, max_layers=1)
        assert set(np.unique(layers)).issubset({0, 1})
