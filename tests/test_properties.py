"""Property-based tests (hypothesis) for the core invariants of the paper.

Each property mirrors a lemma or a structural guarantee:

* Lemma 1 — vertex dominance extends to the whole convex region;
* the r-skyband is a superset of every top-k result inside the region;
* k-skyband / top-k consistency;
* polytope splitting preserves volume and membership;
* the affine reduced-space scoring form equals direct full-weight scoring;
* the end-to-end TopRR membership predicate agrees with a brute-force
  rank check at sampled weights.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.toprr import solve_toprr
from repro.data.dataset import Dataset
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import ConvexPolytope
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.pruning.rskyband import r_skyband
from repro.topk.query import rank_of, top_k
from repro.topk.skyband import k_skyband

# Keep hypothesis example counts modest: every example runs real geometry.
_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _dataset_strategy(min_rows=4, max_rows=40, min_cols=2, max_cols=4):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda d: st.lists(
                st.lists(
                    st.floats(0.0, 1.0, allow_nan=False, width=32), min_size=d, max_size=d
                ),
                min_size=n,
                max_size=n,
            )
        )
    )


@st.composite
def dataset_and_region(draw, max_cols=4):
    rows = draw(_dataset_strategy(max_cols=max_cols))
    values = np.asarray(rows, dtype=float)
    dataset = Dataset(values)
    d = dataset.n_attributes
    # A random hyper-rectangle inside the weight simplex.
    side = draw(st.floats(0.02, 0.2))
    anchor = draw(
        st.lists(st.floats(0.0, 0.6, allow_nan=False), min_size=d - 1, max_size=d - 1)
    )
    anchor = np.asarray(anchor)
    scale = min(1.0, 0.9 / max(anchor.sum() + side * (d - 1), 1e-9))
    lower = anchor * scale
    upper = lower + side * scale
    region = PreferenceRegion.hyperrectangle(list(zip(lower.tolist(), upper.tolist())))
    return dataset, region


class TestLemma1Property:
    @given(data=dataset_and_region())
    @_SETTINGS
    def test_vertex_dominance_extends_to_region(self, data):
        """Lemma 1: if p scores >= p' at every vertex, it does so everywhere in the region."""
        dataset, region = data
        space = PreferenceSpace(dataset.n_attributes)
        full_vertices = region.full_vertices()
        scores = dataset.values @ full_vertices.T
        rng = np.random.default_rng(0)
        interior = region.sample_weights(8, rng)
        interior_scores = dataset.values @ space.to_full_many(interior).T
        for a in range(min(6, dataset.n_options)):
            for b in range(min(6, dataset.n_options)):
                if np.all(scores[a] >= scores[b] - 1e-12):
                    assert np.all(interior_scores[a] >= interior_scores[b] - 1e-7)


class TestFilterProperties:
    @given(data=dataset_and_region(), k=st.integers(1, 5))
    @_SETTINGS
    def test_r_skyband_superset_of_topk(self, data, k):
        dataset, region = data
        k = min(k, dataset.n_options)
        band = set(r_skyband(dataset, k, region).tolist())
        space = PreferenceSpace(dataset.n_attributes)
        rng = np.random.default_rng(1)
        probes = np.vstack([region.sample_weights(5, rng), region.vertices])
        for reduced in probes:
            result = top_k(dataset, space.to_full(reduced), k)
            assert set(result.indices.tolist()) <= band

    @given(data=dataset_and_region(), k=st.integers(1, 5))
    @_SETTINGS
    def test_r_skyband_subset_of_k_skyband(self, data, k):
        dataset, region = data
        k = min(k, dataset.n_options)
        assert set(r_skyband(dataset, k, region).tolist()) <= set(k_skyband(dataset, k).tolist())

    @given(rows=_dataset_strategy(), k=st.integers(1, 6))
    @_SETTINGS
    def test_k_skyband_monotone_in_k(self, rows, k):
        dataset = Dataset(np.asarray(rows, dtype=float))
        k = min(k, dataset.n_options)
        smaller = set(k_skyband(dataset, k).tolist())
        larger = set(k_skyband(dataset, min(k + 1, dataset.n_options)).tolist())
        assert smaller <= larger


class TestScoringProperties:
    @given(rows=_dataset_strategy(), w_raw=st.lists(st.floats(0.01, 1.0), min_size=4, max_size=4))
    @_SETTINGS
    def test_affine_form_equals_full_scoring(self, rows, w_raw):
        values = np.asarray(rows, dtype=float)
        dataset = Dataset(values)
        d = dataset.n_attributes
        space = PreferenceSpace(d)
        raw = np.asarray(w_raw[:d], dtype=float)
        full = raw / raw.sum()
        reduced = space.to_reduced(full)
        assert np.allclose(space.scores_at_reduced(values, reduced), values @ full, atol=1e-9)

    @given(rows=_dataset_strategy(), k=st.integers(1, 6))
    @_SETTINGS
    def test_top_k_threshold_is_kth_order_statistic(self, rows, k):
        values = np.asarray(rows, dtype=float)
        dataset = Dataset(values)
        k = min(k, dataset.n_options)
        weight = np.full(dataset.n_attributes, 1.0 / dataset.n_attributes)
        result = top_k(dataset, weight, k)
        scores = np.sort(values @ weight)[::-1]
        assert result.threshold == pytest.approx(scores[k - 1])


class TestPolytopeProperties:
    @given(
        lower=st.lists(st.floats(0.0, 0.4), min_size=2, max_size=3),
        width=st.floats(0.1, 0.5),
        normal=st.lists(st.floats(-1.0, 1.0), min_size=2, max_size=3),
        offset=st.floats(-0.5, 1.5),
    )
    @_SETTINGS
    def test_split_preserves_volume_and_membership(self, lower, width, normal, offset):
        dim = len(lower)
        normal = np.resize(np.asarray(normal, dtype=float), dim)
        if np.linalg.norm(normal) < 1e-6:
            normal = np.ones(dim)
        lower_arr = np.asarray(lower)
        box = ConvexPolytope.from_box(lower_arr, lower_arr + width)
        plane = Hyperplane(normal, offset)
        below, above = box.split(plane)
        assert below.volume() + above.volume() == pytest.approx(box.volume(), rel=1e-6, abs=1e-9)
        rng = np.random.default_rng(0)
        points = rng.uniform(lower_arr, lower_arr + width, size=(20, dim))
        for point in points:
            assert below.contains(point) or above.contains(point)


class TestEndToEndProperty:
    @given(data=dataset_and_region(max_cols=3), k=st.integers(1, 4))
    @_SETTINGS
    def test_membership_matches_rank_check(self, data, k):
        """A sampled candidate inside oR is top-k at sampled weights of wR (and vice versa)."""
        dataset, region = data
        k = min(k, dataset.n_options)
        result = solve_toprr(dataset, k, region)
        space = PreferenceSpace(dataset.n_attributes)
        rng = np.random.default_rng(2)
        weights = space.to_full_many(np.vstack([region.sample_weights(4, rng), region.vertices]))
        candidates = rng.random((12, dataset.n_attributes))
        scores = candidates @ result.full_weights.T
        slack = scores - result.thresholds[None, :]
        for candidate, candidate_slack in zip(candidates, slack):
            if np.all(candidate_slack >= 1e-7):
                for weight in weights:
                    assert rank_of(dataset, weight, candidate) <= k
            elif np.any(candidate_slack <= -1e-7):
                worst_vertex = int(np.argmin(candidate_slack))
                weight = result.full_weights[worst_vertex]
                assert rank_of(dataset, weight, candidate) > k
