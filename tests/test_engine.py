"""Tests for the session-scoped :class:`repro.engine.TopRREngine`.

Covers: result parity with sequential :func:`solve_toprr`, cache hits and
LRU eviction, batch execution (serial and threaded), cache warming, the
engine-aware sampled baseline, and the CLI ``batch`` command.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.sampled import sampled_toprr
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.engine import LRUCache, TopRREngine, region_fingerprint
from repro.engine.cache import MISSING
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion


@pytest.fixture(scope="module")
def catalogue():
    return generate_independent(1_500, 3, rng=17)


@pytest.fixture(scope="module")
def regions():
    return [
        PreferenceRegion.hyperrectangle([(0.30, 0.36), (0.30, 0.36)]),
        PreferenceRegion.hyperrectangle([(0.20, 0.26), (0.40, 0.46)]),
        PreferenceRegion.hyperrectangle([(0.45, 0.50), (0.15, 0.20)]),
    ]


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(2)
        assert cache.get("a") is MISSING
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.info().evictions == 1

    def test_zero_size_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is MISSING
        assert len(cache) == 0

    def test_disabled_cache_reports_distinctly_and_counts_nothing(self):
        # Regression: a maxsize<=0 cache used to count a miss on every get,
        # polluting hit-rate stats with lookups that could never hit.
        cache = LRUCache(0)
        for _ in range(5):
            assert cache.get("a") is MISSING
        info = cache.info()
        assert info.disabled is True
        assert (info.hits, info.misses, info.evictions) == (0, 0, 0)
        assert info.as_dict()["disabled"] is True

    def test_enabled_cache_is_not_reported_disabled(self):
        cache = LRUCache(2)
        cache.get("a")
        info = cache.info()
        assert info.disabled is False
        assert info.as_dict()["disabled"] is False
        assert info.misses == 1


class TestDisabledEngineCaches:
    def test_zero_cache_engine_solves_with_clean_stats(self, catalogue, regions):
        baseline = TopRREngine(catalogue)
        disabled = TopRREngine(catalogue, result_cache_size=0, skyband_cache_size=0)
        for region in regions[:2]:
            expected = baseline.query(4, region)
            for _ in range(2):  # repeated queries can't hit anything
                answer = disabled.query(4, region)
                assert answer.vertices_reduced.tobytes() == expected.vertices_reduced.tobytes()
        info = disabled.cache_info()
        assert info["results"]["disabled"] is True
        assert info["skyband"]["disabled"] is True
        assert info["results"]["hits"] == 0 and info["results"]["misses"] == 0
        assert info["skyband"]["hits"] == 0 and info["skyband"]["misses"] == 0

    def test_cached_peeks_short_circuit_when_disabled(self, catalogue, regions):
        engine = TopRREngine(catalogue, result_cache_size=0, skyband_cache_size=0)
        engine.query(4, regions[0])
        assert engine.cached_result(4, regions[0], "tas*") is None
        assert engine.cached_skyband(4, regions[0]) is None


class TestMutationCountersFromConstruction:
    def test_cache_info_carries_zeroed_mutation_block(self, catalogue):
        # The serving /metrics route reads these keys on a replica that has
        # never seen a mutation; they must exist (zeroed) from construction.
        info = TopRREngine(catalogue).cache_info()
        mutations = info["mutations"]
        assert mutations["n_deltas"] == 0
        assert mutations["n_entries_survived"] == 0
        assert mutations["n_results_survived"] == 0
        assert mutations["n_memos_salvaged"] == 0
        # vacuous survival: nothing was ever at risk, so the rate reads 1.0
        assert mutations["survivor_rate"] == 1.0

    def test_solver_stats_mutation_counters_zeroed(self, catalogue, regions):
        result = TopRREngine(catalogue).query(3, regions[0])
        stats = result.stats.as_dict()
        for key in ("n_mutation_deltas", "n_entries_survived", "n_entries_evicted"):
            assert stats.get(key, 0) == 0


class TestRegionFingerprint:
    def test_equal_regions_share_fingerprints(self):
        a = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])
        b = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])
        assert region_fingerprint(a) == region_fingerprint(b)

    def test_distinct_regions_differ(self):
        a = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.2)])
        b = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.1, 0.21)])
        assert region_fingerprint(a) != region_fingerprint(b)


class TestEngineQuery:
    def test_parity_with_solve_toprr(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        for k, region in [(5, regions[0]), (3, regions[1]), (8, regions[2])]:
            from_engine = engine.query(k, region)
            standalone = solve_toprr(catalogue, k, region)
            assert from_engine.n_vertices == standalone.n_vertices
            assert np.array_equal(
                np.sort(from_engine.thresholds), np.sort(standalone.thresholds)
            )
            assert from_engine.filtered.n_options == standalone.filtered.n_options
            probes = np.random.default_rng(k).random((200, 3))
            assert np.array_equal(
                from_engine.contains_many(probes), standalone.contains_many(probes)
            )

    def test_repeated_query_served_from_result_cache(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        first = engine.query(5, regions[0])
        second = engine.query(5, regions[0])
        assert first is second
        info = engine.cache_info()
        assert info["results"]["hits"] == 1
        assert info["n_queries"] == 2

    def test_skyband_cache_shared_across_methods(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        engine.query(5, regions[0], method="tas*")
        result = engine.query(5, regions[0], method="tas")
        # Different method: full solve, but the r-skyband comes from cache.
        assert result.stats.extra["skyband_cache_hit"] is True
        assert engine.cache_info()["skyband"]["hits"] == 1

    def test_result_cache_eviction(self, catalogue, regions):
        engine = TopRREngine(catalogue, result_cache_size=2, skyband_cache_size=2)
        for region in regions:  # 3 distinct queries through a size-2 LRU
            engine.query(5, region)
        info = engine.cache_info()
        assert info["results"]["evictions"] == 1
        assert info["skyband"]["evictions"] == 1
        # The first region was evicted: querying it again is a miss.
        engine.query(5, regions[0])
        assert engine.cache_info()["results"]["hits"] == 0

    def test_use_cache_false_bypasses(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        first = engine.query(5, regions[0])
        second = engine.query(5, regions[0], use_cache=False)
        assert first is not second
        assert first.n_vertices == second.n_vertices

    def test_validation_matches_solve_toprr(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        with pytest.raises(InvalidParameterError):
            engine.query(0, regions[0])
        with pytest.raises(InvalidParameterError):
            engine.query(catalogue.n_options + 1, regions[0])
        with pytest.raises(InvalidParameterError):
            engine.query(5, PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.2, 0.3), (0.1, 0.2)]))

    def test_prefilter_disabled(self, catalogue, regions):
        engine = TopRREngine(catalogue, prefilter=False)
        result = engine.query(4, regions[0])
        assert result.filtered is catalogue
        reference = solve_toprr(catalogue, 4, regions[0], prefilter=False)
        assert result.n_vertices == reference.n_vertices


class TestEngineBatch:
    def batch_specs(self, regions):
        return [(5, regions[0]), (3, regions[1]), (5, regions[0]), (8, regions[2])]

    def test_batch_parity_with_sequential(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        specs = self.batch_specs(regions)
        batch = engine.query_batch(specs)
        assert len(batch) == len(specs)
        for (k, region), result in zip(specs, batch):
            reference = solve_toprr(catalogue, k, region)
            assert result.k == k
            assert result.n_vertices == reference.n_vertices
            assert np.array_equal(np.sort(result.thresholds), np.sort(reference.thresholds))

    def test_batch_thread_executor(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        specs = self.batch_specs(regions)
        batch = engine.query_batch(specs, executor="thread", n_workers=2)
        serial = engine.query_batch(specs)
        for threaded, reference in zip(batch, serial):
            assert threaded.n_vertices == reference.n_vertices

    def test_batch_rejects_unknown_executor(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        with pytest.raises(InvalidParameterError):
            engine.query_batch([(5, regions[0])], executor="gpu")

    def test_warm_precomputes_skyband(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        computed = engine.warm([4, 6], regions[:2])
        assert computed == 4
        assert engine.warm([4], regions[:1]) == 0  # already cached
        engine.query(4, regions[0])
        assert engine.cache_info()["skyband"]["hits"] >= 1


class TestSampledWithEngine:
    def test_sampled_reuses_engine_prefilter(self, catalogue, regions):
        engine = TopRREngine(catalogue)
        engine.warm([5], regions[:1])
        baseline = sampled_toprr(catalogue, 5, regions[0], n_samples=16, engine=engine)
        plain = sampled_toprr(catalogue, 5, regions[0], n_samples=16)
        assert baseline.filtered.n_options == plain.filtered.n_options
        assert engine.cache_info()["skyband"]["hits"] >= 1

    def test_sampled_rejects_foreign_engine(self, catalogue, regions):
        other = generate_independent(100, 3, rng=3)
        engine = TopRREngine(other)
        with pytest.raises(InvalidParameterError):
            sampled_toprr(catalogue, 5, regions[0], engine=engine)


class TestCLIBatch:
    def test_batch_command_smoke(self, capsys):
        code = cli_main(
            [
                "batch",
                "--n", "400",
                "--d", "3",
                "--k", "4",
                "--queries", "6",
                "--distinct", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine batch" in out
        assert "result cache" in out
