"""End-to-end fault-injection differential for the sharded process path.

Every test runs ``solve_toprr_sharded(executor="process")`` under a seeded
:class:`~repro.core.faults.FaultPlan` — workers crash hard, hang past the
batch deadline, fail the shared-memory attach, or raise inside the filter
kernel — and asserts the three invariants of the ISSUE:

1. the query still completes with **byte-identical** results to the
   unsharded solver (shard tasks are pure, so every recovery rung preserves
   the exact arithmetic),
2. the supervision counters in ``SolverStats`` account for exactly what the
   schedule injected, and
3. no shared-memory segment owned by this process leaks, even when workers
   died without cleanup.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.faults import ANY_KEY, FaultPlan, FaultSpec
from repro.core.sharded import solve_toprr_sharded
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.data.sharding import leaked_segments
from repro.exceptions import ShardExecutionError
from repro.preference.random_regions import random_hypercube_region

N_SHARDS = 3


def own_leaked_segments():
    """Shared-memory segments created by *this* process still on the host.

    Segment names embed the creator's pid, so filtering by it keeps the
    assertion immune to concurrent test processes (xdist workers) that are
    legitimately mid-query with live segments of their own.
    """
    prefix = f"toprr_{os.getpid():x}_"
    return [name for name in leaked_segments() if name.startswith(prefix)]


def assert_bit_identical(sharded, reference):
    """Byte-compare every output array of two TopRR results."""
    assert sharded.vertices_reduced.tobytes() == reference.vertices_reduced.tobytes()
    assert sharded.full_weights.tobytes() == reference.full_weights.tobytes()
    assert sharded.thresholds.tobytes() == reference.thresholds.tobytes()


@pytest.fixture(scope="module")
def d3_instance():
    """A d=3 instance plus its unsharded reference result."""
    dataset = generate_independent(500, 3, rng=41)
    region = random_hypercube_region(3, 0.07, rng=42)
    k = 6
    return dataset, k, region, solve_toprr(dataset, k, region)


@pytest.fixture(scope="module")
def d4_instance():
    """A d=4 instance plus its unsharded reference result."""
    dataset = generate_anticorrelated(250, 4, rng=43)
    region = random_hypercube_region(4, 0.06, rng=44)
    k = 4
    return dataset, k, region, solve_toprr(dataset, k, region)


def _solve_under(plan, instance, **kwargs):
    dataset, k, region, reference = instance
    with plan.installed():
        sharded = solve_toprr_sharded(
            dataset, k, region, n_shards=N_SHARDS, executor="process", **kwargs
        )
    assert_bit_identical(sharded, reference)
    assert own_leaked_segments() == []
    return sharded


class TestCrashRecovery:
    def test_d3_worker_crash_once(self, d3_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="task", key=1, kind="crash", times=1)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d3_instance, shard_retries=2)
        assert plan.fired(0) == 1
        stats = sharded.stats
        assert stats.n_worker_crashes == 1
        assert stats.n_pool_rebuilds == 1
        assert stats.n_retries >= 1
        assert stats.n_degraded_shards == 0
        assert not stats.degraded
        assert stats.extra["resilience_events"]

    def test_d4_worker_crash_once(self, d4_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="task", key=0, kind="crash", times=1)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d4_instance, shard_retries=2)
        assert plan.fired(0) == 1
        assert sharded.stats.n_worker_crashes == 1
        assert sharded.stats.n_pool_rebuilds == 1
        assert not sharded.stats.degraded


class TestKernelAndAttachFaults:
    def test_d3_kernel_raise_once(self, d3_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="kernel", key=ANY_KEY, kind="raise", times=1)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d3_instance, shard_retries=2)
        assert plan.fired(0) == 1
        stats = sharded.stats
        assert stats.n_retries == 1
        assert stats.n_worker_crashes == 0
        assert stats.n_pool_rebuilds == 0
        assert not stats.degraded

    def test_d3_attach_failure_once(self, d3_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="attach", key=2, kind="raise", times=1)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d3_instance, shard_retries=1)
        assert plan.fired(0) == 1
        assert sharded.stats.n_retries == 1
        assert not sharded.stats.degraded

    def test_d4_kernel_raise_once(self, d4_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="kernel", key=1, kind="raise", times=1)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d4_instance, shard_retries=2)
        assert sharded.stats.n_retries == 1
        assert not sharded.stats.degraded


class TestHangRecovery:
    def test_d3_hung_worker_times_out(self, d3_instance, tmp_path):
        plan = FaultPlan(
            specs=[FaultSpec(point="task", key=0, kind="hang", times=1, hang_seconds=30.0)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d3_instance, shard_timeout=1.0, shard_retries=2)
        assert plan.fired(0) == 1
        stats = sharded.stats
        assert stats.n_retries >= 1
        assert stats.n_pool_rebuilds >= 1
        assert not stats.degraded


class TestSerialDegradation:
    def test_d3_persistent_raises_degrade_every_shard(self, d3_instance, tmp_path):
        # Every pool attempt of every shard raises; the coordinator runs the
        # shard kernels in-process instead (fault-free by design) and the
        # result is still byte-identical.
        plan = FaultPlan(
            specs=[FaultSpec(point="kernel", key=ANY_KEY, kind="raise", times=100)],
            state_dir=str(tmp_path),
        )
        sharded = _solve_under(plan, d3_instance, shard_retries=1)
        stats = sharded.stats
        assert stats.degraded
        assert stats.n_degraded_shards == N_SHARDS
        assert stats.n_retries >= N_SHARDS

    def test_d3_no_fallback_raises(self, d3_instance, tmp_path):
        dataset, k, region, _reference = d3_instance
        plan = FaultPlan(
            specs=[FaultSpec(point="kernel", key=ANY_KEY, kind="raise", times=100)],
            state_dir=str(tmp_path),
        )
        with plan.installed():
            with pytest.raises(ShardExecutionError):
                solve_toprr_sharded(
                    dataset,
                    k,
                    region,
                    n_shards=N_SHARDS,
                    executor="process",
                    shard_retries=1,
                    shard_fallback=False,
                )
        # The failed query's shared score matrix must still be unlinked.
        assert own_leaked_segments() == []


class TestHealthySchedules:
    def test_d3_empty_plan_is_invisible(self, d3_instance, tmp_path):
        plan = FaultPlan(specs=[], state_dir=str(tmp_path))
        sharded = _solve_under(plan, d3_instance)
        stats = sharded.stats
        assert stats.n_retries == 0
        assert stats.n_worker_crashes == 0
        assert stats.n_pool_rebuilds == 0
        assert stats.n_degraded_shards == 0
        assert not stats.degraded
        assert "resilience_events" not in stats.extra

    def test_schedule_is_deterministic_across_runs(self, d3_instance, tmp_path):
        dataset, k, region, _ = d3_instance
        runs = []
        for attempt in range(2):
            plan = FaultPlan(
                specs=[FaultSpec(point="kernel", key=1, kind="raise", times=1)],
                state_dir=str(tmp_path / f"run{attempt}"),
            )
            os.makedirs(plan.state_dir, exist_ok=True)
            with plan.installed():
                result = solve_toprr_sharded(
                    dataset, k, region, n_shards=N_SHARDS, executor="process", shard_retries=2
                )
            runs.append(result)
            assert plan.fired(0) == 1
        first, second = runs
        assert first.stats.n_retries == second.stats.n_retries == 1
        assert np.array_equal(first.vertices_reduced, second.vertices_reduced)
        assert own_leaked_segments() == []
