"""Differential suite: the sharded path is *bit-identical* to the unsharded one.

The sharded solver's contract is not "approximately the same answer" but
byte-equality of every output array: the sharded stages reproduce the exact
global r-skyband (decomposition theorem in :mod:`repro.core.sharded`), after
which the unmodified solve runs on bit-identical inputs.  These tests compare
``V_all``, the lifted weights, the thresholds, the output polytope and the
filtered option ids between :func:`repro.core.toprr.solve_toprr` and the
sharded path across seeded random instances, shard counts (including more
shards than options), both strategies and both executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sharded import sharded_r_skyband, solve_toprr_sharded
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_anticorrelated, generate_independent
from repro.engine import ShardedEngine, TopRREngine
from repro.exceptions import InvalidParameterError
from repro.preference.random_regions import random_hypercube_region
from repro.pruning.rskyband import r_skyband


def assert_bit_identical(sharded, reference):
    """Byte-compare every output array of two TopRR results."""
    assert sharded.vertices_reduced.tobytes() == reference.vertices_reduced.tobytes()
    assert sharded.full_weights.tobytes() == reference.full_weights.tobytes()
    assert sharded.thresholds.tobytes() == reference.thresholds.tobytes()
    assert np.array_equal(sharded.polytope.vertices, reference.polytope.vertices)
    assert sharded.filtered.option_ids == reference.filtered.option_ids
    assert sharded.filtered.values.tobytes() == reference.filtered.values.tobytes()


class TestShardedSkybandEqualsGlobal:
    """Stage-level differential: the sharded filter IS the global r-skyband."""

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_fuzz_d3(self, n_shards, strategy):
        rng = np.random.default_rng(100 * n_shards + len(strategy))
        for trial in range(6):
            n = int(rng.integers(5, 900))
            k = int(rng.integers(1, min(n, 15) + 1))
            dataset = generate_independent(n, 3, rng=int(rng.integers(0, 2**31)))
            region = random_hypercube_region(3, 0.08, rng=int(rng.integers(0, 2**31)))
            expected = r_skyband(dataset, k, region)
            actual = sharded_r_skyband(dataset, k, region, n_shards, strategy)
            assert np.array_equal(actual, expected), (trial, n, k)

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    def test_fuzz_d4_anticorrelated(self, strategy):
        rng = np.random.default_rng(7 if strategy == "hash" else 11)
        for trial in range(4):
            n = int(rng.integers(50, 600))
            k = int(rng.integers(1, 12))
            dataset = generate_anticorrelated(n, 4, rng=int(rng.integers(0, 2**31)))
            region = random_hypercube_region(4, 0.06, rng=int(rng.integers(0, 2**31)))
            expected = r_skyband(dataset, k, region)
            for n_shards in (2, 7):
                actual = sharded_r_skyband(dataset, k, region, n_shards, strategy)
                assert np.array_equal(actual, expected), (trial, n_shards)


class TestShardedSolveParity:
    """End-to-end differential: full results byte-compared."""

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_fuzz_d3_serial(self, n_shards, strategy):
        rng = np.random.default_rng(1000 * n_shards + len(strategy))
        for trial in range(3):
            n = int(rng.integers(20, 1200))
            k = int(rng.integers(1, min(n, 12) + 1))
            seed = int(rng.integers(0, 2**31))
            dataset = generate_independent(n, 3, rng=seed)
            region = random_hypercube_region(3, 0.07, rng=seed + 1)
            reference = solve_toprr(dataset, k, region)
            sharded = solve_toprr_sharded(
                dataset, k, region, n_shards=n_shards, strategy=strategy, executor="serial"
            )
            assert_bit_identical(sharded, reference)
            assert sharded.stats.n_shards == n_shards
            assert sharded.stats.n_filtered_options == reference.stats.n_filtered_options

    @pytest.mark.parametrize("strategy", ["contiguous", "hash"])
    def test_d3_process_executor(self, strategy):
        dataset = generate_independent(2_000, 3, rng=21)
        region = random_hypercube_region(3, 0.06, rng=22)
        reference = solve_toprr(dataset, 8, region)
        sharded = solve_toprr_sharded(
            dataset, 8, region, n_shards=4, strategy=strategy, executor="process"
        )
        assert_bit_identical(sharded, reference)
        assert sharded.stats.extra["shard_executor"] == "process"
        assert len(sharded.stats.extra["shard_seconds"]) == 4
        assert sum(sharded.stats.extra["shard_candidates"]) == sharded.stats.extra["n_candidates"]

    @pytest.mark.slow
    def test_d4_serial_and_process(self):
        dataset = generate_anticorrelated(800, 4, rng=31)
        region = random_hypercube_region(4, 0.05, rng=32)
        reference = solve_toprr(dataset, 6, region)
        for strategy, executor in [("contiguous", "serial"), ("hash", "serial"), ("contiguous", "process")]:
            sharded = solve_toprr_sharded(
                dataset, 6, region, n_shards=4, strategy=strategy, executor=executor
            )
            assert_bit_identical(sharded, reference)

    def test_more_shards_than_options(self):
        """Empty shards (n_shards > n) contribute nothing and break nothing."""
        dataset = generate_independent(5, 3, rng=41)
        region = random_hypercube_region(3, 0.1, rng=42)
        reference = solve_toprr(dataset, 2, region)
        for strategy in ("contiguous", "hash"):
            sharded = solve_toprr_sharded(
                dataset, 2, region, n_shards=7, strategy=strategy, executor="serial"
            )
            assert_bit_identical(sharded, reference)

    def test_solve_toprr_shards_dispatch(self):
        dataset = generate_independent(600, 3, rng=51)
        region = random_hypercube_region(3, 0.08, rng=52)
        reference = solve_toprr(dataset, 5, region)
        sharded = solve_toprr(dataset, 5, region, shards=3, shard_executor="serial")
        assert_bit_identical(sharded, reference)
        with pytest.raises(InvalidParameterError):
            solve_toprr(dataset, 5, region, shards=3, prefilter=False)


class TestShardedEngineParity:
    def test_session_queries_match_unsharded_engine(self):
        dataset = generate_independent(1_500, 3, rng=61)
        regions = [random_hypercube_region(3, 0.07, rng=62 + i) for i in range(3)]
        reference = TopRREngine(dataset)
        with ShardedEngine(dataset, n_shards=4, executor="serial") as engine:
            for k in (4, 9):
                for region in regions:
                    assert_bit_identical(engine.query(k, region), reference.query(k, region))
            # repeat queries hit the merged skyband / result caches, same answers
            again = engine.query(4, regions[0])
            assert_bit_identical(again, reference.query(4, regions[0]))

    def test_engine_rejects_unknown_executor(self):
        dataset = generate_independent(50, 3, rng=71)
        with pytest.raises(InvalidParameterError):
            ShardedEngine(dataset, executor="threads")
