"""Pytest bootstrap: make ``src/`` importable without requiring installation.

The package is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in minimal offline environments
(no ``wheel`` package available for editable installs).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
