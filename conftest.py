"""Pytest bootstrap: make ``src/`` importable without requiring installation.

The package is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in minimal offline environments
(no ``wheel`` package available for editable installs).

Also registers the ``slow`` marker: the handful of long-running
parity/experiment tests (dominated by the Table 7 elongation sweep) carry
it so CI can run ``-m "not slow"`` and ``-m slow`` as two parallel jobs
(both with ``pytest-xdist -n auto``) without losing coverage.  A plain
``pytest -x -q`` still runs everything.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    """Register project markers (no pytest.ini / pyproject table exists)."""
    config.addinivalue_line(
        "markers",
        "slow: long-running parity/experiment tests, run in a separate CI job",
    )
    config.addinivalue_line(
        "markers",
        "mutation: mutation-differential fuzz harness, run in the CI "
        "mutation-fuzz lane (fast/slow lanes exclude it)",
    )
