"""Session-scoped TopRR query serving.

* :mod:`repro.engine.engine` — :class:`TopRREngine`: bind a dataset once,
  answer many queries with cross-query caching (affine score form,
  r-skyband, full results), batch execution and cache warming.
* :mod:`repro.engine.sharded` — :class:`ShardedEngine`: the same contract
  with the r-skyband pre-filter sharded over disjoint option partitions and
  run on a process pool against shared-memory score matrices.
* :mod:`repro.engine.cache` — the bounded LRU used for the caches.
* :mod:`repro.engine.fingerprint` — hashable region fingerprints (cache keys).
"""

from repro.engine.cache import CacheInfo, LRUCache
from repro.engine.engine import BATCH_EXECUTORS, TopRREngine
from repro.engine.fingerprint import region_fingerprint
from repro.engine.sharded import ShardedEngine

__all__ = [
    "TopRREngine",
    "ShardedEngine",
    "BATCH_EXECUTORS",
    "LRUCache",
    "CacheInfo",
    "region_fingerprint",
]
