"""A small thread-safe bounded LRU cache with hit/miss/eviction counters.

The query engine keys expensive per-query intermediates (r-skyband results,
full query answers) by ``(k, region fingerprint)``; a bounded LRU keeps the
memory of long-lived engine sessions constant while interactive workloads —
which revisit a handful of recent ``(k, region)`` combinations — stay almost
entirely in cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISSING = object()


@dataclass(frozen=True)
class CacheInfo:
    """Counters of one :class:`LRUCache` (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int

    @property
    def disabled(self) -> bool:
        """True for a ``maxsize <= 0`` cache (lookups bypassed, nothing stored).

        A disabled cache records *no* hits and *no* misses: reporting every
        bypassed ``get`` as a miss would make a deliberately cache-less run
        (e.g. the experiment runner's timing engines) look like a pathological
        0% hit rate instead of "not caching at all".
        """
        return self.maxsize <= 0

    def as_dict(self) -> dict:
        """Plain-dict view for reports and ``TopRREngine.cache_info``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": self.currsize,
            "maxsize": self.maxsize,
            "disabled": self.disabled,
        }


class LRUCache:
    """Bounded least-recently-used mapping.

    ``maxsize <= 0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op), which the experiment runner uses to keep timing
    measurements honest while still routing through the engine.
    """

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Any:
        """The cached value, or :data:`MISSING`; refreshes recency on hit.

        A disabled cache (``maxsize <= 0``) returns :data:`MISSING` without
        counting a miss — nothing can ever be stored, so the lookup is a
        bypass, not a cache miss (see :attr:`CacheInfo.disabled`).
        """
        if self.maxsize <= 0:
            return MISSING
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is MISSING:
                self._misses += 1
            else:
                self._hits += 1
                self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used if full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def items(self) -> list:
        """Snapshot of ``(key, value)`` pairs, oldest first (no recency change).

        Used by the mutation-maintenance walk in
        :meth:`~repro.engine.engine.TopRREngine.apply_delta`, which must
        examine every entry without perturbing the LRU order or the hit/miss
        counters.
        """
        with self._lock:
            return list(self._data.items())

    def pop(self, key: Hashable) -> Any:
        """Remove and return an entry (``MISSING`` if absent); no counters."""
        with self._lock:
            return self._data.pop(key, MISSING)

    def replace(self, key: Hashable, value: Any) -> bool:
        """Swap the value of an *existing* entry in place.

        Leaves the LRU order and all counters untouched — mutation
        maintenance patches surviving entries without making them look
        recently used.  Returns False (and stores nothing) if the key is
        absent, e.g. evicted by a concurrent query between the
        :meth:`items` snapshot and the patch.
        """
        with self._lock:
            if key not in self._data:
                return False
            # Assigning to an existing key keeps its position in the
            # OrderedDict, so recency is untouched by construction.
            self._data[key] = value
            return True

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    def info(self) -> CacheInfo:
        """Current counters."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        info = self.info()
        return (
            f"LRUCache(size={info.currsize}/{info.maxsize}, hits={info.hits}, "
            f"misses={info.misses}, evictions={info.evictions})"
        )
