"""A session-scoped TopRR query engine with cross-query caching.

:func:`repro.core.toprr.solve_toprr` answers one query and throws everything
away.  Interactive and batched preference workloads — an analyst exploring
clientele segments, a recommendation layer probing many ``(k, region)``
combinations against one catalogue — re-pay three costs on every call that
depend only on the dataset (or on the ``(k, region)`` pair, not the call):

1. the affine score form of the dataset over the reduced preference space,
2. the r-skyband pre-filter for the ``(k, region)`` pair,
3. the full solve itself when the exact same query is repeated.

:class:`TopRREngine` binds a dataset once and amortises all three: the
affine form is computed lazily once and sliced per query, r-skyband results
and complete answers are kept in bounded LRU caches keyed by
``(k, region fingerprint)``.  ``query_batch`` runs many queries through one
engine (serially, via threads, or via worker processes), and ``warm``
precomputes the filter for an anticipated query mix.

**Cache-key semantics.**  A region is keyed by its *fingerprint*
(:func:`~repro.engine.fingerprint.region_fingerprint`): the defining
vertices, rounded to 10 decimals and lexicographically sorted.  Two region
objects describing the same polytope therefore share cache entries even
when their halfspace representations differ (redundant constraints, row
order) or when they were built on different geometry backends (2-D and 3-D
vertices are canonical across backends, see :mod:`repro.geometry.polytope`).  The
r-skyband cache is keyed by ``(k, fingerprint)`` and shared across solver
methods; the result cache adds the method name: ``(k, fingerprint, method)``.
Both are bounded LRUs (:class:`~repro.engine.cache.LRUCache`): inserting
beyond ``skyband_cache_size`` / ``result_cache_size`` evicts the least
recently *used* entry (hits refresh recency), so a long-lived session holds
at most that many intermediates regardless of how many distinct queries it
has seen.  Evicting an r-skyband entry also drops the
:class:`~repro.core.scorecache.VertexScoreMemo` stored alongside it.

Results are exactly those of :func:`~repro.core.toprr.solve_toprr` — the
engine only changes where the intermediates come from, never what they are
(the parity tests in ``tests/test_engine.py`` assert this).  A runnable tour
of the cache behaviour lives in ``examples/quickstart.py``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base_solver import BaseTestAndSplit
from repro.core.kipr import WorkingSet
from repro.core.impact import build_impact_region
from repro.core.mutation import (
    MutationDelta,
    MutationReport,
    entry_survival,
    position_column_map,
)
from repro.core.pac import PACSolver
from repro.core.scorecache import VertexScoreMemo
from repro.core.stats import SolverStats
from repro.core.toprr import SolverLike, TopRRResult, make_solver
from repro.data.dataset import Dataset
from repro.engine.cache import MISSING, LRUCache
from repro.engine.fingerprint import region_fingerprint
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.pruning.rskyband import r_skyband
from repro.utils.rng import RngLike
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Executor labels accepted by :meth:`TopRREngine.query_batch`.
BATCH_EXECUTORS = ("serial", "thread", "process")

#: One query of a batch: ``(k, region)``.
QuerySpec = Tuple[int, PreferenceRegion]


def _solve_query_worker(dataset, k, region, method, prefilter, clip, bounds, rng, tol):
    """Process-pool worker: one independent solve (no shared caches)."""
    from repro.core.toprr import solve_toprr

    return solve_toprr(
        dataset,
        k,
        region,
        method=method,
        prefilter=prefilter,
        clip_to_unit_box=clip,
        option_bounds=bounds,
        rng=rng,
        tol=tol,
    )


class TopRREngine:
    """Bind a dataset once, answer many TopRR queries fast.

    Parameters
    ----------
    dataset:
        The option dataset ``D`` this engine serves.
    method:
        Default solver for queries that do not specify one
        (``"tas*"``, ``"tas"``, ``"pac"``, or a solver instance).
    prefilter:
        Apply the r-skyband pre-filter (as :func:`solve_toprr` does).
    clip_to_unit_box, option_bounds:
        Output-region clipping, as in :func:`solve_toprr`.
    rng:
        Seed for each query's solver (a fresh solver is built per query so
        repeated queries are deterministic and match ``solve_toprr``).
    tol:
        Numerical tolerance bundle shared by all queries.
    skyband_cache_size:
        Bound of the r-skyband LRU (entries are keyed by
        ``(k, region fingerprint)`` and carry the filtered dataset, the
        working set sliced from the bound affine form, and the vertex-score
        memo).  Least-recently-used entries are evicted beyond the bound;
        ``0`` disables the cache.
    result_cache_size:
        Bound of the full-result LRU (keyed by ``(k, fingerprint, method)``;
        the method key exists because different solvers may return different
        — equally valid — ``V_all`` partitionings).  ``0`` disables result
        reuse.  Only string methods are cacheable; passing a solver
        *instance* bypasses this cache.

    Examples
    --------
    >>> from repro.data.generators import generate_independent
    >>> from repro.preference.region import PreferenceRegion
    >>> engine = TopRREngine(generate_independent(2_000, 3, rng=1))
    >>> region = PreferenceRegion.hyperrectangle([(0.3, 0.35), (0.3, 0.35)])
    >>> result = engine.query(5, region)
    >>> result is engine.query(5, region)  # served from the result cache
    True
    """

    def __init__(
        self,
        dataset: Dataset,
        method: SolverLike = "tas*",
        prefilter: bool = True,
        clip_to_unit_box: bool = True,
        option_bounds: Optional[tuple] = None,
        rng: RngLike = 0,
        tol: Tolerance = DEFAULT_TOL,
        skyband_cache_size: int = 128,
        result_cache_size: int = 64,
    ):
        self.dataset = dataset
        self.method = method
        self.prefilter = bool(prefilter)
        self.clip_to_unit_box = bool(clip_to_unit_box)
        self.option_bounds = option_bounds
        self.rng = rng
        self.tol = tol
        self._space = PreferenceSpace(dataset.n_attributes)
        self._affine: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._skyband_cache = LRUCache(skyband_cache_size)
        self._result_cache = LRUCache(result_cache_size)
        self._full_memo: Optional[VertexScoreMemo] = None
        self._nofilter_workings: dict = {}
        self._counter_lock = threading.Lock()
        self.n_queries = 0
        # Mutation-maintenance state: memos of entries evicted by a delta,
        # kept around (bounded) so install_skyband can salvage their score
        # rows when the entry is rebuilt; plus cumulative accounting.
        self._mutation_salvage: dict = {}
        self._mutation_totals = MutationReport()
        self._last_mutation_report: Optional[MutationReport] = None
        self.n_deltas = 0

    # ------------------------------------------------------------------ #
    # bound intermediates
    # ------------------------------------------------------------------ #
    def affine_form(self) -> Tuple[np.ndarray, np.ndarray]:
        """The dataset's affine score form, computed once and reused."""
        if self._affine is None:
            self._affine = self._space.affine_score_form(self.dataset.values)
        return self._affine

    def _validate(self, k: int, region: PreferenceRegion) -> None:
        """Reject out-of-range ``k`` and dataset/region dimension mismatches."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if k > self.dataset.n_options:
            raise InvalidParameterError(
                f"k={k} exceeds the dataset size {self.dataset.n_options}; "
                "every placement would qualify"
            )
        if region.n_attributes != self.dataset.n_attributes:
            raise InvalidParameterError(
                f"region is defined for {region.n_attributes}-attribute options but the dataset "
                f"has {self.dataset.n_attributes} attributes"
            )

    def prefiltered(
        self, k: int, region: PreferenceRegion
    ) -> Tuple[Dataset, WorkingSet, VertexScoreMemo, bool]:
        """``(D', root working set, score memo, cache_hit)`` for one ``(k, region)`` pair.

        ``D'`` is the r-skyband subset (or the dataset itself when the engine
        was built with ``prefilter=False``); the working set is sliced from
        the bound affine form, so no per-query score-form computation occurs.
        The vertex-score memo lives alongside the cached r-skyband entry, so
        repeated queries against the same ``(k, region)`` reuse each other's
        split-tree vertex scores even when the full result was not cached.
        """
        coefficients, constants = self.affine_form()
        if not self.prefilter:
            with self._counter_lock:
                working = self._nofilter_workings.get(int(k))
                if working is None:
                    working = WorkingSet.from_affine_form(coefficients, constants, k)
                    self._nofilter_workings[int(k)] = working
                if self._full_memo is None:
                    self._full_memo = VertexScoreMemo(coefficients, constants)
            return self.dataset, working, self._full_memo, False

        if self._skyband_cache.maxsize <= 0:
            # Cache disabled (the experiment runner's timing engines): skip
            # the fingerprint, the salvage lookup and the exact-vertex dump
            # entirely — none of them can pay off, and the fingerprint's
            # vertex enumeration would pollute the measured filter time.
            kept = np.asarray(r_skyband(self.dataset, k, region, tol=self.tol), dtype=int)
            filtered = self.dataset.subset(kept, name=f"{self.dataset.name}[r-skyband]")
            working = WorkingSet.from_affine_form(coefficients[kept], constants[kept], k)
            return filtered, working, VertexScoreMemo.for_working(working), False

        key = (int(k), region_fingerprint(region))
        cached = self._skyband_cache.get(key)
        if cached is not MISSING:
            return cached[0], cached[1], cached[2], True

        kept = r_skyband(self.dataset, k, region, tol=self.tol)
        filtered, working, memo, _vertices = self.install_skyband(k, region, kept)
        return filtered, working, memo, False

    def cached_result(self, k: int, region: PreferenceRegion, method) -> Optional[TopRRResult]:
        """The cached :class:`TopRRResult` for ``(k, region, method)``, or ``None``.

        Pure lookup — never solves.  Only string methods are cacheable, as
        in :meth:`query`.  The sharded front end checks this before paying
        the shard fan-out for a query the result cache can already answer.
        """
        if not isinstance(method, str) or self._result_cache.maxsize <= 0:
            return None
        cached = self._result_cache.get((int(k), region_fingerprint(region), method.lower()))
        return None if cached is MISSING else cached

    def cached_skyband(self, k: int, region: PreferenceRegion):
        """The cached ``(filtered, working, memo, vertices)`` entry, or ``None``.

        Sharding hook: the sharded coordinator peeks every shard engine's
        cache before deciding which shards actually need to run the filter.
        Counts as a cache hit/miss like :meth:`prefiltered` does.
        """
        if not self.prefilter or self._skyband_cache.maxsize <= 0:
            return None
        entry = self._skyband_cache.get((int(k), region_fingerprint(region)))
        return None if entry is MISSING else entry

    def install_skyband(self, k: int, region: PreferenceRegion, kept) -> tuple:
        """Install an externally computed r-skyband result and return its entry.

        ``kept`` are ascending positional indices into this engine's dataset
        — exactly what :func:`~repro.pruning.rskyband.r_skyband` returns.
        The entry (filtered dataset, root working set sliced from the bound
        affine form, vertex-score memo, exact region vertices) is built the
        same way
        :meth:`prefiltered` builds it, so a later :meth:`query` for the same
        ``(k, region)`` is indistinguishable from having run the filter here.
        This is the sharding hook: the coordinator of
        :class:`repro.engine.sharded.ShardedEngine` filters in worker
        processes and installs the results into the per-shard engines.
        """
        coefficients, constants = self.affine_form()
        kept = np.asarray(kept, dtype=int)
        filtered = self.dataset.subset(kept, name=f"{self.dataset.name}[r-skyband]")
        working = WorkingSet.from_affine_form(coefficients[kept], constants[kept], k)
        key = (int(k), region_fingerprint(region))
        salvaged = self._mutation_salvage.pop(key, None)
        if salvaged is not None:
            # A mutation evicted this (k, region) entry but parked its memo:
            # rebind the memo to the fresh band by copying the columns of
            # options that stayed band members and scoring only the new ones
            # (bit-identical either way, see VertexScoreMemo.remapped).
            old_ids, old_memo = salvaged
            column_map = position_column_map(filtered.option_ids, old_ids)
            memo = old_memo.remapped(working.coefficients, working.constants, column_map)
            with self._counter_lock:
                self._mutation_totals.n_memos_salvaged += 1
                if self._last_mutation_report is not None:
                    self._last_mutation_report.n_memos_salvaged += 1
        else:
            memo = VertexScoreMemo.for_working(working)
        # The entry carries the exact (unrounded) region vertices: the
        # mutation survival test must replicate the filter's score matrix
        # byte-for-byte, and the fingerprint in the key is rounded.
        entry = (filtered, working, memo, region.full_vertices())
        self._skyband_cache.put(key, entry)
        return entry

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        k: int,
        region: PreferenceRegion,
        method: Optional[SolverLike] = None,
        use_cache: bool = True,
    ) -> TopRRResult:
        """Solve one TopRR query against the bound dataset.

        Identical in contract to :func:`repro.core.toprr.solve_toprr`; when
        the same ``(k, region, method)`` was answered recently, the cached
        :class:`TopRRResult` object is returned as-is.
        """
        self._validate(k, region)
        with self._counter_lock:  # query() is also called from thread-pool batches
            self.n_queries += 1
        method = self.method if method is None else method

        result_key: Optional[tuple] = None
        if use_cache and isinstance(method, str) and self._result_cache.maxsize > 0:
            result_key = (int(k), region_fingerprint(region), method.lower())
            cached = self._result_cache.get(result_key)
            if cached is not MISSING:
                return cached

        solver = make_solver(method, rng=self.rng, tol=self.tol)
        stats = SolverStats()
        stats.n_input_options = self.dataset.n_options

        timer = Timer().start()
        filtered, working, memo, skyband_hit = self.prefiltered(k, region)
        stats.n_filtered_options = filtered.n_options

        if isinstance(solver, (BaseTestAndSplit, PACSolver)):
            vall = solver.partition(
                filtered, k, region, stats=stats, working=working, score_memo=memo
            )
        else:
            vall = solver.partition(filtered, k, region, stats=stats, working=working)
        polytope, full_weights, thresholds = build_impact_region(
            filtered,
            vall,
            k,
            clip_to_unit_box=self.clip_to_unit_box,
            bounds=self.option_bounds,
            tol=self.tol,
        )
        stats.seconds = timer.stop()
        stats.n_after_lemma5 = stats.n_after_lemma5 or filtered.n_options
        stats.extra["skyband_cache_hit"] = bool(skyband_hit)
        with self._counter_lock:
            last_report = self._last_mutation_report
        if last_report is not None:
            stats.n_entries_survived = last_report.n_entries_survived
            stats.n_entries_evicted = last_report.n_entries_evicted
            stats.n_dominance_tests = last_report.n_dominance_tests

        result = TopRRResult(
            dataset=self.dataset,
            filtered=filtered,
            k=k,
            region=region,
            vertices_reduced=vall,
            full_weights=full_weights,
            thresholds=thresholds,
            polytope=polytope,
            stats=stats,
            method=getattr(solver, "name", str(method)),
            tol=self.tol,
        )
        if result_key is not None:
            self._result_cache.put(result_key, result)
        return result

    def query_batch(
        self,
        queries: Iterable[Union[QuerySpec, Sequence]],
        method: Optional[SolverLike] = None,
        executor: str = "serial",
        n_workers: int = 4,
        use_cache: bool = True,
    ) -> List[TopRRResult]:
        """Answer many ``(k, region)`` queries; results keep the input order.

        Parameters
        ----------
        queries:
            Iterable of ``(k, region)`` pairs.
        executor:
            ``"serial"`` (default) runs in-process and shares all caches;
            ``"thread"`` fans out over a thread pool (caches are shared and
            thread-safe, but the solve hot path is CPU-bound Python since
            the closed-form geometry backends replaced the GIL-releasing
            LP/qhull calls, so threads mostly overlap cache lookups — do not
            expect them to scale the solve itself; note also that identical
            queries running *concurrently* each solve before the first
            populates the cache, so repeats only hit once the earlier
            answer has landed);
            ``"process"`` uses worker processes as
            :mod:`repro.core.parallel` does — fully parallel but without
            shared caches, appropriate for batches of mostly-distinct heavy
            queries.  For CPU-bound scaling on one large catalogue, prefer
            option-space sharding
            (:class:`repro.engine.sharded.ShardedEngine`, CLI ``--shards``),
            which parallelises inside each query instead of across queries.
        n_workers:
            Pool size for the ``"thread"`` and ``"process"`` executors.
        """
        specs: List[QuerySpec] = [(int(k), region) for k, region in queries]
        if executor not in BATCH_EXECUTORS:
            raise InvalidParameterError(
                f"unknown executor {executor!r}; expected one of {BATCH_EXECUTORS}"
            )
        if n_workers <= 0:
            raise InvalidParameterError(f"n_workers must be positive, got {n_workers}")

        if executor == "serial" or len(specs) <= 1:
            return [self.query(k, region, method=method, use_cache=use_cache) for k, region in specs]

        if executor == "thread":
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(self.query, k, region, method, use_cache) for k, region in specs
                ]
                return [future.result() for future in futures]

        resolved = self.method if method is None else method
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(
                    _solve_query_worker,
                    self.dataset,
                    k,
                    region,
                    resolved,
                    self.prefilter,
                    self.clip_to_unit_box,
                    self.option_bounds,
                    self.rng,
                    self.tol,
                )
                for k, region in specs
            ]
            return [future.result() for future in futures]

    def warm(self, ks: Iterable[int], regions: Iterable[PreferenceRegion]) -> int:
        """Precompute the r-skyband for every ``(k, region)`` combination.

        Returns the number of entries actually computed (combinations already
        cached are skipped).  Useful before serving an anticipated query mix:
        a warmed ``(k, region)`` pair answers its first :meth:`query` with
        the pre-filter — typically the larger fixed cost on big catalogues —
        already paid, and its vertex-score memo already allocated.  Warming
        more combinations than ``skyband_cache_size`` silently evicts the
        oldest ones, so size the cache to the query mix first.
        """
        regions = list(regions)
        computed = 0
        for k in ks:
            for region in regions:
                self._validate(k, region)
                _filtered, _working, _memo, hit = self.prefiltered(k, region)
                if not hit:
                    computed += 1
        return computed

    # ------------------------------------------------------------------ #
    # mutation maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, dataset: Dataset, delta: MutationDelta) -> MutationReport:
        """Rebind the engine to a mutated dataset, keeping provably valid caches.

        ``dataset`` and ``delta`` are what
        :meth:`~repro.data.dataset.Dataset.insert_options` /
        :meth:`~repro.data.dataset.Dataset.delete_options` returned for the
        dataset this engine is currently bound to (the version chain is
        enforced).  Instead of :meth:`clear_caches`, every cached r-skyband
        entry and result is put through the eviction-soundness test
        (:func:`~repro.core.mutation.entry_survival`): an entry survives —
        and is served unchanged to later queries — only when no deleted
        option was a band member and no inserted option can enter the band,
        which makes the survivor byte-identical to a from-scratch rebuild
        (the contract ``tests/test_mutation_differential.py`` fuzzes).
        Evicted entries park their vertex-score memo for column-remap
        salvage on rebuild.  Returns the survivor/eviction accounting.
        """
        delta.check_applies_to(self.dataset, dataset)
        report = MutationReport()
        old_dataset = self.dataset
        self.dataset = dataset
        self._affine = None  # recomputed lazily; row-wise, so survivors match

        if delta.n_inserted and self._mutation_salvage:
            # An insert may reuse the id of an option deleted by an *earlier*
            # delta; parked memos still holding a column for that id would
            # salvage stale scores, so they are dropped before any rebuild.
            inserted = set(delta.inserted_ids)
            stale = [
                key
                for key, (old_ids, _memo) in self._mutation_salvage.items()
                if inserted.intersection(old_ids)
            ]
            for key in stale:
                self._mutation_salvage.pop(key, None)

        if not self.prefilter:
            # Without the pre-filter there is no band to count dominators
            # against, so no entry is provably unaffected: evict every
            # result, rebuild the working sets, and salvage the full-dataset
            # memo's score rows by column remap (sound unconditionally).
            for key, _result in self._result_cache.items():
                if self._result_cache.pop(key) is not MISSING:
                    report.n_results_evicted += 1
            with self._counter_lock:
                old_memo, self._full_memo = self._full_memo, None
                self._nofilter_workings.clear()
            if old_memo is not None and len(old_memo):
                coefficients, constants = self.affine_form()
                column_map = position_column_map(dataset.option_ids, old_dataset.option_ids)
                with self._counter_lock:
                    self._full_memo = old_memo.remapped(coefficients, constants, column_map)
                report.n_memos_salvaged += 1
            return self._record_delta(report)

        # One vertex-score product per distinct region: the skyband entry
        # and the per-method results for the same (k, region) share it.
        score_cache: dict = {}

        def region_scores(fingerprint, full_vertices):
            """Memoised ``values @ full_vertices.T`` for one region fingerprint."""
            if fingerprint not in score_cache:
                score_cache[fingerprint] = dataset.values @ full_vertices.T
            return score_cache[fingerprint]

        for key, entry in self._skyband_cache.items():
            filtered, _working, memo, full_vertices = entry
            survives, n_tests = entry_survival(
                dataset,
                delta,
                key[0],
                full_vertices,
                filtered.option_ids,
                tol=self.tol,
                scores=region_scores(key[1], full_vertices) if delta.n_inserted else None,
            )
            report.n_dominance_tests += n_tests
            if survives:
                report.n_entries_survived += 1
            else:
                self._skyband_cache.pop(key)
                report.n_entries_evicted += 1
                self._mutation_salvage[key] = (tuple(filtered.option_ids), memo)
        while len(self._mutation_salvage) > max(1, self._skyband_cache.maxsize):
            self._mutation_salvage.pop(next(iter(self._mutation_salvage)))

        for key, result in self._result_cache.items():
            full_vertices = result.region.full_vertices()
            survives, n_tests = entry_survival(
                dataset,
                delta,
                key[0],
                full_vertices,
                result.filtered.option_ids,
                tol=self.tol,
                scores=region_scores(key[1], full_vertices) if delta.n_inserted else None,
            )
            report.n_dominance_tests += n_tests
            if survives:
                # Everything else the result holds (filtered subset, working
                # set, vertices, impact region) is self-contained; only the
                # full-dataset reference needs rebinding.
                result.dataset = dataset
                report.n_results_survived += 1
            else:
                self._result_cache.pop(key)
                report.n_results_evicted += 1
        return self._record_delta(report)

    def _record_delta(self, report: MutationReport) -> MutationReport:
        """Fold one delta's accounting into the engine-lifetime totals."""
        with self._counter_lock:
            self.n_deltas += 1
            self._mutation_totals.merge(report)
            self._last_mutation_report = report
        return report

    # ------------------------------------------------------------------ #
    # durable warm caches
    # ------------------------------------------------------------------ #
    def save_caches(self, path) -> Path:
        """Persist the warm cache state to ``path`` (versioned JSON snapshot).

        Captures every cached r-skyband entry (band membership, exact region
        vertices, vertex-score memo) and every cached result, array-exact,
        together with a digest of the bound dataset.  A replica restarted on
        the same dataset restores via :meth:`load_caches` and answers the
        snapshotted queries byte-identically, with first-query cache hits —
        see :mod:`repro.core.serialization` for the format.
        """
        from repro.core.serialization import save_engine_snapshot

        return save_engine_snapshot(self, path)

    def load_caches(self, path) -> dict:
        """Restore a :meth:`save_caches` snapshot into this engine's caches.

        The snapshot must have been taken against this engine's exact
        dataset content and ``prefilter`` mode; mismatches, truncated files
        and unknown schema versions raise
        :class:`~repro.exceptions.SerializationError`.  Returns the counts
        of restored entries (``skyband_entries``, ``result_entries``,
        ``memo_rows``).  Counters start fresh — only cache *contents* are
        durable.
        """
        from repro.core.serialization import load_engine_snapshot

        return load_engine_snapshot(self, path)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict:
        """Hit/miss/eviction counters of both caches plus the query count.

        ``mutations`` holds the engine-lifetime totals across every
        :meth:`apply_delta` call (``n_deltas``, survivor/eviction counts,
        dominance tests, salvaged memos, and the overall survivor rate).
        """
        with self._counter_lock:
            mutations = dict(self._mutation_totals.as_dict(), n_deltas=self.n_deltas)
        return {
            "n_queries": self.n_queries,
            "skyband": self._skyband_cache.info().as_dict(),
            "results": self._result_cache.info().as_dict(),
            "mutations": mutations,
        }

    def clear_caches(self) -> None:
        """Drop every cached intermediate (the bound affine form is kept).

        This includes the vertex-score memos attached to the r-skyband
        entries and the full-dataset memo of the ``prefilter=False`` path.
        """
        self._skyband_cache.clear()
        self._result_cache.clear()
        self._full_memo = None
        self._nofilter_workings.clear()
        self._mutation_salvage.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TopRREngine(dataset={self.dataset.name!r}, n={self.dataset.n_options}, "
            f"method={self.method!r}, queries={self.n_queries})"
        )
