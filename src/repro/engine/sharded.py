"""Process-parallel sharded serving: one engine per option partition.

:class:`ShardedEngine` is the session-scoped front end of the option-space
sharded path (:mod:`repro.core.sharded`).  It owns

* a **shard plan** (:func:`repro.data.sharding.plan_shards`) partitioning the
  bound dataset into ``n_shards`` disjoint option shards,
* one :class:`~repro.engine.engine.TopRREngine` **per shard**, bound to a
  zero-copy shard view of the parent matrix, each with its own r-skyband /
  result LRUs and vertex-score memos — per-shard filter results are cached
  and reused across queries exactly like the unsharded engine's,
* a **coordinator** :class:`~repro.engine.engine.TopRREngine` over the full
  dataset that holds the merged r-skyband entries and the result cache and
  runs the actual solve, and
* a lazily started **process pool** whose workers attach to the query's
  shared-memory score matrix (no array is ever pickled to a worker; tasks
  carry only segment names and shard-plan integers).

Life of a query: the coordinator computes the vertex-score matrix once,
fans the per-shard r-skyband out (pool tasks under ``executor="process"``,
in-process under ``"serial"``; shards whose engine already cached the
``(k, region)`` filter skip the fan-out), reconciles the per-shard
candidates into the exact global r-skyband
(:func:`repro.core.sharded.reconcile_candidates`), installs the merged
entry into the coordinator engine and delegates the solve to it.  Because
the solve runs the unmodified engine code on the bit-identical filtered
dataset, results are bit-identical to :class:`TopRREngine` /
:func:`~repro.core.toprr.solve_toprr` — asserted by
``tests/test_sharded_differential.py``.

The engine owns OS resources (worker processes); call :meth:`close` or use
it as a context manager.  Sharding always runs the r-skyband pre-filter —
it *is* the sharded stage — so ``prefilter=False`` has no sharded
counterpart (use :class:`TopRREngine` or
:mod:`repro.core.parallel` for unfiltered workloads).
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.resilient import (
    ResilienceConfig,
    ResilienceStats,
    SupervisedPool,
    SupervisedTask,
)
from repro.core.sharded import (
    SHARD_EXECUTORS,
    _shard_filter_task,
    reconcile_candidates,
    shard_skyband,
)
from repro.core.mutation import MutationDelta, MutationReport
from repro.core.toprr import SolverLike, TopRRResult
from repro.data.dataset import Dataset
from repro.data.sharding import SharedMatrix, ShardSpec, plan_shards, shard_dataset
from repro.engine.engine import TopRREngine
from repro.exceptions import EngineClosedError, InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import vertex_score_matrix
from repro.utils.rng import RngLike
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Count of pool shutdowns that failed inside :meth:`ShardedEngine.__del__`
#: (surfaced through :meth:`ShardedEngine.pool_health` as
#: ``n_close_failures`` so the condition is observable, not swallowed).
_CLOSE_FAILURES = 0
_WARNED_CLOSE_FAILURE = False


def _note_close_failure(exc: BaseException) -> None:
    """Count a ``__del__``-time shutdown failure; warn the first time only."""
    global _CLOSE_FAILURES, _WARNED_CLOSE_FAILURE
    _CLOSE_FAILURES += 1
    if _WARNED_CLOSE_FAILURE:
        return
    _WARNED_CLOSE_FAILURE = True
    try:
        warnings.warn(
            f"ShardedEngine failed to shut its worker pool down during garbage "
            f"collection: {exc!r}. Further occurrences are counted in "
            f"pool_health()['n_close_failures'] without warning again; call "
            f"close() (or use the engine as a context manager) to shut pools "
            f"down deterministically.",
            RuntimeWarning,
            stacklevel=3,
        )
    except Exception:  # pragma: no cover - warnings machinery gone at shutdown
        pass


class ShardedEngine:
    """Serve TopRR queries with a process-parallel sharded pre-filter.

    Parameters
    ----------
    dataset:
        The option dataset ``D`` this engine serves.
    n_shards:
        Number of disjoint option shards.
    strategy:
        ``"contiguous"`` (zero-copy row ranges) or ``"hash"`` (stable
        splitmix64 assignment), see :mod:`repro.data.sharding`.
    executor:
        ``"process"`` (default): one pool task per shard, workers attach to
        the query's shared-memory score matrix.  ``"serial"``: identical
        per-shard code, run in-process (testing / single-core fallback).
    n_workers:
        Process-pool size; defaults to ``n_shards`` capped at the CPU count.
    method, clip_to_unit_box, option_bounds, rng, tol:
        As in :class:`~repro.engine.engine.TopRREngine`.
    skyband_cache_size, result_cache_size:
        Bounds of the coordinator's merged r-skyband LRU and result LRU.
        The merged skyband cache is clamped to at least one entry — the
        sharded filter installs its result there for the delegated solve to
        pick up.
    shard_cache_size:
        Bound of each per-shard engine's r-skyband LRU.
    shard_timeout:
        Per-batch deadline (seconds) for pool shard tasks; expiry marks
        still-running tasks as hung, abandons the pool and retries them on
        a fresh one.  ``None`` (default) waits indefinitely.
    shard_retries:
        Re-submissions allowed per shard task after its first failure
        (see :class:`~repro.core.resilient.ResilienceConfig`).
    shard_fallback:
        Run unrecoverable shard tasks serially in-process — bit-identical
        results, the query degrades instead of failing (the default).
        ``False`` raises :class:`~repro.exceptions.ShardExecutionError`.

    Examples
    --------
    >>> from repro.data.generators import generate_independent
    >>> from repro.preference.region import PreferenceRegion
    >>> region = PreferenceRegion.hyperrectangle([(0.3, 0.35), (0.3, 0.35)])
    >>> with ShardedEngine(generate_independent(5_000, 3, rng=1), n_shards=4) as engine:
    ...     result = engine.query(5, region)
    """

    def __init__(
        self,
        dataset: Dataset,
        n_shards: int = 4,
        strategy: str = "contiguous",
        executor: str = "process",
        n_workers: Optional[int] = None,
        method: SolverLike = "tas*",
        clip_to_unit_box: bool = True,
        option_bounds: Optional[tuple] = None,
        rng: RngLike = 0,
        tol: Tolerance = DEFAULT_TOL,
        skyband_cache_size: int = 128,
        result_cache_size: int = 64,
        shard_cache_size: int = 32,
        shard_timeout: Optional[float] = None,
        shard_retries: int = 2,
        shard_fallback: bool = True,
    ):
        if executor not in SHARD_EXECUTORS:
            raise InvalidParameterError(
                f"unknown executor {executor!r}; expected one of {SHARD_EXECUTORS}"
            )
        self.dataset = dataset
        self.executor = executor
        self.tol = tol
        self.plan: List[ShardSpec] = plan_shards(dataset.n_options, n_shards, strategy)
        self.n_shards = len(self.plan)
        self.strategy = strategy
        self.n_workers = int(n_workers or min(self.n_shards, os.cpu_count() or 1))
        if self.n_workers <= 0:
            raise InvalidParameterError(f"n_workers must be positive, got {self.n_workers}")
        self._coordinator = TopRREngine(
            dataset,
            method=method,
            prefilter=True,
            clip_to_unit_box=clip_to_unit_box,
            option_bounds=option_bounds,
            rng=rng,
            tol=tol,
            skyband_cache_size=max(1, skyband_cache_size),
            result_cache_size=result_cache_size,
        )
        self._shard_cache_size = int(shard_cache_size)
        self._shard_engines: Optional[List[TopRREngine]] = None
        self._shard_positions: List[Optional[np.ndarray]] = [None] * self.n_shards
        self.resilience = ResilienceConfig(
            timeout=shard_timeout, max_retries=shard_retries, fallback=shard_fallback
        )
        self._supervisor: Optional[SupervisedPool] = None
        self._lock = threading.Lock()
        self._closed = False
        self.n_queries = 0

    # ------------------------------------------------------------------ #
    # owned structure
    # ------------------------------------------------------------------ #
    @property
    def method(self) -> SolverLike:
        """Default solver of this engine (held by the coordinator)."""
        return self._coordinator.method

    def cached_result(self, k: int, region: PreferenceRegion, method) -> Optional[TopRRResult]:
        """Pure result-cache peek (coordinator's cache); never fans out.

        Mirrors :meth:`TopRREngine.cached_result`; usable on a closed engine
        like the other cache introspection.
        """
        return self._coordinator.cached_result(k, region, method)

    @property
    def shard_engines(self) -> List[Optional[TopRREngine]]:
        """The per-shard engines (built lazily: zero-copy views per shard).

        Shards with no rows — possible when ``n_shards > n_options`` — have
        no engine (``None``); they contribute no candidates and no work.
        """
        with self._lock:
            if self._shard_engines is None:
                self._shard_engines = [
                    TopRREngine(
                        shard_dataset(self.dataset, spec),
                        method=self._coordinator.method,
                        prefilter=True,
                        rng=self._coordinator.rng,
                        tol=self.tol,
                        skyband_cache_size=self._shard_cache_size,
                        result_cache_size=0,
                    )
                    if spec.n_rows > 0
                    else None
                    for spec in self.plan
                ]
            return self._shard_engines

    def _positions(self, shard_id: int) -> np.ndarray:
        """Parent positional indices of one shard (computed once)."""
        if self._shard_positions[shard_id] is None:
            self._shard_positions[shard_id] = self.plan[shard_id].positions()
        return self._shard_positions[shard_id]

    def _check_open(self, operation: str) -> None:
        """Raise :class:`EngineClosedError` once :meth:`close` has run.

        Every entry point that could (re)create or consult the worker pool
        is guarded: a lazily respawned pool after ``close()`` would leak
        workers past the caller's lifecycle.  Pure cache introspection
        (``cache_info``, ``clear_caches``, ``save_caches``, a second
        ``close()``) intentionally stays usable.
        """
        if self._closed:
            raise EngineClosedError(
                f"cannot {operation} on a closed ShardedEngine; create a new "
                "engine (close() shut the worker pool down for good)"
            )

    def _ensure_supervisor(self) -> SupervisedPool:
        """The lazily created supervised pool (``executor="process"`` only)."""
        with self._lock:
            if self._closed:
                raise EngineClosedError(
                    "cannot start a worker pool on a closed ShardedEngine"
                )
            if self._supervisor is None:
                self._supervisor = SupervisedPool(self.n_workers, self.resilience)
            return self._supervisor

    # ------------------------------------------------------------------ #
    # the sharded pre-filter
    # ------------------------------------------------------------------ #
    def _sharded_prefilter(self, k: int, region: PreferenceRegion) -> dict:
        """Run the sharded r-skyband for ``(k, region)`` and install the result.

        Returns the per-query shard bookkeeping that :meth:`query` folds
        into the result's :class:`~repro.core.stats.SolverStats`.  When the
        coordinator already holds the merged entry, the fan-out is skipped
        entirely.
        """
        if self._coordinator.cached_skyband(k, region) is not None:
            return {"merged_cache_hit": True}

        timer = Timer().start()
        scores = vertex_score_matrix(self.dataset, region)
        engines = self.shard_engines

        candidates: List[Optional[np.ndarray]] = [None] * self.n_shards
        shard_seconds: List[float] = [0.0] * self.n_shards
        shard_hits = 0
        missing: List[int] = []
        for shard_id, engine in enumerate(engines):
            if engine is None:  # empty shard: nothing to filter
                candidates[shard_id] = np.empty(0, dtype=int)
                continue
            entry = engine.cached_skyband(k, region)
            if entry is not None:
                # Shard datasets carry parent positions as option ids.
                candidates[shard_id] = np.asarray(entry[0].option_ids, dtype=int)
                shard_hits += 1
            else:
                missing.append(shard_id)

        resilience: Optional[ResilienceStats] = None
        if missing and self.executor == "process":
            supervisor = self._ensure_supervisor()

            def serial_fallback(spec):
                """In-process re-run of one shard (pure; bit-identical result)."""
                started = time.perf_counter()
                kept = shard_skyband(scores, spec, k, tol=self.tol)
                return spec.shard_id, kept, time.perf_counter() - started

            with SharedMatrix.create_from(scores) as shared:
                tasks = [
                    SupervisedTask(
                        key=shard_id,
                        fn=_shard_filter_task,
                        args=(shared.spec, self.plan[shard_id], k, self.tol),
                        fallback=lambda spec=self.plan[shard_id]: serial_fallback(spec),
                    )
                    for shard_id in missing
                ]
                results, resilience = supervisor.run(tasks)
            for shard_id in missing:
                _, kept_parent, seconds = results[shard_id]
                candidates[shard_id] = kept_parent
                shard_seconds[shard_id] = seconds
        else:
            for shard_id in missing:
                piece = Timer().start()
                candidates[shard_id] = shard_skyband(scores, self.plan[shard_id], k, tol=self.tol)
                shard_seconds[shard_id] = piece.stop()

        for shard_id in missing:
            kept_parent = candidates[shard_id]
            bounds = self.plan[shard_id].bounds()
            if bounds is not None:
                kept_local = kept_parent - bounds[0]
            else:
                kept_local = np.searchsorted(self._positions(shard_id), kept_parent)
            engines[shard_id].install_skyband(k, region, kept_local)
        filter_seconds = timer.stop()

        merge_timer = Timer().start()
        kept = reconcile_candidates(scores, candidates, k, tol=self.tol)
        self._coordinator.install_skyband(k, region, kept)
        merge_seconds = merge_timer.stop()

        return {
            "merged_cache_hit": False,
            "filter_seconds": filter_seconds,
            "merge_seconds": merge_seconds,
            "shard_seconds": shard_seconds,
            "shard_candidates": [int(c.shape[0]) for c in candidates],
            "shard_cache_hits": shard_hits,
            "n_candidates": int(sum(c.shape[0] for c in candidates)),
            "resilience": resilience,
        }

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        k: int,
        region: PreferenceRegion,
        method: Optional[SolverLike] = None,
        use_cache: bool = True,
    ) -> TopRRResult:
        """Solve one TopRR query through the sharded pre-filter.

        Contract-identical to :meth:`TopRREngine.query` — and bit-identical
        in output, because the solve is delegated to the coordinator engine
        on the exact global r-skyband the shards reconciled to.  The result
        stats additionally record ``n_shards``, ``merge_seconds`` and the
        per-shard filter timings (``extra["shard_seconds"]``).
        """
        self._check_open("query")
        self._coordinator._validate(k, region)
        with self._lock:
            self.n_queries += 1
        resolved = self._coordinator.method if method is None else method
        if use_cache:
            cached = self._coordinator.cached_result(k, region, resolved)
            if cached is not None:
                return cached

        info = self._sharded_prefilter(k, region)
        result = self._coordinator.query(k, region, method=method, use_cache=use_cache)

        stats = result.stats
        stats.n_shards = self.n_shards
        stats.extra["shard_strategy"] = self.strategy
        stats.extra["shard_executor"] = self.executor
        stats.extra["skyband_cache_hit"] = bool(info["merged_cache_hit"])
        if not info["merged_cache_hit"]:
            stats.merge_seconds = info["merge_seconds"]
            stats.extra["shard_filter_seconds"] = info["filter_seconds"]
            stats.extra["shard_seconds"] = info["shard_seconds"]
            stats.extra["shard_candidates"] = info["shard_candidates"]
            stats.extra["shard_cache_hits"] = info["shard_cache_hits"]
            stats.extra["n_candidates"] = info["n_candidates"]
            resilience = info.get("resilience")
            if resilience is not None:
                stats.n_retries = resilience.n_retries
                stats.n_worker_crashes = resilience.n_worker_crashes
                stats.n_pool_rebuilds = resilience.n_pool_rebuilds
                stats.n_degraded_shards = resilience.n_degraded_tasks
                stats.degraded = resilience.degraded
                if resilience.events:
                    stats.extra["resilience_events"] = list(resilience.events)
        return result

    def query_batch(
        self,
        queries: Iterable[Union[Tuple[int, PreferenceRegion], Sequence]],
        method: Optional[SolverLike] = None,
        use_cache: bool = True,
    ) -> List[TopRRResult]:
        """Answer many ``(k, region)`` queries in input order.

        Queries run serially through :meth:`query`; the parallelism of this
        engine lives *inside* each query (across option shards), which is
        the right axis for CPU-bound work on one large catalogue.
        """
        self._check_open("query_batch")
        return [(self.query(int(k), region, method=method, use_cache=use_cache)) for k, region in queries]

    def warm(self, ks: Iterable[int], regions: Iterable[PreferenceRegion]) -> int:
        """Precompute the sharded r-skyband for every ``(k, region)`` pair.

        Returns the number of combinations actually filtered (merged-cache
        hits are skipped), mirroring :meth:`TopRREngine.warm`.
        """
        self._check_open("warm")
        regions = list(regions)
        computed = 0
        for k in ks:
            for region in regions:
                self._coordinator._validate(k, region)
                info = self._sharded_prefilter(k, region)
                if not info["merged_cache_hit"]:
                    computed += 1
        return computed

    # ------------------------------------------------------------------ #
    # mutation maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, dataset: Dataset, delta: MutationDelta) -> MutationReport:
        """Rebind the sharded engine to a mutated dataset.

        The coordinator engine — which owns the merged r-skyband entries and
        the result cache, i.e. everything that short-circuits the shard
        fan-out — runs the incremental survival test
        (:meth:`TopRREngine.apply_delta`).  The shard plan is then re-planned
        for the new option count (positions shift on delete, contiguous
        bounds grow on insert, shards may become empty or non-empty) and the
        per-shard engines are dropped for lazy rebuild: their stale
        parent-position mappings must never be consulted again, which
        :func:`~repro.data.sharding.shard_dataset`'s spec guard enforces.
        The worker pool is kept — workers are stateless between queries.
        Returns the coordinator's survivor/eviction accounting.
        """
        self._check_open("apply_delta")
        report = self._coordinator.apply_delta(dataset, delta)
        with self._lock:
            self.dataset = dataset
            self.plan = plan_shards(dataset.n_options, self.n_shards, self.strategy)
            self._shard_engines = None
            self._shard_positions = [None] * self.n_shards
        return report

    # ------------------------------------------------------------------ #
    # introspection and lifecycle
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict:
        """Coordinator (merged + result) and per-shard cache counters."""
        info = {
            "n_queries": self.n_queries,
            "merged": self._coordinator.cache_info(),
            "shards": [],
        }
        if self._shard_engines is not None:
            info["shards"] = [
                engine.cache_info() if engine is not None else None
                for engine in self._shard_engines
            ]
        return info

    def clear_caches(self) -> None:
        """Drop every cached intermediate on the coordinator and all shards."""
        self._coordinator.clear_caches()
        if self._shard_engines is not None:
            for engine in self._shard_engines:
                if engine is not None:
                    engine.clear_caches()

    def pool_health(self) -> dict:
        """Live pool state plus lifetime supervision counters.

        ``alive`` reports whether a (presumed healthy) pool currently
        exists; the counters (``n_retries``, ``n_worker_crashes``,
        ``n_pool_rebuilds``, ``n_degraded_tasks``, ``n_batches``, ...) are
        lifetime totals across every batch this engine ran.
        ``n_close_failures`` counts module-wide pool shutdowns that failed
        during garbage collection (see the warn-once in ``__del__``).
        Raises :class:`EngineClosedError` after :meth:`close` — there is no
        pool whose health could be reported, and "alive: False" would be
        indistinguishable from a merely not-yet-started pool.
        """
        self._check_open("pool_health")
        with self._lock:
            supervisor = self._supervisor
        if supervisor is None:
            health = dict(
                {"alive": False, "n_workers": self.n_workers, "n_batches": 0},
                **ResilienceStats().as_dict(),
            )
        else:
            health = supervisor.health()
        health["executor"] = self.executor
        health["n_close_failures"] = _CLOSE_FAILURES
        return health

    def save_caches(self, path):
        """Persist the coordinator's warm caches (merged skyband + results).

        Delegates to :meth:`TopRREngine.save_caches`; the per-shard engines'
        caches are *not* captured — they only accelerate the fan-out, and a
        restored replica rebuilds them lazily from the merged entries.
        Allowed on a closed engine (pure cache read, no pool involved).
        """
        return self._coordinator.save_caches(path)

    def load_caches(self, path) -> dict:
        """Restore a snapshot into the coordinator's caches (engine must be open).

        A restored merged r-skyband entry short-circuits the whole shard
        fan-out for its ``(k, region)``, so a warm-restored sharded replica
        answers snapshotted queries without touching the pool.
        """
        self._check_open("load_caches")
        return self._coordinator.load_caches(path)

    def close(self) -> None:
        """Shut the worker pool down for good (idempotent).

        After ``close()`` the engine is terminal: ``query`` / ``warm`` /
        ``apply_delta`` / ``pool_health`` / ``load_caches`` raise
        :class:`EngineClosedError` instead of silently respawning a pool,
        while ``cache_info`` / ``clear_caches`` / ``save_caches`` and a
        second ``close()`` stay usable.
        """
        with self._lock:
            self._closed = True
            supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        if getattr(self, "_lock", None) is None:
            return  # the constructor raised before the engine owned resources
        try:
            self.close()
        except (OSError, RuntimeError) as exc:
            # Everything close() legitimately raises at interpreter shutdown
            # (dead queue fds, executor internals already collected).  Other
            # exception types would be real bugs — let them surface instead
            # of swallowing them.
            _note_close_failure(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedEngine(dataset={self.dataset.name!r}, n={self.dataset.n_options}, "
            f"shards={self.n_shards}x{self.strategy}, executor={self.executor!r}, "
            f"queries={self.n_queries})"
        )
