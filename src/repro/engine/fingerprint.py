"""Hashable fingerprints for cache keys.

A preference region is fingerprinted by its defining vertices (rounded and
lexicographically sorted), so two regions describing the same polytope hash
identically even when their halfspace representations differ (e.g. one
carries redundant constraints).  Because 2-D and 3-D vertex enumeration is
*canonical* across geometry backends (facet-snapped coordinates in a fixed
order — see :func:`repro.geometry.vertex_enum.canonicalize_polygon_vertices`
and :func:`repro.geometry.vertex_enum.canonicalize_polyhedron_vertices`),
fingerprints are also backend-independent: a region built under
``use_backend("qhull")`` hits cache entries populated by the polygon or
polyhedron backend and vice versa.  Datasets are fingerprinted by identity plus
shape — engines are bound to one dataset, so this only guards against
accidental cross-engine key reuse.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.preference.region import PreferenceRegion


def region_fingerprint(region: PreferenceRegion, decimals: int = 10) -> Tuple:
    """A hashable fingerprint of a preference region (rounded sorted vertices)."""
    vertices = np.round(np.asarray(region.vertices, dtype=float), decimals)
    # Avoid -0.0 vs 0.0 hashing apart after rounding.
    vertices = vertices + 0.0
    order = np.lexsort(vertices.T[::-1]) if vertices.size else np.arange(0)
    return tuple(map(tuple, vertices[order]))
