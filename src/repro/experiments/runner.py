"""Measurement runner: execute TopRR methods on workloads and aggregate statistics.

Workloads are served through a per-dataset :class:`repro.engine.TopRREngine`
so that the dataset's affine score form is bound once per dataset rather
than recomputed per query.  Both LRU caches are disabled — the runner's job
is to *measure* solving, and serving a repeated workload from cache would
report the lookup, not the solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine import TopRREngine
from repro.experiments.workloads import Workload
from repro.utils.timer import Timer

#: Method labels in the order the paper's figures list them.
METHOD_ORDER = ["PAC", "TAS", "TAS*"]

_METHOD_KEYS = {"PAC": "pac", "TAS": "tas", "TAS*": "tas*"}


@dataclass
class Measurement:
    """Aggregated outcome of running one method on a set of workloads."""

    method: str
    seconds: float
    n_vertices: float
    n_filtered: float
    n_splits: float
    per_query: List[dict] = field(default_factory=list)

    def as_row(self) -> dict:
        """Flat dictionary for tabular reporting."""
        return {
            "method": self.method,
            "seconds": self.seconds,
            "n_vertices": self.n_vertices,
            "n_filtered": self.n_filtered,
            "n_splits": self.n_splits,
        }


def _measurement_engine(dataset, engines: Dict[int, TopRREngine]) -> TopRREngine:
    """One cache-less engine per distinct workload dataset (affine form bound once)."""
    engine = engines.get(id(dataset))
    if engine is None:
        engine = TopRREngine(dataset, skyband_cache_size=0, result_cache_size=0)
        engines[id(dataset)] = engine
    return engine


def run_method(
    method: str,
    workloads: Sequence[Workload],
    solver=None,
) -> Measurement:
    """Run ``method`` (or an explicit solver) on every workload and average the results."""
    rows = []
    engines: Dict[int, TopRREngine] = {}
    for workload in workloads:
        engine = _measurement_engine(workload.dataset, engines)
        timer = Timer().start()
        result = engine.query(
            workload.k,
            workload.region,
            method=solver if solver is not None else _METHOD_KEYS.get(method, method),
        )
        seconds = timer.stop()
        rows.append(
            {
                "seconds": seconds,
                "n_vertices": result.n_vertices,
                "n_filtered": result.filtered.n_options,
                "n_splits": result.stats.n_splits,
                "volume": result.volume(),
            }
        )
    return Measurement(
        method=method,
        seconds=float(np.mean([r["seconds"] for r in rows])),
        n_vertices=float(np.mean([r["n_vertices"] for r in rows])),
        n_filtered=float(np.mean([r["n_filtered"] for r in rows])),
        n_splits=float(np.mean([r["n_splits"] for r in rows])),
        per_query=rows,
    )


def run_methods(
    methods: Sequence[str],
    workloads: Sequence[Workload],
    solvers: Optional[Dict[str, object]] = None,
) -> Dict[str, Measurement]:
    """Run several methods on the same workloads (the per-figure comparison primitive)."""
    solvers = solvers or {}
    return {
        method: run_method(method, workloads, solver=solvers.get(method)) for method in methods
    }
