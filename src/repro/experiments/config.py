"""Experiment parameters (Table 5 of the paper) and their scaled-down variants.

The paper's defaults are ``n = 400k``, ``d = 4``, ``k = 10``, ``sigma = 1%``
on IND data.  A pure-Python reproduction cannot run the C++-scale sweeps in
interactive time, so three *scales* are provided:

* ``Scale.PAPER``   — the paper's exact parameter grid (long-running),
* ``Scale.SCALED``  — the default: same grid shape with smaller cardinalities
  and dimensionalities, preserving the relative comparisons,
* ``Scale.SMOKE``   — tiny instances used by the test suite and CI-style runs.

All experiment entry points (``repro.experiments.figures``) and benchmark
targets accept a scale and read everything else from here, so the whole
evaluation is parameterised in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.exceptions import InvalidParameterError


class Scale(str, Enum):
    """Workload scale for the experiment harness."""

    SMOKE = "smoke"
    SCALED = "scaled"
    PAPER = "paper"

    @classmethod
    def parse(cls, value) -> "Scale":
        """Coerce a string (or Scale) into a :class:`Scale` member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            raise InvalidParameterError(
                f"unknown scale {value!r}; expected one of {[s.value for s in cls]}"
            ) from exc


@dataclass(frozen=True)
class Defaults:
    """Default (non-varied) parameter values, per scale."""

    n_options: int
    n_attributes: int
    k: int
    sigma: float
    distribution: str
    n_queries: int
    seed: int


#: Default parameter values per scale.  The bold entries of Table 5 are
#: k = 10, sigma = 1%, d = 4 (IND); the paper's default n is 0.4M.
DEFAULTS: Dict[Scale, Defaults] = {
    Scale.SMOKE: Defaults(
        n_options=2_000, n_attributes=3, k=5, sigma=0.02, distribution="IND", n_queries=2, seed=7
    ),
    Scale.SCALED: Defaults(
        n_options=50_000, n_attributes=4, k=10, sigma=0.01, distribution="IND", n_queries=5, seed=7
    ),
    Scale.PAPER: Defaults(
        n_options=400_000, n_attributes=4, k=10, sigma=0.01, distribution="IND", n_queries=50, seed=7
    ),
}

#: Parameter sweeps per scale (Table 5: tested values of each parameter).
_SWEEPS: Dict[Scale, Dict[str, List]] = {
    Scale.PAPER: {
        "k": [1, 5, 10, 20, 40],
        "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
        "n_options": [100_000, 200_000, 400_000, 800_000, 1_600_000],
        "n_attributes": [2, 4, 6, 8, 10, 12],
        "distribution": ["COR", "IND", "ANTI"],
        "gamma": [0.25, 0.5, 1.0, 2.0, 4.0],
    },
    Scale.SCALED: {
        "k": [1, 5, 10, 20, 40],
        "sigma": [0.001, 0.005, 0.01, 0.05, 0.10],
        "n_options": [10_000, 20_000, 40_000, 80_000, 160_000],
        "n_attributes": [2, 3, 4, 5, 6],
        "distribution": ["COR", "IND", "ANTI"],
        "gamma": [0.25, 0.5, 1.0, 2.0, 4.0],
    },
    Scale.SMOKE: {
        "k": [1, 3, 5],
        "sigma": [0.01, 0.05],
        "n_options": [1_000, 2_000],
        "n_attributes": [2, 3, 4],
        "distribution": ["COR", "IND", "ANTI"],
        "gamma": [0.5, 1.0, 2.0],
    },
}

#: Real-dataset labels used by Figure 11 and Table 6.
REAL_DATASETS = ["HOTEL", "HOUSE", "NBA"]


def sweep_values(parameter: str, scale: Scale = Scale.SCALED) -> List:
    """Tested values of ``parameter`` at the given scale (Table 5)."""
    scale = Scale.parse(scale)
    sweeps = _SWEEPS[scale]
    if parameter not in sweeps:
        raise InvalidParameterError(
            f"unknown sweep parameter {parameter!r}; expected one of {sorted(sweeps)}"
        )
    return list(sweeps[parameter])


def defaults(scale: Scale = Scale.SCALED) -> Defaults:
    """Default parameter bundle at the given scale."""
    return DEFAULTS[Scale.parse(scale)]
