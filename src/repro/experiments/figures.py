"""One runner per table and figure of the paper's evaluation (Section 6).

Every runner returns a list of flat row dictionaries — the same rows/series
the corresponding figure or table plots — and can be rendered with
:func:`repro.experiments.reporting.format_table`.  The registry
:data:`EXPERIMENTS` maps experiment identifiers (``"fig9a"``, ``"table6"``,
...) to their runner so that the CLI and the benchmark suite can address them
uniformly.

The paper's absolute numbers were measured with a C++ implementation on
million-option datasets; the runners therefore accept a ``scale`` argument
(see :mod:`repro.experiments.config`) and the comparisons of interest are the
*relative* ones (which method wins, how quantities grow with each parameter).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.kipr import WorkingSet, consistent_top_lambda, region_profiles
from repro.core.placement import cheapest_new_option, cost_saving_vs_competitors
from repro.core.tas_star import TASStarSolver
from repro.core.toprr import solve_toprr
from repro.data.surrogates import cnet_laptops
from repro.experiments.config import REAL_DATASETS, Scale, defaults, sweep_values
from repro.experiments.runner import METHOD_ORDER, run_method, run_methods
from repro.experiments.workloads import make_dataset, make_queries, make_real_dataset
from repro.preference.region import PreferenceRegion
from repro.pruning.comparison import compare_filters
from repro.pruning.rskyband import r_skyband


# --------------------------------------------------------------------------- #
# Section 6.2 — case study (Figure 7)
# --------------------------------------------------------------------------- #
def figure7_case_study(scale: Scale = Scale.SCALED, k: int = 3) -> List[dict]:
    """Figure 7: introducing a new laptop for two target clienteles.

    For each target preference region the row reports the cost-optimal
    placement inside ``oR`` (performance/battery ratings), its manufacturing
    cost under the summed-squares model, and the cost saving against existing
    laptops that are already top-ranking (the paper reports 18.6%-27.1% and
    7.2%-27.1% for the two scenarios).
    """
    dataset = cnet_laptops()
    rows = []
    for label, interval in (("designers wR=[0.7,0.8]", (0.7, 0.8)), ("business wR=[0.1,0.2]", (0.1, 0.2))):
        region = PreferenceRegion.interval(*interval)
        result = solve_toprr(dataset, k=k, region=region)
        placement = cheapest_new_option(result)
        saving_min, saving_max = cost_saving_vs_competitors(result, placement)
        rows.append(
            {
                "scenario": label,
                "k": k,
                "optimal_performance": round(float(placement.option[0]), 3),
                "optimal_battery": round(float(placement.option[1]), 3),
                "cost": round(placement.cost, 4),
                "n_competitors_in_oR": int(result.existing_top_ranking_options().size),
                "saving_min_pct": round(100 * saving_min, 1),
                "saving_max_pct": round(100 * saving_max, 1),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Section 6.3 — filter trade-offs (Figure 8)
# --------------------------------------------------------------------------- #
def figure8_filter_tradeoff(scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 8: retained options vs time for the four candidate pre-filters."""
    scale = Scale.parse(scale)
    base = defaults(scale)
    dataset = make_dataset(scale)
    queries = make_queries(scale, dataset=dataset, n_queries=1)
    comparison = compare_filters(dataset, base.k, queries[0].region)
    rows = comparison.rows()
    for row in rows:
        row["dataset"] = dataset.name
        row["k"] = base.k
    return rows


# --------------------------------------------------------------------------- #
# Section 6.4 — method comparison (Figure 9) and TAS* robustness (Figures 10, 11)
# --------------------------------------------------------------------------- #
_VARY_TO_KWARG = {
    "k": "k",
    "sigma": "sigma",
    "n": "n_options",
    "d": "n_attributes",
}


def _sweep_parameter(vary: str, scale: Scale) -> List:
    parameter = {"k": "k", "sigma": "sigma", "n": "n_options", "d": "n_attributes"}[vary]
    return sweep_values(parameter, scale)


def figure9_methods(vary: str, scale: Scale = Scale.SCALED, methods=None) -> List[dict]:
    """Figure 9(a-d): PAC vs TAS vs TAS* while varying ``k``, ``sigma``, ``n`` or ``d``."""
    scale = Scale.parse(scale)
    methods = list(methods) if methods is not None else list(METHOD_ORDER)
    rows = []
    kwarg = _VARY_TO_KWARG[vary]
    shared_dataset = make_dataset(scale) if vary in ("k", "sigma") else None
    for value in _sweep_parameter(vary, scale):
        queries = make_queries(scale, dataset=shared_dataset, **{kwarg: value})
        measurements = run_methods(methods, queries)
        for method in methods:
            measurement = measurements[method]
            rows.append(
                {
                    "vary": vary,
                    vary: value,
                    "method": method,
                    "seconds": measurement.seconds,
                    "n_vertices": measurement.n_vertices,
                    "n_filtered": measurement.n_filtered,
                }
            )
    return rows


def figure10_distributions(vary: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 10(a-d): TAS* on COR/IND/ANTI data while varying ``k``, ``sigma``, ``n`` or ``d``."""
    scale = Scale.parse(scale)
    rows = []
    kwarg = _VARY_TO_KWARG[vary]
    for distribution in sweep_values("distribution", scale):
        shared_dataset = (
            make_dataset(scale, distribution=distribution) if vary in ("k", "sigma") else None
        )
        for value in _sweep_parameter(vary, scale):
            queries = make_queries(
                scale, distribution=distribution, dataset=shared_dataset, **{kwarg: value}
            )
            measurement = run_method("TAS*", queries)
            rows.append(
                {
                    "vary": vary,
                    "distribution": distribution,
                    vary: value,
                    "seconds": measurement.seconds,
                    "n_vertices": measurement.n_vertices,
                    "n_filtered": measurement.n_filtered,
                }
            )
    return rows


def figure11_real(vary: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 11(a, b): TAS* on the real-dataset surrogates while varying ``k`` or ``sigma``."""
    scale = Scale.parse(scale)
    if vary not in ("k", "sigma"):
        raise ValueError("figure 11 varies only k or sigma")
    rows = []
    for name in REAL_DATASETS:
        dataset = make_real_dataset(name, scale)
        for value in _sweep_parameter(vary, scale):
            queries = make_queries(scale, dataset=dataset, **{_VARY_TO_KWARG[vary]: value})
            measurement = run_method("TAS*", queries)
            rows.append(
                {
                    "dataset": name,
                    vary: value,
                    "seconds": measurement.seconds,
                    "n_vertices": measurement.n_vertices,
                    "n_filtered": measurement.n_filtered,
                }
            )
    return rows


def table6_real_vs_synthetic(scale: Scale = Scale.SCALED) -> List[dict]:
    """Table 6: TAS* on each real dataset vs COR/IND/ANTI of the same cardinality and d."""
    scale = Scale.parse(scale)
    rows = []
    for name in REAL_DATASETS:
        real = make_real_dataset(name, scale)
        row = {
            "dataset": name,
            "n": real.n_options,
            "d": real.n_attributes,
        }
        for distribution in ("COR", "IND", "ANTI"):
            synthetic = make_dataset(
                scale,
                distribution=distribution,
                n_options=real.n_options,
                n_attributes=real.n_attributes,
            )
            queries = make_queries(scale, dataset=synthetic)
            row[f"{distribution.lower()}_seconds"] = run_method("TAS*", queries).seconds
        queries = make_queries(scale, dataset=real)
        row["real_seconds"] = run_method("TAS*", queries).seconds
        rows.append(row)
    return rows


def table7_elongation(scale: Scale = Scale.SCALED) -> List[dict]:
    """Table 7: effect of the wR elongation factor gamma on TAS* (real-dataset surrogates)."""
    scale = Scale.parse(scale)
    rows = []
    for gamma in sweep_values("gamma", scale):
        row = {"gamma": gamma}
        for name in REAL_DATASETS:
            dataset = make_real_dataset(name, scale)
            queries = make_queries(scale, dataset=dataset, gamma=gamma)
            row[f"{name.lower()}_seconds"] = run_method("TAS*", queries).seconds
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Section 6.5 — effect of the individual optimizations (Figures 12-14)
# --------------------------------------------------------------------------- #
def _lemma5_retained(dataset, k, region) -> tuple:
    """(r-skyband size, r-skyband + Lemma 5 size) for one query."""
    kept = r_skyband(dataset, k, region)
    filtered = dataset.subset(kept)
    working = WorkingSet.from_dataset(filtered, k)
    profiles = region_profiles(working, region)
    lam, _phi = consistent_top_lambda(profiles, working.k)
    return len(kept), len(kept) - lam


def figure12_lemma5(vary: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 12(a, b): retained options, r-skyband alone vs r-skyband + Lemma 5."""
    scale = Scale.parse(scale)
    if vary not in ("k", "sigma"):
        raise ValueError("figure 12 varies only k or sigma")
    rows = []
    dataset = make_dataset(scale)
    for value in _sweep_parameter(vary, scale):
        queries = make_queries(scale, dataset=dataset, **{_VARY_TO_KWARG[vary]: value})
        sizes = [_lemma5_retained(q.dataset, q.k, q.region) for q in queries]
        rows.append(
            {
                vary: value,
                "r_skyband": float(np.mean([s[0] for s in sizes])),
                "r_skyband_lemma5": float(np.mean([s[1] for s in sizes])),
            }
        )
    return rows


def _vall_with_solver(queries, solver) -> float:
    return run_method(solver.name, queries, solver=solver).n_vertices


def figure13_lemma7(vary: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 13(a, b): |V_all| with the Lemma 7 optimized test enabled vs disabled."""
    scale = Scale.parse(scale)
    if vary not in ("k", "sigma"):
        raise ValueError("figure 13 varies only k or sigma")
    rows = []
    dataset = make_dataset(scale)
    for value in _sweep_parameter(vary, scale):
        queries = make_queries(scale, dataset=dataset, **{_VARY_TO_KWARG[vary]: value})
        enabled = _vall_with_solver(queries, TASStarSolver(use_lemma7=True))
        disabled = _vall_with_solver(queries, TASStarSolver(use_lemma7=False))
        rows.append({vary: value, "lemma7_enabled": enabled, "lemma7_disabled": disabled})
    return rows


def figure14_kswitch(vary: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Figure 14(a, b): |V_all| with the k-switch splitting strategy enabled vs disabled."""
    scale = Scale.parse(scale)
    if vary not in ("k", "sigma"):
        raise ValueError("figure 14 varies only k or sigma")
    rows = []
    dataset = make_dataset(scale)
    for value in _sweep_parameter(vary, scale):
        queries = make_queries(scale, dataset=dataset, **{_VARY_TO_KWARG[vary]: value})
        enabled = _vall_with_solver(queries, TASStarSolver(use_k_switch=True))
        disabled = _vall_with_solver(queries, TASStarSolver(use_k_switch=False))
        rows.append({vary: value, "k_switch_enabled": enabled, "k_switch_disabled": disabled})
    return rows


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def _register(runner: Callable[..., List[dict]], vary: str, summary: str):
    """Bind a figure runner to one swept parameter and attach a one-line summary."""

    def wrapper(scale: Scale = Scale.SCALED) -> List[dict]:
        return runner(vary, scale)

    wrapper.__doc__ = summary
    wrapper.__name__ = f"{runner.__name__}_{vary}"
    return wrapper


EXPERIMENTS: Dict[str, Callable[..., List[dict]]] = {
    "fig7": figure7_case_study,
    "fig8": figure8_filter_tradeoff,
    "fig9a": _register(figure9_methods, "k", "Figure 9(a): PAC vs TAS vs TAS* varying k."),
    "fig9b": _register(figure9_methods, "sigma", "Figure 9(b): PAC vs TAS vs TAS* varying sigma."),
    "fig9c": _register(figure9_methods, "n", "Figure 9(c): PAC vs TAS vs TAS* varying n."),
    "fig9d": _register(figure9_methods, "d", "Figure 9(d): PAC vs TAS vs TAS* varying d."),
    "fig10a": _register(figure10_distributions, "k", "Figure 10(a): TAS* on COR/IND/ANTI varying k."),
    "fig10b": _register(
        figure10_distributions, "sigma", "Figure 10(b): TAS* on COR/IND/ANTI varying sigma."
    ),
    "fig10c": _register(figure10_distributions, "n", "Figure 10(c): TAS* on COR/IND/ANTI varying n."),
    "fig10d": _register(figure10_distributions, "d", "Figure 10(d): TAS* on COR/IND/ANTI varying d."),
    "fig11a": _register(figure11_real, "k", "Figure 11(a): TAS* on real-dataset surrogates varying k."),
    "fig11b": _register(
        figure11_real, "sigma", "Figure 11(b): TAS* on real-dataset surrogates varying sigma."
    ),
    "table6": table6_real_vs_synthetic,
    "table7": table7_elongation,
    "fig12a": _register(figure12_lemma5, "k", "Figure 12(a): Lemma 5 pruning varying k."),
    "fig12b": _register(figure12_lemma5, "sigma", "Figure 12(b): Lemma 5 pruning varying sigma."),
    "fig13a": _register(figure13_lemma7, "k", "Figure 13(a): Lemma 7 optimized testing varying k."),
    "fig13b": _register(
        figure13_lemma7, "sigma", "Figure 13(b): Lemma 7 optimized testing varying sigma."
    ),
    "fig14a": _register(figure14_kswitch, "k", "Figure 14(a): k-switch selection varying k."),
    "fig14b": _register(figure14_kswitch, "sigma", "Figure 14(b): k-switch selection varying sigma."),
}


def run_experiment(identifier: str, scale: Scale = Scale.SCALED) -> List[dict]:
    """Run one experiment by its identifier (e.g. ``"fig9a"`` or ``"table6"``)."""
    key = identifier.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {identifier!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key](scale=scale)
