"""Experiment harness regenerating every table and figure of the paper's evaluation."""

from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.config import DEFAULTS, Scale, sweep_values
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_table

__all__ = [
    "DEFAULTS",
    "Scale",
    "sweep_values",
    "EXPERIMENTS",
    "run_experiment",
    "ABLATIONS",
    "run_ablation",
    "format_table",
]
