"""Workload construction for the experiment harness.

A *workload* is a fully instantiated TopRR query: a dataset (synthetic or
real-surrogate), a value of ``k``, and a preference region.  The experiments
of Section 6 average each measurement over several randomly generated regions
for fixed dataset parameters; :func:`make_queries` produces that list of
regions deterministically from the configured seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.data.dataset import Dataset
from repro.data.generators import generate_synthetic
from repro.data.surrogates import real_dataset
from repro.experiments.config import Scale, defaults
from repro.preference.random_regions import random_elongated_region, random_hypercube_region
from repro.preference.region import PreferenceRegion
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class Workload:
    """One TopRR query instance used by the harness."""

    dataset: Dataset
    k: int
    region: PreferenceRegion
    label: str


def make_dataset(
    scale: Scale = Scale.SCALED,
    distribution: Optional[str] = None,
    n_options: Optional[int] = None,
    n_attributes: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dataset:
    """Synthetic dataset with the scale's defaults for any unspecified parameter."""
    base = defaults(scale)
    return generate_synthetic(
        distribution or base.distribution,
        n_options or base.n_options,
        n_attributes or base.n_attributes,
        rng=seed if seed is not None else base.seed,
    )


def make_real_dataset(name: str, scale: Scale = Scale.SCALED) -> Dataset:
    """Real-dataset surrogate (HOTEL / HOUSE / NBA / CNET) at the requested scale.

    At smoke scale the surrogates are down-sampled to a few thousand options so
    that the per-figure benchmarks stay interactive; the attribute structure
    (dimensionality and correlation character) is unchanged.
    """
    scale = Scale.parse(scale)
    if scale is Scale.SMOKE:
        return real_dataset(name, n_options=2_000)
    return real_dataset(name, scale="paper" if scale is Scale.PAPER else "scaled")


def make_regions(
    n_attributes: int,
    sigma: float,
    n_queries: int,
    seed: int,
    gamma: float = 1.0,
) -> List[PreferenceRegion]:
    """Deterministic list of random preference regions (hyper-cubes, or elongated boxes)."""
    rng = ensure_rng(seed)
    regions = []
    for _ in range(n_queries):
        if gamma == 1.0:
            regions.append(random_hypercube_region(n_attributes, sigma, rng=rng))
        else:
            regions.append(random_elongated_region(n_attributes, sigma, gamma, rng=rng))
    return regions


def make_queries(
    scale: Scale = Scale.SCALED,
    distribution: Optional[str] = None,
    n_options: Optional[int] = None,
    n_attributes: Optional[int] = None,
    k: Optional[int] = None,
    sigma: Optional[float] = None,
    gamma: float = 1.0,
    n_queries: Optional[int] = None,
    dataset: Optional[Dataset] = None,
) -> List[Workload]:
    """Fully instantiated queries for one experiment data point.

    Any parameter left as ``None`` takes the scale's default; a pre-built
    ``dataset`` can be supplied to share it across data points (e.g. when
    only ``k`` or ``sigma`` varies).
    """
    scale = Scale.parse(scale)
    base = defaults(scale)
    k = k if k is not None else base.k
    sigma = sigma if sigma is not None else base.sigma
    n_queries = n_queries if n_queries is not None else base.n_queries
    if dataset is None:
        dataset = make_dataset(
            scale,
            distribution=distribution,
            n_options=n_options,
            n_attributes=n_attributes,
        )
    regions = make_regions(dataset.n_attributes, sigma, n_queries, seed=base.seed + 1, gamma=gamma)
    label = f"{dataset.name}|k={k}|sigma={sigma}|gamma={gamma}"
    return [Workload(dataset=dataset, k=k, region=region, label=label) for region in regions]
