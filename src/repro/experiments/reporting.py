"""Plain-text and CSV reporting of experiment results.

Every figure/table runner returns a list of flat dictionaries ("rows");
:func:`format_table` renders them as an aligned text table (the same rows
and series the paper reports), and :func:`save_csv_rows` persists them for
plotting with external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Union


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict], title: str = "", columns: Sequence[str] = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(row[i]) for row in cells), default=0))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells)
    parts = [title, header, separator, body] if title else [header, separator, body]
    return "\n".join(part for part in parts if part)


def save_csv_rows(rows: Sequence[dict], path: Union[str, Path]) -> Path:
    """Write result rows to a CSV file and return the path."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def print_rows(rows: Iterable[dict], title: str = "") -> None:
    """Convenience wrapper printing :func:`format_table` to stdout."""
    print(format_table(list(rows), title=title))
