"""Ablation and extension experiments beyond the paper's figures.

The paper's evaluation isolates its three algorithmic optimizations
(Figures 12-14).  The runners here extend that analysis to the design
decisions the paper argues for in prose but does not plot, and to the two
future-work directions its conclusion names:

* :func:`ablation_sampling` — the exact methods versus the sampled baseline
  of Section 2.1 (how often an "answer" computed from sampled weight vectors
  endorses a placement that is *not* top-ranking throughout ``wR``);
* :func:`ablation_parallel` — speed-up and answer-equivalence of the
  chop-``wR``-and-merge parallel solver;
* :func:`ablation_precompute` — amortised cost of repeated queries with and
  without the per-dataset pre-computation;
* :func:`substrate_engines` — the access-cost profile of the three top-k
  engines (full scan, branch-and-bound over the R-tree, threshold merging),
  documenting the substrate the filtering layer builds on.

Each runner follows the same conventions as :mod:`repro.experiments.figures`:
it returns a list of flat row dictionaries ready for
:func:`repro.experiments.reporting.format_table`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.core.parallel import solve_toprr_parallel
from repro.core.precompute import PrecomputedTopRR
from repro.core.sampled import evaluate_sampled_exactness, sampled_toprr
from repro.core.toprr import solve_toprr
from repro.experiments.config import Scale, defaults
from repro.experiments.workloads import make_dataset, make_queries
from repro.index import RTree
from repro.topk.branch_and_bound import branch_and_bound_top_k, node_access_count
from repro.topk.query import top_k
from repro.topk.threshold import AccessStatistics, SortedListIndex, threshold_algorithm
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


# --------------------------------------------------------------------------- #
# Exactness of the sampled baseline (Section 2.1 discussion)
# --------------------------------------------------------------------------- #
def ablation_sampling(
    scale: Scale = Scale.SCALED,
    sample_counts: List[int] = (4, 16, 64, 256),
) -> List[dict]:
    """Exact TopRR versus the sampled baseline for increasing sample counts.

    One row per sample count: the share of placements the sampled region
    endorses that are not actually top-ranking for all of ``wR``, the worst
    observed fraction of ``wR`` such a placement fails to cover, and the
    runtimes of both approaches.
    """
    scale = Scale.parse(scale)
    base = defaults(scale)
    dataset = make_dataset(scale)
    workloads = make_queries(scale, dataset=dataset, n_queries=1)
    k, region = workloads[0].k, workloads[0].region

    exact_timer = Timer().start()
    exact = solve_toprr(dataset, k, region)
    exact_seconds = exact_timer.stop()

    rows = []
    for n_samples in sample_counts:
        sampled_timer = Timer().start()
        sampled = sampled_toprr(
            dataset, k, region, n_samples=n_samples, include_vertices=False, rng=base.seed
        )
        sampled_seconds = sampled_timer.stop()
        report = evaluate_sampled_exactness(
            exact, sampled, n_probes=512, rng=base.seed + 1
        )
        rows.append(
            {
                "n_samples": int(n_samples),
                "false_accept_rate": round(report.false_accept_rate, 4),
                "n_false_accepts": report.n_false_accepts,
                "worst_uncovered_pct": round(100 * report.worst_uncovered_fraction, 2),
                "sampled_seconds": round(sampled_seconds, 4),
                "exact_seconds": round(exact_seconds, 4),
                "exact_is_guaranteed": True,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Parallel solving (Section 7 future work)
# --------------------------------------------------------------------------- #
def ablation_parallel(
    scale: Scale = Scale.SCALED,
    worker_counts: List[int] = (1, 2, 4),
    executor: str = "process",
) -> List[dict]:
    """Sequential TAS* versus the chopped-region parallel solver.

    One row per worker count, reporting wall-clock seconds, the speed-up over
    the sequential run, and whether the parallel answer is identical to the
    sequential one on a probe set (it must be — the chop only adds redundant
    vertices to ``V_all``).
    """
    scale = Scale.parse(scale)
    base = defaults(scale)
    dataset = make_dataset(scale)
    workloads = make_queries(scale, dataset=dataset, n_queries=1)
    k, region = workloads[0].k, workloads[0].region
    probes = ensure_rng(base.seed).random((512, dataset.n_attributes))

    sequential_timer = Timer().start()
    sequential = solve_toprr(dataset, k, region)
    sequential_seconds = sequential_timer.stop()
    reference = sequential.contains_many(probes)

    rows = [
        {
            "configuration": "sequential TAS*",
            "n_workers": 1,
            "seconds": round(sequential_seconds, 4),
            "speedup": 1.0,
            "answers_match": True,
        }
    ]
    for n_workers in worker_counts:
        if n_workers <= 1:
            continue
        timer = Timer().start()
        parallel = solve_toprr_parallel(
            dataset, k, region, n_workers=n_workers, executor=executor
        )
        seconds = timer.stop()
        rows.append(
            {
                "configuration": f"parallel x{n_workers} ({executor})",
                "n_workers": int(n_workers),
                "seconds": round(seconds, 4),
                "speedup": round(sequential_seconds / seconds, 3) if seconds > 0 else float("inf"),
                "answers_match": bool(np.array_equal(parallel.contains_many(probes), reference)),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Pre-computation for repeated queries (Section 7 future work)
# --------------------------------------------------------------------------- #
def ablation_precompute(
    scale: Scale = Scale.SCALED,
    n_repeated_queries: int = 6,
) -> List[dict]:
    """Repeated-query workload with and without the per-dataset pre-computation.

    An analyst explores ``n_repeated_queries`` clientele regions (with one
    region revisited) against the same dataset.  Rows compare the direct
    per-query path with :class:`~repro.core.precompute.PrecomputedTopRR`
    (whose one-off build cost is reported separately).
    """
    scale = Scale.parse(scale)
    base = defaults(scale)
    dataset = make_dataset(scale)
    regions = [
        workload.region
        for workload in make_queries(scale, dataset=dataset, n_queries=max(2, n_repeated_queries - 1))
    ]
    # Revisit the first region to exercise the result cache.
    regions = (regions + [regions[0]])[:n_repeated_queries]
    k = base.k

    direct_timer = Timer().start()
    direct_results = [solve_toprr(dataset, k, region) for region in regions]
    direct_seconds = direct_timer.stop()

    index = PrecomputedTopRR(dataset, k_max=max(k, 10))
    indexed_timer = Timer().start()
    indexed_results = [index.solve(k, region) for region in regions]
    indexed_seconds = indexed_timer.stop()

    probes = ensure_rng(base.seed).random((256, dataset.n_attributes))
    all_match = all(
        np.array_equal(direct.contains_many(probes), indexed.contains_many(probes))
        for direct, indexed in zip(direct_results, indexed_results)
    )

    return [
        {
            "configuration": "direct solve per query",
            "n_queries": len(regions),
            "build_seconds": 0.0,
            "query_seconds": round(direct_seconds, 4),
            "total_seconds": round(direct_seconds, 4),
            "candidate_options": dataset.n_options,
            "answers_match": True,
        },
        {
            "configuration": "precomputed skyband + cache",
            "n_queries": len(regions),
            "build_seconds": round(index.precompute_seconds, 4),
            "query_seconds": round(indexed_seconds, 4),
            "total_seconds": round(index.precompute_seconds + indexed_seconds, 4),
            "candidate_options": index.skyband_size,
            "answers_match": bool(all_match),
        },
    ]


# --------------------------------------------------------------------------- #
# Top-k engine substrate profile
# --------------------------------------------------------------------------- #
def substrate_engines(scale: Scale = Scale.SCALED, n_weights: int = 5) -> List[dict]:
    """Access-cost comparison of the top-k engines on the default dataset.

    One row per engine, averaged over ``n_weights`` random weight vectors:
    the fraction of the dataset (or index) each engine touches before it can
    stop, and confirmation that all engines return the reference answer.
    """
    scale = Scale.parse(scale)
    base = defaults(scale)
    dataset = make_dataset(scale)
    k = base.k
    rng = ensure_rng(base.seed)
    weights = rng.random((n_weights, dataset.n_attributes)) + 0.05
    weights = weights / weights.sum(axis=1, keepdims=True)

    tree = RTree(dataset.values)
    lists = SortedListIndex.build(dataset)

    bnb_nodes, ta_depth, agreements = [], [], []
    for weight in weights:
        reference = top_k(dataset, weight, k)
        bnb = branch_and_bound_top_k(dataset, weight, k, tree=tree)
        stats = AccessStatistics()
        ta = threshold_algorithm(dataset, weight, k, index=lists, stats=stats)
        bnb_nodes.append(node_access_count(dataset, weight, k, tree=tree))
        ta_depth.append(stats.depth)
        agreements.append(
            bnb.indices.tolist() == reference.indices.tolist()
            and ta.index_set == reference.index_set
        )

    return [
        {
            "engine": "full scan (reference)",
            "touched": dataset.n_options,
            "touched_fraction": 1.0,
            "agrees_with_reference": True,
        },
        {
            "engine": "branch-and-bound (R-tree)",
            "touched": round(float(np.mean(bnb_nodes)), 1),
            "touched_fraction": round(float(np.mean(bnb_nodes)) / tree.node_count(), 4),
            "agrees_with_reference": bool(all(agreements)),
        },
        {
            "engine": "threshold algorithm (sorted lists)",
            "touched": round(float(np.mean(ta_depth)), 1),
            "touched_fraction": round(float(np.mean(ta_depth)) / dataset.n_options, 4),
            "agrees_with_reference": bool(all(agreements)),
        },
    ]


#: Registry of the extension experiments, mirroring ``EXPERIMENTS`` in
#: :mod:`repro.experiments.figures`.
ABLATIONS: Dict[str, Callable[..., List[dict]]] = {
    "ablation_sampling": ablation_sampling,
    "ablation_parallel": ablation_parallel,
    "ablation_precompute": ablation_precompute,
    "substrate_engines": substrate_engines,
}


def run_ablation(name: str, scale: Scale = Scale.SCALED, **kwargs) -> List[dict]:
    """Run one of the registered ablation experiments by name."""
    if name not in ABLATIONS:
        raise KeyError(f"unknown ablation {name!r}; expected one of {sorted(ABLATIONS)}")
    return ABLATIONS[name](scale=scale, **kwargs)
