"""Random preference-region generators used by the experiment harness.

The paper's experiments generate ``wR`` as a random axis-aligned hyper-cube
whose side length is a fraction ``sigma`` of the preference-space axes
(Table 5), and additionally study elongated hyper-rectangles whose volume is
kept constant while one side is stretched by a factor ``gamma`` (Table 7).
Regions are always placed inside the valid weight simplex so that every
vertex corresponds to a non-negative, normalised weight vector.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike, ensure_rng


def _place_box(
    rng: np.random.Generator,
    side_lengths: np.ndarray,
    max_tries: int = 10_000,
) -> List[Tuple[float, float]]:
    """Place a box with the given side lengths uniformly inside the weight simplex."""
    dim = side_lengths.shape[0]
    if np.any(side_lengths <= 0) or np.any(side_lengths > 1):
        raise InvalidParameterError("side lengths must lie in (0, 1]")
    for _ in range(max_tries):
        lower = rng.uniform(0.0, 1.0 - side_lengths, size=dim)
        upper = lower + side_lengths
        # The whole box must stay in the simplex: the corner with maximal
        # coordinates must still satisfy sum(w) <= 1.
        if upper.sum() <= 1.0:
            return list(zip(lower.tolist(), upper.tolist()))
    # Fall back to anchoring the box at the barycentre scaled down: always valid
    # because the barycentre has coordinate sum (d-1)/d < 1.
    centre = np.full(dim, 1.0 / (dim + 1))
    lower = np.maximum(centre - side_lengths / 2.0, 0.0)
    upper = lower + side_lengths
    if upper.sum() > 1.0:
        shrink = (1.0 - lower.sum()) / max(side_lengths.sum(), 1e-12)
        upper = lower + side_lengths * min(1.0, shrink)
    return list(zip(lower.tolist(), upper.tolist()))


def random_hypercube_region(
    n_attributes: int,
    side_length: float,
    rng: RngLike = None,
) -> PreferenceRegion:
    """A random hyper-cubic ``wR`` of the given side length (the paper's ``sigma``).

    Parameters
    ----------
    n_attributes:
        Number of option attributes ``d`` (the region lives in ``d - 1`` dims).
    side_length:
        Side length as an absolute fraction of the unit preference axes,
        e.g. 0.01 for the paper's default ``sigma = 1%``.
    """
    if not 0 < side_length <= 1:
        raise InvalidParameterError(f"side_length must be in (0, 1], got {side_length}")
    rng = ensure_rng(rng)
    dim = n_attributes - 1
    sides = np.full(dim, float(side_length))
    intervals = _place_box(rng, sides)
    return PreferenceRegion.hyperrectangle(intervals)


def random_elongated_region(
    n_attributes: int,
    side_length: float,
    gamma: float,
    rng: RngLike = None,
) -> PreferenceRegion:
    """A random hyper-rectangle with one side stretched by ``gamma`` at constant volume.

    One randomly chosen axis gets side ``gamma * side_length``; the remaining
    axes are shrunk uniformly so that the total volume equals that of the
    hyper-cube with side ``side_length`` (this is the Table 7 workload).
    """
    if gamma <= 0:
        raise InvalidParameterError(f"gamma must be positive, got {gamma}")
    rng = ensure_rng(rng)
    dim = n_attributes - 1
    sides = np.full(dim, float(side_length))
    if dim == 1:
        # With a single axis the volume constraint forces the original length.
        intervals = _place_box(rng, sides)
        return PreferenceRegion.hyperrectangle(intervals)
    stretched_axis = int(rng.integers(dim))
    sides[stretched_axis] = min(gamma * side_length, 1.0)
    # Equal-volume adjustment of the remaining axes.
    remaining = [axis for axis in range(dim) if axis != stretched_axis]
    target_volume = float(side_length) ** dim
    other_side = (target_volume / sides[stretched_axis]) ** (1.0 / len(remaining))
    for axis in remaining:
        sides[axis] = min(other_side, 1.0)
    intervals = _place_box(rng, sides)
    return PreferenceRegion.hyperrectangle(intervals)


def centred_hypercube_region(n_attributes: int, side_length: float) -> PreferenceRegion:
    """A deterministic hyper-cube centred at the barycentre (useful for tests/examples)."""
    if not 0 < side_length <= 1:
        raise InvalidParameterError(f"side_length must be in (0, 1], got {side_length}")
    dim = n_attributes - 1
    centre = np.full(dim, 1.0 / n_attributes)
    lower = np.clip(centre - side_length / 2.0, 0.0, 1.0)
    upper = np.clip(centre + side_length / 2.0, 0.0, 1.0)
    if upper.sum() > 1.0:
        upper = lower + (1.0 - lower.sum()) * (upper - lower) / max((upper - lower).sum(), 1e-12)
    return PreferenceRegion.hyperrectangle(list(zip(lower.tolist(), upper.tolist())))
