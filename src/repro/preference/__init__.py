"""Preference-space substrate: reduced weight parameterisation and preference regions."""

from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.preference.random_regions import random_hypercube_region, random_elongated_region

__all__ = [
    "PreferenceSpace",
    "PreferenceRegion",
    "random_hypercube_region",
    "random_elongated_region",
]
