"""Preference regions: convex polytopes in the reduced preference space.

A :class:`PreferenceRegion` is the input ``wR`` of TopRR and, during
test-and-split, also the intermediate sub-regions ``wR_i``.  It wraps a
:class:`~repro.geometry.polytope.ConvexPolytope` over the reduced
``(d-1)``-dimensional preference space and adds:

* convenient constructors (axis-aligned hyper-rectangles, intervals for the
  2-attribute case, arbitrary halfspace lists),
* access to the defining vertices both in reduced and in full (normalised,
  ``d``-dimensional) weight coordinates,
* splitting by a scoring hyperplane ``wHP(p_i, p_j)``, preserving the paper's
  facet-based representation semantics (shared splitting facet, vertices on
  the hyperplane belong to both children).

The geometry itself runs on the backend the wrapped polytope was built with
(see :mod:`repro.geometry.polytope`): for 2-D and 3-D preference spaces —
``d = 3`` / ``d = 4`` attributes, the paper's two experimental settings —
the exact polygon / polyhedron backends answer every split, emptiness test
and vertex enumeration in closed form with zero LP/qhull calls.  Split
children inherit the parent's backend, so choosing it at region
construction (``backend=`` or :func:`repro.geometry.polytope.use_backend`)
fixes it for a whole solve.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EmptyRegionError, InvalidParameterError
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import ConvexPolytope
from repro.preference.space import PreferenceSpace
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class PreferenceRegion:
    """A convex polytope ``wR`` in the reduced preference space.

    Parameters
    ----------
    polytope:
        The underlying geometry (dimension ``d - 1``).
    n_attributes:
        Number of option attributes ``d``.  When omitted it is inferred as
        ``polytope.dimension + 1``.
    """

    def __init__(
        self,
        polytope: ConvexPolytope,
        n_attributes: Optional[int] = None,
        tol: Tolerance = DEFAULT_TOL,
    ):
        self._polytope = polytope
        self.space = PreferenceSpace(n_attributes or polytope.dimension + 1)
        if self.space.dimension != polytope.dimension:
            raise InvalidParameterError(
                f"polytope dimension {polytope.dimension} does not match a preference space "
                f"for {self.space.n_attributes} attributes"
            )
        self._tol = tol

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def hyperrectangle(
        cls,
        intervals: Sequence[Tuple[float, float]],
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "PreferenceRegion":
        """Axis-aligned box ``[lo_1, hi_1] x ... x [lo_{d-1}, hi_{d-1}]`` in reduced space.

        This is the region shape used throughout the paper's experiments
        (``wR`` is an axis-aligned hyper-cube of side length ``sigma``).
        ``backend`` optionally overrides the geometry backend
        (``"auto"``/``"qhull"``/``"polygon"``, see
        :mod:`repro.geometry.polytope`); split children inherit it.
        """
        lower = np.array([interval[0] for interval in intervals], dtype=float)
        upper = np.array([interval[1] for interval in intervals], dtype=float)
        if np.any(lower < 0) or np.any(upper > 1) or np.any(lower > upper):
            raise InvalidParameterError(
                "hyperrectangle intervals must satisfy 0 <= lo <= hi <= 1 in every axis"
            )
        if lower.sum() > 1.0 + tol.geometry:
            raise InvalidParameterError(
                "hyperrectangle lies outside the weight simplex (sum of lower bounds > 1)"
            )
        polytope = ConvexPolytope.from_box(lower, upper, tol=tol, backend=backend)
        return cls(polytope, n_attributes=lower.shape[0] + 1, tol=tol)

    @classmethod
    def interval(
        cls,
        low: float,
        high: float,
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "PreferenceRegion":
        """The 1-D preference region ``[low, high]`` for 2-attribute datasets."""
        return cls.hyperrectangle([(low, high)], tol=tol, backend=backend)

    @classmethod
    def full_simplex(
        cls,
        n_attributes: int,
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "PreferenceRegion":
        """The entire valid preference space for ``n_attributes`` attributes."""
        space = PreferenceSpace(n_attributes)
        A, b = space.simplex_constraints()
        return cls(ConvexPolytope(A, b, tol=tol, backend=backend), n_attributes=n_attributes, tol=tol)

    @classmethod
    def from_halfspaces(
        cls,
        halfspaces: Iterable[Halfspace],
        n_attributes: Optional[int] = None,
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "PreferenceRegion":
        """Region bounded by an explicit collection of preference halfspaces."""
        polytope = ConvexPolytope.from_halfspaces(halfspaces, tol=tol, backend=backend)
        return cls(polytope, n_attributes=n_attributes, tol=tol)

    # ------------------------------------------------------------------ #
    # geometry passthroughs
    # ------------------------------------------------------------------ #
    @property
    def polytope(self) -> ConvexPolytope:
        """The underlying reduced-space polytope."""
        return self._polytope

    @property
    def n_attributes(self) -> int:
        """Number of option attributes ``d``."""
        return self.space.n_attributes

    @property
    def dimension(self) -> int:
        """Dimension of the reduced preference space (``d - 1``)."""
        return self._polytope.dimension

    @property
    def vertices(self) -> np.ndarray:
        """Defining vertices in reduced coordinates, shape ``(m, d-1)``."""
        return self._polytope.vertices

    @property
    def n_vertices(self) -> int:
        """Number of defining vertices."""
        return self._polytope.n_vertices

    def full_vertices(self) -> np.ndarray:
        """Defining vertices lifted to full, normalised weight vectors, shape ``(m, d)``."""
        return self.space.to_full_many(self.vertices)

    def is_empty(self) -> bool:
        """True if the region contains no weight vector."""
        return self._polytope.is_empty()

    def is_full_dimensional(self) -> bool:
        """True if the region has positive ``(d-1)``-dimensional volume."""
        if self.dimension == 1:
            try:
                verts = self._polytope.vertices
            except Exception:
                return False
            return verts.shape[0] >= 2
        return self._polytope.is_full_dimensional()

    def contains(self, reduced_weight: Sequence[float]) -> bool:
        """True if the reduced weight vector lies inside the region."""
        return self._polytope.contains(reduced_weight)

    def volume(self) -> float:
        """Volume of the region in reduced coordinates."""
        return self._polytope.volume()

    def centroid(self) -> np.ndarray:
        """Mean of the defining vertices (a convenient interior point)."""
        verts = self.vertices
        if verts.shape[0] == 0:
            raise EmptyRegionError("empty preference region has no centroid")
        return verts.mean(axis=0)

    def sample_weights(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Random reduced weight vectors inside the region (for the verifier)."""
        return self._polytope.sample(n_samples, rng)

    # ------------------------------------------------------------------ #
    # scoring hyperplanes and splitting
    # ------------------------------------------------------------------ #
    def scoring_hyperplane(self, option_a: np.ndarray, option_b: np.ndarray) -> Hyperplane:
        """The hyperplane ``wHP(option_a, option_b)`` where both options score equally.

        Oriented so that the *negative* side is where ``option_a`` scores
        higher than ``option_b`` — i.e. the halfspace ``wH(option_a, option_b)``
        of the paper is ``{w : normal . w <= offset}``.
        """
        option_a = np.asarray(option_a, dtype=float)
        option_b = np.asarray(option_b, dtype=float)
        diff = option_b - option_a
        constant = float(diff[-1])
        coefficients = diff[:-1] - constant
        # S_w(option_b) - S_w(option_a) = coefficients . w + constant <= 0
        return Hyperplane(coefficients, -constant)

    def split(self, hyperplane: Hyperplane) -> Tuple["PreferenceRegion", "PreferenceRegion"]:
        """Split the region by ``hyperplane`` into the (<=) and the (>=) side."""
        below, above = self._polytope.split(hyperplane)
        return (
            PreferenceRegion(below, n_attributes=self.n_attributes, tol=self._tol),
            PreferenceRegion(above, n_attributes=self.n_attributes, tol=self._tol),
        )

    def intersect_halfspace(self, halfspace: Halfspace) -> "PreferenceRegion":
        """Intersect the region with one more preference halfspace."""
        return PreferenceRegion(
            self._polytope.intersect_halfspace(halfspace),
            n_attributes=self.n_attributes,
            tol=self._tol,
        )

    def pruned(self) -> "PreferenceRegion":
        """Region with redundant bounding halfspaces removed."""
        return PreferenceRegion(
            self._polytope.prune_redundant(), n_attributes=self.n_attributes, tol=self._tol
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PreferenceRegion(d={self.n_attributes}, reduced_dim={self.dimension}, "
            f"constraints={self._polytope.n_constraints})"
        )
