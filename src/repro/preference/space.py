"""The preference space ``W`` and its reduced parameterisation.

Weight vectors are normalised to sum to one (the paper, Section 3.1), so the
last weight is redundant: ``w[d-1] = 1 - sum of the others``.  The preference
space is therefore the ``(d-1)``-dimensional simplex slice

    ``W = { w in R^(d-1) : w >= 0, sum(w) <= 1 }``.

All region geometry in this package lives in this reduced space; scores are
evaluated through the affine form

    ``S_w(p) = p[d-1] + sum_j w[j] * (p[j] - p[d-1])``.

:class:`PreferenceSpace` bundles the conversions between the reduced and the
full parameterisation and the affine scoring coefficients of a dataset.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class PreferenceSpace:
    """The reduced preference space for options with ``n_attributes`` attributes."""

    def __init__(self, n_attributes: int):
        if n_attributes < 2:
            raise InvalidParameterError(
                f"the preference space needs at least 2 option attributes, got {n_attributes}"
            )
        self.n_attributes = int(n_attributes)

    @property
    def dimension(self) -> int:
        """Dimension of the reduced preference space (``d - 1``)."""
        return self.n_attributes - 1

    # ------------------------------------------------------------------ #
    # weight conversions
    # ------------------------------------------------------------------ #
    def to_full(self, reduced: Sequence[float]) -> np.ndarray:
        """Lift a reduced weight vector to the full, normalised ``d``-vector."""
        reduced = np.asarray(reduced, dtype=float)
        if reduced.shape != (self.dimension,):
            raise DimensionMismatchError(
                f"reduced weight must have {self.dimension} components, got {reduced.shape}"
            )
        last = 1.0 - float(reduced.sum())
        return np.concatenate([reduced, [last]])

    def to_full_many(self, reduced: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`to_full` for an ``(m, d-1)`` array."""
        reduced = np.atleast_2d(np.asarray(reduced, dtype=float))
        if reduced.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"reduced weights must have {self.dimension} columns, got {reduced.shape[1]}"
            )
        last = 1.0 - reduced.sum(axis=1, keepdims=True)
        return np.hstack([reduced, last])

    def to_reduced(self, full: Sequence[float], renormalize: bool = True) -> np.ndarray:
        """Project a full weight vector down to the reduced parameterisation.

        With ``renormalize=True`` (default) the vector is first scaled to sum
        to one, which matches the paper's observation that only the direction
        of ``w`` matters for the ranking.
        """
        full = np.asarray(full, dtype=float)
        if full.shape != (self.n_attributes,):
            raise DimensionMismatchError(
                f"full weight must have {self.n_attributes} components, got {full.shape}"
            )
        if renormalize:
            total = float(full.sum())
            if total <= 0:
                raise InvalidParameterError("weight vector must have a positive sum")
            full = full / total
        return full[:-1].copy()

    def is_valid_reduced(self, reduced: Sequence[float], tol: Tolerance = DEFAULT_TOL) -> bool:
        """True if the reduced vector corresponds to a non-negative full weight vector."""
        reduced = np.asarray(reduced, dtype=float)
        if reduced.shape != (self.dimension,):
            return False
        if np.any(reduced < -tol.geometry):
            return False
        return float(reduced.sum()) <= 1.0 + tol.geometry

    # ------------------------------------------------------------------ #
    # simplex geometry
    # ------------------------------------------------------------------ #
    def simplex_constraints(self) -> Tuple[np.ndarray, np.ndarray]:
        """H-representation ``(A, b)`` of the valid reduced space (``w >= 0``, ``sum <= 1``)."""
        dim = self.dimension
        A = np.vstack([-np.eye(dim), np.ones((1, dim))])
        b = np.concatenate([np.zeros(dim), [1.0]])
        return A, b

    def barycentre(self) -> np.ndarray:
        """The uniform weight vector in reduced coordinates."""
        return np.full(self.dimension, 1.0 / self.n_attributes)

    # ------------------------------------------------------------------ #
    # scoring in reduced coordinates
    # ------------------------------------------------------------------ #
    def affine_score_form(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Affine scoring coefficients of a value matrix over the reduced space.

        Returns ``(coefficients, constants)`` such that the score of option
        ``i`` at reduced weight ``w`` is ``constants[i] + coefficients[i] . w``.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.n_attributes:
            raise DimensionMismatchError(
                f"values must be (n, {self.n_attributes}), got {values.shape}"
            )
        constants = values[:, -1].copy()
        coefficients = values[:, :-1] - constants[:, None]
        return coefficients, constants

    def scores_at_reduced(self, values: np.ndarray, reduced: Sequence[float]) -> np.ndarray:
        """Scores of all options at a reduced weight vector."""
        coefficients, constants = self.affine_score_form(values)
        return constants + coefficients @ np.asarray(reduced, dtype=float)

    def scores_at_reduced_many(self, values: np.ndarray, reduced: np.ndarray) -> np.ndarray:
        """Score matrix ``(n_options, n_weights)`` at several reduced weight vectors."""
        coefficients, constants = self.affine_score_form(values)
        reduced = np.atleast_2d(np.asarray(reduced, dtype=float))
        return constants[:, None] + coefficients @ reduced.T

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PreferenceSpace(d={self.n_attributes}, reduced_dim={self.dimension})"
