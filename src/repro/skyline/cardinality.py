"""Skyline / k-skyband cardinality estimation.

The paper's complexity discussion (end of Section 4.3) bounds the TopRR work
in terms of ``n'``, the number of options that survive the dominance-based
pre-filter, and points to the classical cardinality analyses [20, 56] for
estimating it.  Under the standard independence assumption (attribute values
drawn independently with continuous marginals, no duplicate values), the
expected skyline size of ``n`` options in ``d`` dimensions is the Eulerian
"harmonic" quantity

    E[|SKY|] = H_{d-1}(n) ~ (ln n)^{d-1} / (d-1)!

and the expected k-skyband size scales like ``k`` times a polylogarithmic
factor.  These estimates are used by the experiment harness to sanity-check
the measured filter sizes (Figure 8 / Figure 12) against theory.
"""

from __future__ import annotations

from functools import lru_cache
import math

from repro.exceptions import InvalidParameterError


def harmonic_number(n: int) -> float:
    """The n-th harmonic number ``H(n) = 1 + 1/2 + ... + 1/n``.

    Uses the asymptotic expansion for large ``n`` so that dataset-scale
    arguments (millions of options) stay cheap and accurate.
    """
    if n < 0:
        raise InvalidParameterError(f"harmonic numbers are defined for n >= 0, got {n}")
    if n == 0:
        return 0.0
    if n <= 128:
        return float(sum(1.0 / i for i in range(1, n + 1)))
    euler_mascheroni = 0.5772156649015328606
    return float(
        math.log(n) + euler_mascheroni + 1.0 / (2 * n) - 1.0 / (12 * n * n)
    )


@lru_cache(maxsize=128)
def _generalized_harmonic(n: int, order: int) -> float:
    """The order-``order`` generalised harmonic ``H_order(n)`` of Godfrey's analysis.

    ``H_1(n)`` is the ordinary harmonic number and
    ``H_j(n) = sum_{i=1..n} H_{j-1}(i) / i`` for higher orders; ``H_{d-1}(n)``
    equals the expected number of skyline points of ``n`` i.i.d. options in
    ``d`` dimensions.  The recurrence is evaluated exactly for moderate ``n``
    (one O(n * order) sweep) and via the standard ``(ln n)^j / j!``
    asymptotic beyond that.
    """
    if order == 0:
        return 1.0 if n >= 1 else 0.0
    if order == 1:
        return harmonic_number(n)
    if n > 100_000:
        return (math.log(n) ** order) / math.factorial(order)
    # running[j] holds H_j(i) after processing prefix 1..i.
    running = [0.0] * (order + 1)
    running[0] = 1.0
    for i in range(1, n + 1):
        # Ascending j so that running[j - 1] is already H_{j-1}(i) when used.
        for j in range(1, order + 1):
            running[j] += running[j - 1] / i
    return running[order]


def expected_skyline_size(n: int, d: int) -> float:
    """Expected skyline cardinality of ``n`` independent options in ``d`` dimensions."""
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if d <= 0:
        raise InvalidParameterError(f"d must be positive, got {d}")
    if d == 1 or n == 1:
        return 1.0
    return min(float(n), max(1.0, _generalized_harmonic(n, d - 1)))


def expected_k_skyband_size(n: int, d: int, k: int) -> float:
    """Expected k-skyband cardinality of ``n`` independent options in ``d`` dimensions.

    Uses the standard estimate ``k * H_{d-1}(n / k)`` (each of the ``k``
    "layers" behaves like a skyline of the remaining options), which is the
    right order of magnitude for the sanity checks the harness performs; the
    value is clipped to ``[k, n]``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if k >= n:
        return float(n)
    per_layer = expected_skyline_size(max(int(n / k), 1), d)
    return float(min(n, max(k, k * per_layer)))
