"""Skyline and k-skyband computation over spatially indexed options.

The paper's Section 2.3 describes the standard skyline machinery
(Börzsönyi et al. [10], Papadias et al. [34]) which also provides one of the
candidate pre-filters for TopRR (the k-skyband, Section 6.3).  The
:mod:`repro.topk.skyband` module already has the sort-based reference
implementation; this package adds:

* :func:`~repro.skyline.bbs.bbs_skyline` / :func:`~repro.skyline.bbs.bbs_k_skyband`
  — the branch-and-bound (BBS) algorithms over an R-tree, the approach the
  literature actually deploys at scale, and
* :func:`~repro.skyline.cardinality.expected_skyline_size` — the classical
  cardinality estimate used when reasoning about the size of the filtered
  set ``D'`` (the paper cites such analyses [20, 56] in Section 4.3).
"""

from repro.skyline.bbs import bbs_k_skyband, bbs_skyline, dominates
from repro.skyline.cardinality import (
    expected_k_skyband_size,
    expected_skyline_size,
    harmonic_number,
)

__all__ = [
    "bbs_skyline",
    "bbs_k_skyband",
    "dominates",
    "expected_skyline_size",
    "expected_k_skyband_size",
    "harmonic_number",
]
