"""Branch-and-bound skyline (BBS) and k-skyband over an R-tree.

BBS (Papadias et al. [34]) traverses the R-tree best-first by the attribute
sum of each node's top corner.  Because every dominator of a point has a
strictly larger attribute sum, by the time an entry is popped all its
potential dominators have already been examined, so a single dominance test
against the result found so far decides membership.  The same argument
extends to the k-skyband when "dominated" is relaxed to "dominated by fewer
than ``k`` results".

These functions return exactly the same index sets as the sort-based
reference implementations in :mod:`repro.topk.skyband`; the point of having
both is (i) fidelity to the algorithms the paper cites and (ii) a mutual
cross-check in the test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.index.rtree import RTree
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def dominates(p: np.ndarray, q: np.ndarray, tol: Tolerance = DEFAULT_TOL) -> bool:
    """True if option ``p`` dominates option ``q``.

    ``p`` dominates ``q`` when it is at least as large in every attribute and
    strictly larger in at least one (larger-is-better convention).
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    at_least = np.all(p >= q - tol.geometry)
    strictly = np.any(p > q + tol.geometry)
    return bool(at_least and strictly)


def _dominator_count(
    candidates: np.ndarray, point: np.ndarray, cap: int, tol: Tolerance
) -> int:
    """Number of rows of ``candidates`` dominating ``point``, capped at ``cap``."""
    if candidates.shape[0] == 0:
        return 0
    eps = tol.geometry
    geq = np.all(candidates >= point - eps, axis=1)
    gt = np.any(candidates > point + eps, axis=1)
    return int(min(np.count_nonzero(geq & gt), cap))


def bbs_k_skyband(
    dataset: Dataset,
    k: int,
    tree: Optional[RTree] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Positional indices of the k-skyband computed with the BBS traversal.

    Parameters
    ----------
    dataset:
        The option dataset.
    k:
        Skyband depth: options dominated by fewer than ``k`` others are kept.
    tree:
        An existing R-tree over ``dataset.values`` (built on demand when
        omitted).
    tol:
        Tolerance used in the dominance tests.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if tree is None:
        tree = RTree(dataset.values)
    elif tree.n_points != dataset.n_options or tree.dimension != dataset.n_attributes:
        raise InvalidParameterError("the provided R-tree does not index this dataset")

    ones = np.ones(dataset.n_attributes)
    band_indices: list[int] = []
    band_values = np.empty((0, dataset.n_attributes))

    # Best-first by attribute sum of the top corner: any dominator of a point
    # is popped before the point itself, and any node that could contain a
    # dominator of a point has a top corner dominating the point (hence a
    # larger key), so testing against the band found so far is exact.
    for _, index in tree.best_first(
        node_key=lambda box: box.max_score(ones),
        point_key=lambda point: float(point.sum()),
    ):
        point = dataset.values[index]
        if _dominator_count(band_values, point, k, tol) < k:
            band_indices.append(int(index))
            band_values = np.vstack([band_values, point[None, :]])

    return np.sort(np.asarray(band_indices, dtype=int))


def bbs_skyline(
    dataset: Dataset,
    tree: Optional[RTree] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Positional indices of the skyline (1-skyband) computed with BBS."""
    return bbs_k_skyband(dataset, 1, tree=tree, tol=tol)


def pruned_node_fraction(
    dataset: Dataset,
    k: int,
    tree: Optional[RTree] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> float:
    """Fraction of R-tree nodes whose whole subtree is skipped by BBS.

    A node can be skipped when its *top corner* is dominated by ``k`` or more
    skyband options — no point inside it can then make the k-skyband.  Used
    by the substrate benchmarks to quantify the benefit of the index.
    """
    if tree is None:
        tree = RTree(dataset.values)
    band = dataset.values[bbs_k_skyband(dataset, k, tree=tree, tol=tol)]
    total = 0
    pruned = 0
    for node in tree.iter_nodes():
        total += 1
        if _dominator_count(band, node.box.top_corner, k, tol) >= k:
            pruned += 1
    return pruned / total if total else 0.0
