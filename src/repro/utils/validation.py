"""Input-validation helpers shared by the public API."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError


def as_point(values: Sequence[float], dimension: int, name: str = "point") -> np.ndarray:
    """Validate and convert ``values`` into a 1-D float array of length ``dimension``."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise DimensionMismatchError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.shape[0] != dimension:
        raise DimensionMismatchError(
            f"{name} must have {dimension} coordinates, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains non-finite values")
    return arr


def as_matrix(values, dimension: int, name: str = "matrix") -> np.ndarray:
    """Validate and convert ``values`` into a 2-D float array with ``dimension`` columns."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"{name} must be two-dimensional, got shape {arr.shape}")
    if arr.shape[1] != dimension:
        raise DimensionMismatchError(
            f"{name} must have {dimension} columns, got {arr.shape[1]}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains non-finite values")
    return arr


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_unit_interval(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value}")
    return value
