"""Centralised numerical tolerances.

All geometric predicates in the package (vertex classification against a
hyperplane, score ties, emptiness of a polytope, ...) go through a single
:class:`Tolerance` object so that the behaviour of the whole pipeline can be
tightened or relaxed in one place.  The defaults were chosen so that the
paper's worked examples and the property-based tests pass with wide margins
while degenerate splits (hyperplanes grazing a vertex) are still handled
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tolerance:
    """Bundle of the numerical tolerances used by the geometric kernel.

    Attributes
    ----------
    geometry:
        Absolute tolerance used when classifying points against hyperplanes
        and when testing halfspace membership.
    score:
        Absolute tolerance used when comparing option scores (ties in top-k
        computations are broken by option index within this tolerance).
    radius:
        Minimum Chebyshev radius for a polytope to be considered
        full-dimensional.  Children of a split whose inscribed ball is
        smaller than this are discarded as measure-zero slivers.
    dedup:
        Tolerance used when de-duplicating vertices (two vertices closer
        than this in infinity norm are considered the same point).
    """

    geometry: float = 1e-9
    score: float = 1e-9
    radius: float = 1e-10
    dedup: float = 1e-8

    def is_zero(self, value: float) -> bool:
        """Return True if ``value`` is geometrically indistinguishable from zero."""
        return abs(value) <= self.geometry

    def is_positive(self, value: float) -> bool:
        """Return True if ``value`` is strictly positive beyond the geometry tolerance."""
        return value > self.geometry

    def is_negative(self, value: float) -> bool:
        """Return True if ``value`` is strictly negative beyond the geometry tolerance."""
        return value < -self.geometry

    def scores_equal(self, a: float, b: float) -> bool:
        """Return True if two scores are equal within the score tolerance."""
        return abs(a - b) <= self.score


#: Package-wide default tolerance bundle.
DEFAULT_TOL = Tolerance()
