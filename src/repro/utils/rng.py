"""Random-number-generator plumbing.

Every stochastic component of the package (data generators, random region
generation, random splitting-pair selection in TAS, the sampling verifier)
accepts either a seed, an existing :class:`numpy.random.Generator`, or
``None``, and funnels it through :func:`ensure_rng` so that experiments are
reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh unseeded generator), an integer seed, or an existing
        generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator or seed")
