"""Small shared utilities: tolerances, timing, validation and RNG helpers."""

from repro.utils.tolerance import DEFAULT_TOL, Tolerance
from repro.utils.timer import Timer
from repro.utils.rng import ensure_rng

__all__ = ["DEFAULT_TOL", "Tolerance", "Timer", "ensure_rng"]
