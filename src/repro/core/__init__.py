"""TopRR core: the algorithms of Sections 3-5 of the paper.

* :mod:`repro.core.impact` — impact halfspaces and the ``oR`` polytope.
* :mod:`repro.core.kipr` — vertex score profiles, kIPR testing (Lemma 3),
  consistent top-λ detection (Lemma 5), optimized testing (Lemma 7).
* :mod:`repro.core.profiles` — the array-backed :class:`RegionProfiles`
  kernel computing all vertex profiles of a region in one batched operation.
* :mod:`repro.core.scorecache` — the incremental split-tree vertex-score
  memo (per-vertex score rows and top-k orderings reused along the
  recursion, frontier-batched kernel launches).
* :mod:`repro.core.splitting` — splitting-hyperplane selection (random and
  k-switch, Definition 4) and the split operation.
* :mod:`repro.core.tas` — the Test-and-Split algorithm (Algorithm 1).
* :mod:`repro.core.tas_star` — the optimized TAS* (Algorithm 2).
* :mod:`repro.core.utk` — anchor-based UTK partitioner (building block of PAC
  and of the exact UTK pre-filter).
* :mod:`repro.core.pac` — the Partition-and-Convert baseline (Section 3.4).
* :mod:`repro.core.toprr` — the user-facing ``solve_toprr`` front end and the
  :class:`TopRRResult` object.
* :mod:`repro.core.placement` — cost-optimal option creation and enhancement.
* :mod:`repro.core.verify` — sampling-based correctness verifier.
* :mod:`repro.core.composite` — non-convex target regions and constrained
  option domains (Section 3.1 generalisations).
* :mod:`repro.core.sampled` — the inexact sampling baseline of Section 2.1.
* :mod:`repro.core.parallel` — parallel solving over a chopped ``wR``
  (future-work direction of Section 7).
* :mod:`repro.core.sharded` — option-space sharded solving: the r-skyband
  pre-filter decomposed over disjoint option shards (process-parallel
  against shared-memory score matrices) with exact cross-shard
  reconciliation.
* :mod:`repro.core.precompute` — per-dataset pre-computation for repeated
  queries (future-work direction of Section 7).
"""

from repro.core.toprr import TopRRResult, solve_toprr
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.core.pac import PACSolver
from repro.core.placement import cheapest_enhancement, cheapest_new_option, smallest_k_within_budget
from repro.core.verify import verify_result_by_sampling
from repro.core.composite import constrain_result, solve_toprr_union
from repro.core.sampled import evaluate_sampled_exactness, sampled_toprr
from repro.core.parallel import solve_toprr_parallel
from repro.core.sharded import sharded_r_skyband, solve_toprr_sharded
from repro.core.precompute import PrecomputedTopRR
from repro.core.serialization import load_result, save_result

__all__ = [
    "TopRRResult",
    "solve_toprr",
    "TASSolver",
    "TASStarSolver",
    "PACSolver",
    "cheapest_new_option",
    "cheapest_enhancement",
    "smallest_k_within_budget",
    "verify_result_by_sampling",
    "solve_toprr_union",
    "constrain_result",
    "sampled_toprr",
    "evaluate_sampled_exactness",
    "solve_toprr_parallel",
    "solve_toprr_sharded",
    "sharded_r_skyband",
    "PrecomputedTopRR",
    "save_result",
    "load_result",
]
