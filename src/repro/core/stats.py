"""Counters collected while solving a TopRR instance.

The paper's ablation experiments (Figures 12-14) report internal quantities
rather than just wall-clock time: the number of options surviving the
filters, the number of vertices accumulated in ``V_all``, and the number of
splits performed.  :class:`SolverStats` gathers all of them in one place so
that every solver (PAC, TAS, TAS*) exposes the same bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class SolverStats:
    """Bookkeeping for one TopRR run.

    Attributes
    ----------
    n_input_options:
        Options in the original dataset ``D``.
    n_filtered_options:
        Options in ``D'`` after the r-skyband pre-filter.
    n_after_lemma5:
        Options still under consideration after the initial consistent
        top-λ pruning — recorded by the solver when Lemma 5 first fires
        (equals ``n_filtered_options`` for solvers without Lemma 5).
    k_effective:
        The value of ``k`` after the initial Lemma 5 reduction.
    n_regions_tested:
        Regions popped from the work list (root + all children).
    n_kipr_regions:
        Regions accepted because they passed the plain kIPR test (Lemma 3).
    n_lemma7_regions:
        Regions accepted by the optimized test (Lemma 7) despite not being kIPR.
    n_splits:
        Split operations performed.
    n_fallback_splits:
        Splits that had to fall back to an axis bisection because no
        violating-pair hyperplane produced two full-dimensional children.
    n_lemma5_reductions:
        Number of recursive calls in which Lemma 5 removed at least one option.
    n_vertices:
        Final size of ``V_all``.
    n_score_rows_computed:
        Vertex score rows freshly computed by the kernel (incremental path
        only; includes rows pre-scored for pending frontier regions).
    n_score_rows_reused:
        Vertex score rows served from the split-tree memo when a popped
        region requested them (rows inherited from the parent, shared with a
        sibling, or pre-scored in an earlier frontier batch).
    n_score_batches:
        Kernel launches performed by the incremental path; with frontier
        batching this scales with the depth of the split tree rather than
        with the number of regions.
    n_order_rows_computed:
        Per-vertex top-k orderings computed from (cached) score rows.
    n_order_rows_reused:
        Per-vertex top-k orderings served from the memo (same vertex under
        the same working set, typically inherited from the parent region).
    n_lp_calls:
        ``scipy.optimize.linprog`` round trips performed by the geometry
        layer during the solve (Chebyshev centres / feasibility tests).
        Zero when a closed-form backend (2-D polygon for ``d = 3``, 3-D
        polyhedron for ``d = 4``) answers every region.
    n_qhull_calls:
        qhull halfspace intersections performed during the solve (vertex
        enumeration on the generic path).  Zero under the closed-form
        backends.
    n_clip_calls:
        Closed-form clipping passes performed during the solve (one per
        halfspace clip or hyperplane cut on the polygon / polyhedron
        backends).
    n_shards:
        Number of option-space shards the r-skyband pre-filter ran over
        (``0`` on the unsharded path).  The sharded path records its
        per-shard filter timings, candidate counts and executor under the
        ``shard_*`` keys of :attr:`extra`.
    n_backend_fallbacks:
        Regions whose closed-form geometry backend (polygon / polyhedron)
        detected an inconsistent body — non-finite vertices, negative
        area/volume, a broken face ring — and demoted itself to the generic
        LP/qhull backend for that region.  Zero on healthy inputs.
    n_retries:
        Shard-task re-submissions the supervised pool performed for this
        query (``0`` on the unsharded/healthy path).
    n_worker_crashes:
        Pool-worker crashes (``BrokenProcessPool``) observed while filtering
        this query's shards.
    n_pool_rebuilds:
        Fresh process pools built after a crash or hang poisoned one.
    n_degraded_shards:
        Shard tasks that exhausted retries/rebuilds and ran serially
        in-process instead (bit-identical results, reduced parallelism).
    degraded:
        True when at least one shard of this query fell back to serial
        in-process execution — the result is still exact; the flag marks
        that the parallel path was unhealthy.
    n_entries_survived:
        Cached entries (r-skyband entries and result-LRU entries) the last
        :meth:`~repro.engine.engine.TopRREngine.apply_delta` call on the
        owning engine kept alive because the mutation provably could not
        change them (``0`` when the engine never saw a mutation).
    n_entries_evicted:
        Cached entries the last ``apply_delta`` call dropped because a
        deleted option sat in the entry's r-skyband or an inserted option
        could enter it.
    n_dominance_tests:
        Inserted-option admission tests (one per inserted option per
        examined cache entry) the last ``apply_delta`` call performed.
    merge_seconds:
        Wall-clock time of the cross-shard top-k reconciliation (merging
        per-shard candidates back into the exact global r-skyband); ``0``
        on the unsharded path.
    seconds:
        Wall-clock time of the solve (filtering included unless noted).
    extra:
        Free-form dictionary for experiment-specific counters.
    """

    n_input_options: int = 0
    n_filtered_options: int = 0
    n_after_lemma5: int = 0
    k_effective: int = 0
    n_regions_tested: int = 0
    n_kipr_regions: int = 0
    n_lemma7_regions: int = 0
    n_splits: int = 0
    n_fallback_splits: int = 0
    n_lemma5_reductions: int = 0
    n_vertices: int = 0
    n_score_rows_computed: int = 0
    n_score_rows_reused: int = 0
    n_score_batches: int = 0
    n_order_rows_computed: int = 0
    n_order_rows_reused: int = 0
    n_lp_calls: int = 0
    n_qhull_calls: int = 0
    n_clip_calls: int = 0
    n_shards: int = 0
    n_backend_fallbacks: int = 0
    n_retries: int = 0
    n_worker_crashes: int = 0
    n_pool_rebuilds: int = 0
    n_degraded_shards: int = 0
    n_entries_survived: int = 0
    n_entries_evicted: int = 0
    n_dominance_tests: int = 0
    degraded: bool = False
    merge_seconds: float = 0.0
    seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def vertex_cache_hit_rate(self) -> float:
        """Fraction of vertex-score row requests served from the memo.

        ``0.0`` when the incremental path was disabled (no rows requested).
        """
        total = self.n_score_rows_computed + self.n_score_rows_reused
        return self.n_score_rows_reused / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view used by the experiment reports."""
        data = {
            "n_input_options": self.n_input_options,
            "n_filtered_options": self.n_filtered_options,
            "n_after_lemma5": self.n_after_lemma5,
            "k_effective": self.k_effective,
            "n_regions_tested": self.n_regions_tested,
            "n_kipr_regions": self.n_kipr_regions,
            "n_lemma7_regions": self.n_lemma7_regions,
            "n_splits": self.n_splits,
            "n_fallback_splits": self.n_fallback_splits,
            "n_lemma5_reductions": self.n_lemma5_reductions,
            "n_vertices": self.n_vertices,
            "n_score_rows_computed": self.n_score_rows_computed,
            "n_score_rows_reused": self.n_score_rows_reused,
            "n_score_batches": self.n_score_batches,
            "n_order_rows_computed": self.n_order_rows_computed,
            "n_order_rows_reused": self.n_order_rows_reused,
            "n_lp_calls": self.n_lp_calls,
            "n_qhull_calls": self.n_qhull_calls,
            "n_clip_calls": self.n_clip_calls,
            "n_shards": self.n_shards,
            "n_backend_fallbacks": self.n_backend_fallbacks,
            "n_retries": self.n_retries,
            "n_worker_crashes": self.n_worker_crashes,
            "n_pool_rebuilds": self.n_pool_rebuilds,
            "n_degraded_shards": self.n_degraded_shards,
            "n_entries_survived": self.n_entries_survived,
            "n_entries_evicted": self.n_entries_evicted,
            "n_dominance_tests": self.n_dominance_tests,
            "degraded": self.degraded,
            "merge_seconds": self.merge_seconds,
            "vertex_cache_hit_rate": self.vertex_cache_hit_rate,
            "seconds": self.seconds,
        }
        data.update(self.extra)
        return data

    @classmethod
    def from_dict(cls, payload: dict) -> "SolverStats":
        """Rebuild a :class:`SolverStats` from an :meth:`as_dict` payload.

        Known counters are restored as real dataclass fields (each at its
        declared type); every other key lands in :attr:`extra`, exactly
        where :meth:`as_dict` merged it from.  Derived values emitted by
        ``as_dict`` (``vertex_cache_hit_rate``) are dropped rather than
        stored, so a load→save cycle is stable.  Used by the result/cache
        serialisation layer, where dumping everything into ``extra`` would
        silently zero the real counters of a reloaded result.
        """
        stats = cls()
        names = {f.name: f.type for f in fields(cls) if f.name != "extra"}
        for key, value in dict(payload).items():
            if key in names:
                setattr(stats, key, type(getattr(stats, key))(value))
            elif key != "vertex_cache_hit_rate":
                stats.extra[key] = value
        return stats
