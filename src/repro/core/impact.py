"""Impact halfspaces and the construction of the TopRR output region ``oR``.

Definition 2 of the paper: for a weight vector ``w`` the *impact halfspace*
``oH(w)`` is the part of the option space whose score under ``w`` is at least
the current k-th highest score ``TopK(w)``.  A new option is top-ranking for
a preference region exactly when it lies in the intersection of the impact
halfspaces of the vertices ``V_all`` of a kIPR partitioning (Theorem 1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import ConvexPolytope
from repro.preference.space import PreferenceSpace
from repro.topk.query import top_k_from_scores
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def impact_halfspace(full_weight: Sequence[float], threshold: float) -> Halfspace:
    """The impact halfspace ``oH(w) = {o : w . o >= threshold}`` in option space.

    Stored in the package's canonical ``a . x <= b`` form, i.e. as
    ``-w . o <= -threshold``.
    """
    weight = np.asarray(full_weight, dtype=float)
    return Halfspace(-weight, -float(threshold), normalize=False)


def impact_thresholds(
    dataset: Dataset,
    reduced_vertices: np.ndarray,
    k: int,
) -> np.ndarray:
    """``TopK(v)`` for every reduced vertex in ``reduced_vertices``.

    ``dataset`` must contain every option that can be among the top-k for any
    weight vector in the enclosing preference region (the r-skyband subset
    suffices), so that its k-th highest score equals the k-th highest score
    of the full dataset.
    """
    space = PreferenceSpace(dataset.n_attributes)
    reduced_vertices = np.atleast_2d(np.asarray(reduced_vertices, dtype=float))
    scores = space.scores_at_reduced_many(dataset.values, reduced_vertices)
    thresholds = np.empty(reduced_vertices.shape[0], dtype=float)
    for column in range(scores.shape[1]):
        thresholds[column] = top_k_from_scores(scores[:, column], k).threshold
    return thresholds


def build_impact_region(
    dataset: Dataset,
    reduced_vertices: np.ndarray,
    k: int,
    clip_to_unit_box: bool = True,
    bounds: Optional[tuple[np.ndarray, np.ndarray]] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> tuple[ConvexPolytope, np.ndarray, np.ndarray]:
    """Assemble the ``oR`` polytope from the accumulated vertex set ``V_all``.

    Parameters
    ----------
    dataset:
        Filtered dataset ``D'`` (must contain all possible top-k options of
        the region; the r-skyband guarantees this).
    reduced_vertices:
        ``V_all`` in reduced preference coordinates, shape ``(m, d-1)``.
    k:
        The original query parameter ``k``.
    clip_to_unit_box:
        Intersect ``oR`` with the option-space box.  The paper normalises
        every attribute to [0, 1], and ``oR`` always contains the top corner
        of that box.
    bounds:
        Optional ``(lower, upper)`` override for the option-space box.

    Returns
    -------
    (polytope, full_weights, thresholds):
        The ``oR`` polytope, the full weight vectors of ``V_all`` and the
        per-vertex thresholds ``TopK(v)``.
    """
    space = PreferenceSpace(dataset.n_attributes)
    reduced_vertices = np.atleast_2d(np.asarray(reduced_vertices, dtype=float))
    thresholds = impact_thresholds(dataset, reduced_vertices, k)
    full_weights = space.to_full_many(reduced_vertices)

    halfspace_normals = [-full_weights[i] for i in range(full_weights.shape[0])]
    halfspace_offsets = [-thresholds[i] for i in range(full_weights.shape[0])]

    d = dataset.n_attributes
    if clip_to_unit_box or bounds is not None:
        if bounds is None:
            lower = np.zeros(d)
            upper = np.ones(d)
        else:
            lower = np.asarray(bounds[0], dtype=float)
            upper = np.asarray(bounds[1], dtype=float)
        eye = np.eye(d)
        for j in range(d):
            halfspace_normals.append(eye[j])
            halfspace_offsets.append(upper[j])
            halfspace_normals.append(-eye[j])
            halfspace_offsets.append(-lower[j])

    A = np.vstack(halfspace_normals)
    b = np.asarray(halfspace_offsets, dtype=float)
    polytope = ConvexPolytope(A, b, tol=tol)
    return polytope, full_weights, thresholds


def is_top_ranking(
    option: Sequence[float],
    full_weights: np.ndarray,
    thresholds: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
) -> bool:
    """Membership test ``option ∈ ⋂ oH(v)`` directly from weights and thresholds.

    Faster and more robust than going through the polytope: an option is
    top-ranking iff its score at every vertex of ``V_all`` reaches the
    vertex's threshold.
    """
    option = np.asarray(option, dtype=float)
    scores = full_weights @ option
    return bool(np.all(scores >= thresholds - tol.score))
