"""Option-space sharded TopRR solving (the path to 10M+ option catalogues).

The region-parallel scheme of :mod:`repro.core.parallel` chops the
*preference region*; this module chops the *option set*.  The observation
that makes it exact is that the r-skyband — the pre-filter every solver runs
first, and the stage whose cost grows with the catalogue size ``n`` — is
*decomposable over disjoint option shards*:

    For any partition of ``D`` into shards ``D_1, ..., D_s``, the global
    r-skyband of ``D`` equals the r-skyband of the union of the per-shard
    r-skybands (dominator counts taken within the union).

*Proof sketch.*  An option in the global r-skyband has fewer than ``k``
r-dominators in ``D``, hence fewer than ``k`` within its own shard, so it
survives its shard's filter: the candidate union covers the global skyband.
Conversely, take ``p`` with at least ``k`` dominators in ``D`` and consider
the set ``S`` of its dominators.  Any *maximal* element of ``S`` that was
dropped by its shard has at least ``k`` same-shard dominators, which
r-dominate ``p`` transitively and dominate the dropped element —
contradicting maximality — so every maximal dominator survives, and either
way at least ``k`` members of ``S`` are in the union.  Counting within the
union therefore reproduces every keep/drop decision of the global filter.
(The sort-based skyband in :mod:`repro.topk.skyband` relies on the same
transitivity argument; the differential suite in
``tests/test_sharded_differential.py`` checks the equality bit-for-bit.)

Concretely, a sharded solve runs in three stages:

1. the coordinator computes the query's **vertex-score matrix** (scores of
   all ``n`` options at the region's defining vertices) exactly as
   :func:`repro.pruning.rskyband.r_skyband` would, and publishes it through
   :class:`~repro.data.sharding.SharedMatrix` — worker processes attach to
   the same physical pages instead of receiving pickled arrays;
2. each shard's rows are filtered independently (serially in-process, or one
   task per shard on a process pool) — this is the ``O(n)``-iteration
   Python-loop stage that actually parallelises;
3. the per-shard candidates are merged and the skyband is re-run on the
   merged rows *of the same score matrix* (:func:`reconcile_candidates`),
   which by the decomposition above returns exactly the global r-skyband.

Because stage 3 hands the solver the bit-identical filtered dataset, working
set and RNG the unsharded path would have used, ``V_all`` and the output
region are bit-identical to :func:`repro.core.toprr.solve_toprr` — sharding
changes where the filter runs, never what the solver sees.

:func:`solve_toprr_sharded` is the one-shot front end; sessions should hold
a :class:`repro.engine.sharded.ShardedEngine` (which adds per-shard and
merged caching) instead.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.faults import fault_point
from repro.data.dataset import Dataset
from repro.data.sharding import (
    SharedMatrix,
    SharedMatrixSpec,
    ShardSpec,
    attach_shared_matrix,
    plan_shards,
)
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import vertex_score_matrix
from repro.topk.skyband import skyband_of_values
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Executor labels accepted by the sharded path.
SHARD_EXECUTORS = ("process", "serial")

#: Worker-side cache of attached shared matrices, keyed by segment name.
#: Each query publishes one segment, so the cache holds (at most) the
#: current query's matrix; attaching a new segment closes the previous ones.
_WORKER_MATRICES: Dict[str, SharedMatrix] = {}


def _worker_matrix(spec: SharedMatrixSpec) -> SharedMatrix:
    """Attach (once per segment) to the coordinator's shared score matrix."""
    matrix = _WORKER_MATRICES.get(spec.name)
    if matrix is None:
        for stale in _WORKER_MATRICES.values():
            stale.close()
        _WORKER_MATRICES.clear()
        matrix = attach_shared_matrix(spec)
        _WORKER_MATRICES[spec.name] = matrix
    return matrix


def shard_skyband(
    scores: np.ndarray, spec: ShardSpec, k: int, tol: Tolerance = DEFAULT_TOL
) -> np.ndarray:
    """Per-shard r-skyband over rows of the full vertex-score matrix.

    Returns the surviving options as ascending *parent* positional indices.
    Contiguous shards slice the matrix (zero-copy); hash shards gather their
    rows.  Empty shards (possible when ``n_shards > n``) return an empty
    index array.
    """
    bounds = spec.bounds()
    if bounds is not None:
        start, stop = bounds
        kept_local = skyband_of_values(scores[start:stop], k, tol=tol)
        return kept_local + start
    positions = spec.positions()
    kept_local = skyband_of_values(scores[positions], k, tol=tol)
    return positions[kept_local]


def _shard_filter_task(
    matrix_spec: SharedMatrixSpec, spec: ShardSpec, k: int, tol: Tolerance
) -> Tuple[int, np.ndarray, float]:
    """Process-pool task: filter one shard against the shared score matrix.

    The arguments are metadata only (segment name, shard plan integers);
    the score matrix itself is read through shared memory.  Returns
    ``(shard_id, kept parent positions, seconds)``.

    The three :func:`~repro.core.faults.fault_point` calls (``"task"`` at
    entry, ``"attach"`` before the shared-memory attach, ``"kernel"`` before
    the filter kernel) are no-ops unless a fault plan is installed in this
    worker; they exist so the fault-injection suite can crash/hang/fail this
    task at each interesting moment, keyed by shard id.
    """
    started = time.perf_counter()
    fault_point("task", spec.shard_id)
    fault_point("attach", spec.shard_id)
    matrix = _worker_matrix(matrix_spec)
    fault_point("kernel", spec.shard_id)
    kept = shard_skyband(matrix.array, spec, k, tol=tol)
    return spec.shard_id, kept, time.perf_counter() - started


def reconcile_candidates(
    scores: np.ndarray,
    shard_candidates: Sequence[np.ndarray],
    k: int,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Cross-shard top-k reconciliation: merge per-shard survivors exactly.

    Re-runs the skyband on the candidates' rows of the *same* score matrix
    the shards filtered against.  Per the decomposition argument in the
    module docstring this returns exactly the indices
    :func:`repro.pruning.rskyband.r_skyband` would have returned for the
    whole dataset — the merge is cheap because the r-skyband keeps
    per-shard candidate sets small.
    """
    arrays = [np.asarray(c, dtype=int) for c in shard_candidates]
    candidates = np.sort(np.concatenate(arrays)) if arrays else np.empty(0, dtype=int)
    if candidates.size == 0:
        return candidates
    selected = skyband_of_values(scores[candidates], k, tol=tol)
    return candidates[selected]


def sharded_r_skyband(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    n_shards: int,
    strategy: str = "contiguous",
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """In-process sharded r-skyband (filter per shard, then reconcile).

    Returns indices identical to :func:`repro.pruning.rskyband.r_skyband`;
    exists as the serial reference implementation of the sharded filter and
    for testing the decomposition directly.
    """
    scores = vertex_score_matrix(dataset, region)
    plan = plan_shards(dataset.n_options, n_shards, strategy)
    candidates = [shard_skyband(scores, spec, k, tol=tol) for spec in plan]
    return reconcile_candidates(scores, candidates, k, tol=tol)


def solve_toprr_sharded(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    n_shards: int = 4,
    strategy: str = "contiguous",
    executor: str = "process",
    n_workers: Optional[int] = None,
    method="tas*",
    clip_to_unit_box: bool = True,
    option_bounds: Optional[tuple] = None,
    rng=0,
    tol: Tolerance = DEFAULT_TOL,
    shard_timeout: Optional[float] = None,
    shard_retries: int = 2,
    shard_fallback: bool = True,
):
    """Solve one TopRR instance with the option-space sharded pre-filter.

    Parameters
    ----------
    dataset, k, region:
        The TopRR instance.
    n_shards:
        Number of disjoint option partitions.
    strategy:
        ``"contiguous"`` (zero-copy row ranges) or ``"hash"`` (splitmix64 of
        the positional index; decorrelates shards from the row order).
    executor:
        ``"process"`` (default) filters one shard per task on a process pool
        whose workers attach to the shared-memory score matrix; ``"serial"``
        runs the identical per-shard code in-process (testing, debugging,
        single-core machines).
    n_workers:
        Process-pool size (defaults to ``n_shards`` capped at the CPU count).
    method, clip_to_unit_box, option_bounds, rng, tol:
        As in :func:`repro.core.toprr.solve_toprr`.
    shard_timeout:
        Per-batch deadline (seconds) for the process-pool shard tasks; a
        still-running task past the deadline counts as hung and is retried
        on a fresh pool.  ``None`` (default) waits indefinitely.
    shard_retries:
        Re-submissions allowed per shard task after its first failure.
    shard_fallback:
        When a shard stays unrecoverable, run it serially in-process
        (bit-identical result; the query *degrades* instead of failing).
        ``False`` raises :class:`~repro.exceptions.ShardExecutionError`
        instead.

    Returns
    -------
    :class:`~repro.core.toprr.TopRRResult` — bit-identical (``V_all``,
    thresholds, output region) to the unsharded
    :func:`~repro.core.toprr.solve_toprr` with the same arguments; the
    ``stats`` carry the shard counters (``n_shards``, ``merge_seconds``,
    per-shard timings in ``extra``).

    Notes
    -----
    This is a convenience wrapper around a one-shot
    :class:`repro.engine.sharded.ShardedEngine` with caching disabled;
    sessions issuing several queries should hold the engine (the process
    pool, shard plan and caches then amortise across queries).
    """
    from repro.engine.sharded import ShardedEngine  # local import: engine builds on this module

    engine = ShardedEngine(
        dataset,
        n_shards=n_shards,
        strategy=strategy,
        executor=executor,
        n_workers=n_workers,
        method=method,
        clip_to_unit_box=clip_to_unit_box,
        option_bounds=option_bounds,
        rng=rng,
        tol=tol,
        skyband_cache_size=1,  # one entry: hands the installed filter to the solve
        result_cache_size=0,
        shard_cache_size=1,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        shard_fallback=shard_fallback,
    )
    try:
        return engine.query(k, region)
    finally:
        engine.close()
