"""Deterministic fault injection for the process-parallel execution paths.

Testing the fault-tolerance layer (:mod:`repro.core.resilient`) requires
*reproducible* worker failures: a test must be able to say "the worker
running shard 1 crashes, once" and observe the exact same recovery sequence
on every run.  This module provides that as data:

* :class:`FaultSpec` — one scheduled fault: *where* it fires (an
  instrumentation point plus a task key, e.g. a shard id), *what* happens
  (``"crash"``: the worker process dies hard, ``"hang"``: the task blocks,
  ``"raise"``: the task raises :class:`InjectedFault`), and *how many times*
  it fires before retiring.
* :class:`FaultPlan` — a set of specs plus an on-disk **state directory**.
  Firing counts are claimed by atomically creating marker files in that
  directory, so "fire once" means once *across every process and every pool
  rebuild* — exactly the semantics a retry test needs (first attempt fails,
  the retry succeeds), and the reason the schedule stays deterministic even
  though pool workers come and go.
* :func:`fault_point` — the instrumentation hook.  The worker-side task code
  calls ``fault_point(point, key)`` at its interesting moments (task start,
  shared-memory attach, kernel entry — see
  :func:`repro.core.sharded._shard_filter_task`); with no plan installed the
  call is a near-free no-op, so production paths pay one global read.

Plans travel to pool workers through the environment:
:meth:`FaultPlan.installed` exports the plan as JSON under
:data:`FAULT_PLAN_ENV`, and the pool initializer used by
:class:`repro.core.resilient.SupervisedPool` calls :func:`install_from_env`
in every fresh worker.  The coordinator process itself never auto-installs a
plan — deliberately, so the serial degradation path (which re-runs failed
tasks in-process) executes fault-free, mirroring a real deployment where the
coordinator is healthy and only workers misbehave.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError, ReproError

#: Environment variable carrying a JSON-serialised plan into pool workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault kinds a spec may schedule.
FAULT_KINDS = ("crash", "hang", "raise")

#: Instrumentation points the sharded worker task exposes (documentation —
#: :func:`fault_point` accepts any label, so new subsystems can add points
#: without touching this module).
KNOWN_POINTS = ("task", "attach", "kernel")

#: Exit code of a ``"crash"`` fault (``os._exit``, so no cleanup runs — the
#: closest in-process stand-in for a segfaulting or OOM-killed worker).
CRASH_EXIT_CODE = 17

#: Matches every task key at a point (``FaultSpec.key``).
ANY_KEY = -1


class InjectedFault(ReproError):
    """Raised by a ``"raise"`` fault — a stand-in for a worker-side error."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    point:
        Instrumentation point label, e.g. ``"task"`` (task start),
        ``"attach"`` (before the shared-memory attach) or ``"kernel"``
        (before the filter kernel).
    key:
        Task key the fault targets (the shard id on the sharded path), or
        :data:`ANY_KEY` to match every task reaching the point.
    kind:
        ``"crash"`` (``os._exit``), ``"hang"`` (sleep ``hang_seconds``) or
        ``"raise"`` (:class:`InjectedFault`).
    times:
        Fire at most this many times plan-wide (claimed via the plan's
        marker files, so the budget spans processes and pool rebuilds).
    hang_seconds:
        Sleep duration of a ``"hang"`` fault.  The supervisor's task timeout
        is expected to expire long before this does; the sleeping worker is
        then abandoned with its pool.
    """

    point: str
    key: int = ANY_KEY
    kind: str = "raise"
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise InvalidParameterError(f"times must be >= 1, got {self.times}")

    def matches(self, point: str, key: int) -> bool:
        """True when the spec targets this ``(point, key)`` pair."""
        return self.point == point and (self.key == ANY_KEY or self.key == int(key))


@dataclass
class FaultPlan:
    """A deterministic schedule of worker faults.

    Parameters
    ----------
    specs:
        The scheduled faults.  Specs are matched in order; at most one fault
        fires per :func:`fault_point` call.
    state_dir:
        Directory holding the firing-count marker files.  Created (as a
        temporary directory) when omitted.  All processes sharing the plan
        must see the same directory — which they do automatically, since the
        plan travels by value (env JSON) and the directory by path.
    """

    specs: Sequence[FaultSpec] = field(default_factory=tuple)
    state_dir: Optional[str] = None

    def __post_init__(self):
        self.specs = tuple(self.specs)
        if self.state_dir is None:
            self.state_dir = tempfile.mkdtemp(prefix="toprr-faults-")

    # ------------------------------------------------------------------ #
    # firing bookkeeping (cross-process, via atomic marker files)
    # ------------------------------------------------------------------ #
    def _claim(self, spec_index: int) -> bool:
        """Atomically claim one firing slot of spec ``spec_index``.

        Slot ``n`` is the marker file ``spec<i>.fire<n>``; ``O_EXCL``
        creation makes each slot claimable exactly once across every process
        sharing the state directory.  Returns False once all ``times`` slots
        are taken (the spec has retired).
        """
        spec = self.specs[spec_index]
        for n in range(spec.times):
            marker = os.path.join(self.state_dir, f"spec{spec_index}.fire{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self, spec_index: int) -> int:
        """How many times spec ``spec_index`` has fired so far (plan-wide)."""
        spec = self.specs[spec_index]
        count = 0
        for n in range(spec.times):
            if os.path.exists(os.path.join(self.state_dir, f"spec{spec_index}.fire{n}")):
                count += 1
        return count

    def reset(self) -> None:
        """Forget all firings (markers removed; the schedule restarts)."""
        for name in os.listdir(self.state_dir):
            if name.startswith("spec"):
                try:
                    os.unlink(os.path.join(self.state_dir, name))
                except FileNotFoundError:
                    pass

    # ------------------------------------------------------------------ #
    # serialisation and installation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """JSON form used for the environment hand-off to pool workers."""
        return json.dumps(
            {
                "state_dir": self.state_dir,
                "specs": [
                    {
                        "point": s.point,
                        "key": s.key,
                        "kind": s.kind,
                        "times": s.times,
                        "hang_seconds": s.hang_seconds,
                    }
                    for s in self.specs
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (same state directory)."""
        data = json.loads(payload)
        return cls(
            specs=tuple(FaultSpec(**spec) for spec in data["specs"]),
            state_dir=data["state_dir"],
        )

    def installed(self) -> "_InstalledPlan":
        """Context manager exporting the plan to :data:`FAULT_PLAN_ENV`.

        Inside the ``with`` block every *newly started* pool worker whose
        initializer calls :func:`install_from_env` observes the plan; the
        coordinator process stays fault-free.  The previous environment value
        is restored on exit.
        """
        return _InstalledPlan(self)


class _InstalledPlan:
    """Scoped export of a :class:`FaultPlan` into the environment."""

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._previous: Optional[str] = None

    def __enter__(self) -> FaultPlan:
        self._previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self._plan.to_json()
        return self._plan

    def __exit__(self, *exc) -> None:
        if self._previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = self._previous


#: The plan active in *this* process (workers install via initializer).
_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or, with ``None``, remove) the process-local active plan."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan currently active in this process, if any."""
    return _ACTIVE_PLAN


def install_from_env() -> Optional[FaultPlan]:
    """Install the plan serialised in :data:`FAULT_PLAN_ENV`, if present.

    This is the pool-worker initializer hook
    (:func:`repro.core.resilient.worker_initializer` calls it); with the
    variable unset it is a no-op, so production pools pay nothing.
    """
    payload = os.environ.get(FAULT_PLAN_ENV)
    plan = FaultPlan.from_json(payload) if payload else None
    install_fault_plan(plan)
    return plan


def fault_point(point: str, key: int) -> None:
    """Fire the first scheduled fault matching ``(point, key)``, if any.

    Called by worker-side task code at its instrumentation points.  With no
    plan installed this is one module-global read.  A matching ``"crash"``
    spec terminates the process with ``os._exit(CRASH_EXIT_CODE)`` (no
    cleanup, like a real crash); ``"hang"`` sleeps; ``"raise"`` raises
    :class:`InjectedFault`.  Each spec fires at most ``times`` times
    plan-wide (atomic marker files), after which it retires.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if not spec.matches(point, key):
            continue
        if not plan._claim(index):
            continue
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            return
        raise InjectedFault(
            f"injected fault at point {point!r} (key={key}, spec #{index})"
        )
