"""TAS* — the optimized Test-and-Split algorithm (Algorithm 2, Section 5).

TAS* augments TAS with the three optimizations the paper evaluates
individually in Section 6.5:

* consistent top-λ pruning (Lemma 5): options that rank above the k-th
  everywhere in the current region are removed and ``k`` reduced,
* optimized region testing (Lemma 7): a region whose vertices share the same
  top-(k-1) set is accepted without further splitting even if it is not a
  kIPR,
* k-switch splitting-hyperplane selection (Definition 4): Case 1 violations
  are split so that an entire maximal kIPR tends to be peeled off at once.

Each optimization can be switched off independently, which is exactly what
the ablation experiments of Figures 12-14 do.  All region tests run on the
vectorized :class:`~repro.core.profiles.RegionProfiles` kernel inherited
from :class:`~repro.core.base_solver.BaseTestAndSplit`.
"""

from __future__ import annotations

from repro.core.base_solver import BaseTestAndSplit
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class TASStarSolver(BaseTestAndSplit):
    """The optimized test-and-split solver of Section 5.

    Parameters
    ----------
    use_lemma5, use_lemma7, use_k_switch:
        Individual switches for the three optimizations; all enabled by
        default (full TAS*).  Disabling all three recovers plain TAS.

    Examples
    --------
    >>> TASStarSolver().describe()["strategy"]
    'k-switch'
    >>> TASStarSolver(use_k_switch=False).describe()["strategy"]
    'random'
    """

    name = "TAS*"

    def __init__(
        self,
        use_lemma5: bool = True,
        use_lemma7: bool = True,
        use_k_switch: bool = True,
        rng: RngLike = 0,
        max_regions: int = 500_000,
        tol: Tolerance = DEFAULT_TOL,
        incremental: bool = True,
    ):
        super().__init__(
            use_lemma5=use_lemma5,
            use_lemma7=use_lemma7,
            strategy="k-switch" if use_k_switch else "random",
            rng=rng,
            max_regions=max_regions,
            tol=tol,
            incremental=incremental,
        )
        self.use_k_switch = bool(use_k_switch)

    def describe(self) -> dict:
        """Configuration summary including the k-switch flag."""
        info = super().describe()
        info["use_k_switch"] = self.use_k_switch
        return info
