"""Shared machinery of the test-and-split solvers (TAS and TAS*).

Both algorithms follow the same recursive skeleton (Algorithms 1 and 2 of the
paper): pop a preference region, test it, either accept its defining vertices
into ``V_all`` or split it and recurse.  They differ only in which tests and
which splitting strategy are enabled, so a single :class:`BaseTestAndSplit`
implements the loop with three switches:

* ``use_lemma5`` — consistent top-λ pruning (Section 5.1),
* ``use_lemma7`` — optimized region testing (Section 5.2),
* ``strategy``  — ``"random"`` or ``"k-switch"`` splitting-pair selection
  (Section 5.3).

The recursion is implemented with an explicit stack so that deep partitions
do not hit Python's recursion limit.  Region testing runs on the vectorized
:class:`~repro.core.profiles.RegionProfiles` kernel and, by default, through
the incremental split-tree memo of :mod:`repro.core.scorecache`: a popped
region only pays the kernel for the vertices its cut introduced (everything
inherited from the parent — or shared with the sibling — is a cache hit,
and Lemma-5 option removals slice the cached rows by column mask), and
fresh vertices are scored together with the whole pending frontier in one
kernel call, so launches scale with tree depth rather than region count.
The memoized path is bit-identical to the from-scratch one
(``incremental=False``); the parity suite in ``tests/test_incremental.py``
asserts equal ``V_all``, stats and split decisions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.kipr import WorkingSet
from repro.core.profiles import RegionProfiles
from repro.core.scorecache import VertexScoreMemo, pending_frontier
from repro.core.splitting import split_region
from repro.core.stats import SolverStats
from repro.data.dataset import Dataset
from repro.exceptions import DegeneratePolytopeError, EmptyRegionError, InvalidParameterError
from repro.geometry.counters import geometry_counters
from repro.geometry.polytope import merge_vertex_sets
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class BaseTestAndSplit:
    """Common engine behind :class:`TASSolver` and :class:`TASStarSolver`.

    Parameters
    ----------
    use_lemma5:
        Enable consistent top-λ pruning at every recursive call.
    use_lemma7:
        Enable the optimized region test (accept regions whose vertices share
        the same top-(k-1) set without splitting them down to kIPRs).
    strategy:
        Splitting-pair selection strategy, ``"random"`` or ``"k-switch"``.
    rng:
        Seed or generator controlling the random choices of the ``"random"``
        strategy (and tie-breaking among equally good fallback pairs).
    max_regions:
        Safety cap on the number of regions processed; exceeding it raises,
        which signals a degenerate instance rather than silently looping.
    tol:
        Tolerance bundle forwarded to the geometric predicates.
    incremental:
        Route region testing through the split-tree vertex-score memo
        (:class:`~repro.core.scorecache.VertexScoreMemo`).  Disabling it
        recovers the PR-1 per-region kernel — results are bit-identical
        either way; the switch exists for parity testing and benchmarking.
    """

    #: Human-readable solver name, overridden by subclasses.
    name = "test-and-split"

    def __init__(
        self,
        use_lemma5: bool,
        use_lemma7: bool,
        strategy: str,
        rng: RngLike = 0,
        max_regions: int = 500_000,
        tol: Tolerance = DEFAULT_TOL,
        incremental: bool = True,
    ):
        self.use_lemma5 = bool(use_lemma5)
        self.use_lemma7 = bool(use_lemma7)
        self.strategy = strategy
        self._rng = ensure_rng(rng)
        self.max_regions = int(max_regions)
        self.tol = tol
        self.incremental = bool(incremental)

    # ------------------------------------------------------------------ #
    # the recursive partitioning loop
    # ------------------------------------------------------------------ #
    def partition(
        self,
        filtered: Dataset,
        k: int,
        region: PreferenceRegion,
        stats: Optional[SolverStats] = None,
        working: Optional[WorkingSet] = None,
        score_memo: Optional[VertexScoreMemo] = None,
    ) -> np.ndarray:
        """Partition ``region`` and return ``V_all`` (reduced vertex coordinates).

        ``filtered`` must already be the r-skyband (or any superset of the
        options that can appear in a top-k result inside ``region``); the
        front end in :mod:`repro.core.toprr` takes care of that.  ``working``
        optionally supplies a prebuilt root working set (the query engine
        passes one sliced from the dataset's cached affine score form), and
        ``score_memo`` a vertex-score memo bound to the same affine form —
        the engine shares one per cached r-skyband entry so repeated queries
        reuse each other's vertex scores.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if region.n_attributes != filtered.n_attributes:
            raise InvalidParameterError(
                "preference region and dataset disagree on the number of attributes"
            )
        stats = stats if stats is not None else SolverStats()
        root_working = working if working is not None else WorkingSet.from_dataset(filtered, k)
        stats.k_effective = root_working.k
        stats.n_after_lemma5 = root_working.n_active
        memo = VertexScoreMemo.resolve(root_working, score_memo, self.incremental)

        accepted_vertex_sets: List[np.ndarray] = []
        stack: List[Tuple[PreferenceRegion, WorkingSet]] = [(region, root_working)]
        first_region = True
        geometry_before = geometry_counters.snapshot()

        while stack:
            if stats.n_regions_tested >= self.max_regions:
                raise RuntimeError(
                    f"{self.name}: exceeded the safety cap of {self.max_regions} regions; "
                    "the instance is likely degenerate"
                )
            current, working = stack.pop()
            at_root = first_region
            first_region = False
            stats.n_regions_tested += 1

            try:
                vertices = current.vertices
            except (DegeneratePolytopeError, EmptyRegionError):
                continue
            if vertices.shape[0] == 0:
                continue

            profiles = self._region_profiles(memo, working, vertices, stack, stats)

            if self.use_lemma5:
                lam, phi = profiles.consistent_top_lambda(working.k)
                if lam > 0 and working.n_active - lam >= 1:
                    working = working.without_options(phi, working.k - lam)
                    stats.n_lemma5_reductions += 1
                    stats.k_effective = min(stats.k_effective, working.k)
                    if at_root:
                        # Pruning at the root region — the "after initial
                        # Lemma 5" count Figure 12 reports.  Deeper firings
                        # are subtree-local (sibling regions keep the
                        # removed options) and must not overwrite it.
                        stats.n_after_lemma5 = working.n_active
                    if memo is None:
                        profiles = RegionProfiles.compute(working, vertices)
                    else:
                        # The removed options are the shared top-λ prefix, so
                        # the reduced profiles are a column slice of the ones
                        # just computed — no rescore (see scorecache).
                        profiles = memo.lemma5_sliced_profiles(
                            working, vertices, profiles, lam, stats
                        )

            violation = profiles.kipr_violation()
            if violation is None:
                stats.n_kipr_regions += 1
                accepted_vertex_sets.append(vertices)
                continue

            if self.use_lemma7 and profiles.passes_lemma7(working.k):
                stats.n_lemma7_regions += 1
                accepted_vertex_sets.append(vertices)
                continue

            below, above, _decision, cut_found = split_region(
                current,
                working,
                profiles,
                violation,
                strategy=self.strategy,
                rng=self._rng,
                tol=self.tol,
            )
            if not cut_found:
                # Every witnessed violating pair keeps a constant score order
                # in the region's interior (the violation is a tie at a
                # boundary vertex), so the interior is rank-invariant and the
                # region can be accepted without splitting.
                stats.n_fallback_splits += 1
                stats.n_kipr_regions += 1
                accepted_vertex_sets.append(vertices)
                continue

            stats.n_splits += 1
            for child in (below, above):
                if child.is_empty() or not child.is_full_dimensional():
                    continue
                stack.append((child, working))

        if not accepted_vertex_sets:
            # Degenerate input (e.g. a region that is itself a sliver): fall
            # back to the defining vertices of the input region.
            accepted_vertex_sets.append(region.vertices)

        vall = merge_vertex_sets(accepted_vertex_sets, tol=self.tol)
        stats.n_vertices = int(vall.shape[0])
        lp_calls, qhull_calls, clip_calls, backend_fallbacks = geometry_counters.delta(
            geometry_before
        )
        stats.n_lp_calls += lp_calls
        stats.n_qhull_calls += qhull_calls
        stats.n_clip_calls += clip_calls
        stats.n_backend_fallbacks += backend_fallbacks
        return vall

    @staticmethod
    def _region_profiles(
        memo: Optional[VertexScoreMemo],
        working: WorkingSet,
        vertices: np.ndarray,
        stack: List[Tuple[PreferenceRegion, WorkingSet]],
        stats: SolverStats,
    ) -> RegionProfiles:
        """Profiles of one popped region, via the memo when enabled.

        ``stack`` supplies the pending frontier: when the region misses the
        memo, the union of unscored vertices across the whole frontier is
        scored in the same kernel call (lazily — the stack is only walked on
        a miss).
        """
        if memo is None:
            return RegionProfiles.compute(working, vertices)
        return memo.region_profiles(
            working,
            vertices,
            frontier=lambda: pending_frontier(reversed(stack)),
            stats=stats,
        )

    def describe(self) -> dict:
        """Configuration summary used in experiment reports."""
        return {
            "name": self.name,
            "use_lemma5": self.use_lemma5,
            "use_lemma7": self.use_lemma7,
            "strategy": self.strategy,
            "incremental": self.incremental,
        }
