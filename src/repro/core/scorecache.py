"""Incremental vertex-score memo for the test-and-split recursion.

The split tree the TAS/TAS* (and UTK) recursions build is massively
redundant from the kernel's point of view: every child region shares all but
a handful of defining vertices with its parent (the cut introduces the only
new ones, and even those are shared with the sibling on the other side of
the hyperplane), and Lemma 5 only ever shrinks the *column* set (the active
options), never the vertices.  The PR-1 kernel still rescored the full
``(n_vertices, n_active)`` matrix for every popped region.

:class:`VertexScoreMemo` removes that redundancy in two coordinated layers:

* **Score rows** — for each distinct vertex (keyed by the exact bytes of its
  reduced coordinates) the memo holds the full-width score row over *all*
  options of the bound affine form.  A child region only pays the kernel for
  the genuinely new vertices its cut introduced; Lemma-5 option removals
  become a column-mask slice of the cached rows instead of a rescore.
* **Order rows** — the per-vertex top-k ordering is keyed by
  ``(working set uid, vertex)``.  Within a subtree whose working set is
  unchanged (no Lemma-5 firing), inherited vertices skip the
  ``argpartition``/``lexsort`` stage entirely.

**Frontier batching.**  When a popped region does need fresh rows,
:meth:`ensure_rows` scores the union of unscored vertices across the region
*and every region still pending on the solver's stack* in one
:func:`~repro.core.profiles.affine_scores` call.  New vertices only appear
when a split pushes children, so kernel launches scale with the depth of the
split tree rather than with the number of regions.

**Bit-identity.**  All reuse goes through the shape-independent
:func:`~repro.core.profiles.affine_scores` accumulation: a row of a batched
call equals the per-vertex call exactly, and a column subset of a full-width
row equals the row computed against the sliced affine form.  Ordering rows
are per-row independent in :func:`~repro.core.profiles.topk_order_matrix`.
The memoized profiles are therefore *identical* — verdicts, splits,
``V_all`` — to the from-scratch path (asserted by the parity suite in
``tests/test_incremental.py``).

The memo is bounded (LRU on both layers) and thread-safe, so the query
engine can attach one to each cached r-skyband entry and share it across
the queries — and threads — of a session.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterable, Iterator, List, Optional, TYPE_CHECKING

import numpy as np

from repro.core.profiles import RegionProfiles, affine_scores, topk_order_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.kipr import WorkingSet
    from repro.core.stats import SolverStats
    from repro.preference.region import PreferenceRegion

#: Default bound on the memory of the score-row layer (64 MiB of rows).
DEFAULT_MAX_BYTES = 64 << 20

#: Default bound on the number of cached per-vertex top-k orderings.
DEFAULT_MAX_ORDERS = 65_536


def vertex_key(vertex: np.ndarray) -> bytes:
    """Canonical hashable fingerprint of one reduced vertex.

    The exact float64 bytes of the coordinates — two vertices share a cached
    row only when their coordinates are *identical*, which is the only case
    where reuse is sound.  ``+ 0.0`` collapses ``-0.0`` onto ``0.0`` (their
    scores are equal, but their byte patterns are not).
    """
    row = np.ascontiguousarray(np.asarray(vertex, dtype=float) + 0.0)
    return row.tobytes()


def pending_frontier(entries: Iterable[tuple]) -> List[tuple]:
    """``(vertices, working uid)`` pairs of the regions pending on a solver stack.

    Built lazily by the solvers (wrapped in a callable that
    :meth:`VertexScoreMemo.region_profiles` only invokes on a memo miss, i.e.
    about once per split rather than once per region).  Regions whose vertex
    enumeration fails (slivers the solver will skip anyway) are ignored.
    """
    from repro.exceptions import DegeneratePolytopeError, EmptyRegionError

    out: List[tuple] = []
    for region, working in entries:
        try:
            vertices = region.vertices
        except (DegeneratePolytopeError, EmptyRegionError):
            continue
        if vertices.shape[0]:
            out.append((vertices, working.uid))
    return out


class VertexScoreMemo:
    """Bounded per-working-set memo of vertex score rows and top-k orderings.

    Parameters
    ----------
    coefficients, constants:
        The affine score form of the filtered dataset ``D'`` this memo is
        bound to.  Rows are always full-width (all options of ``D'``);
        working sets restrict them by column mask.
    max_rows:
        Bound of the score-row LRU.  Defaults to whatever fits in
        ``max_bytes`` (at least 256 rows).
    max_bytes:
        Memory budget used to derive ``max_rows`` when it is not given.
    max_orders:
        Bound of the ordering LRU.
    """

    __slots__ = (
        "coefficients",
        "constants",
        "max_rows",
        "max_orders",
        "_rows",
        "_orders",
        "_lock",
        "row_hits",
        "row_misses",
        "row_evictions",
        "order_hits",
        "order_misses",
        "order_evictions",
        "n_batches",
    )

    def __init__(
        self,
        coefficients: np.ndarray,
        constants: np.ndarray,
        max_rows: Optional[int] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_orders: int = DEFAULT_MAX_ORDERS,
    ):
        self.coefficients = np.asarray(coefficients, dtype=float)
        self.constants = np.asarray(constants, dtype=float)
        if max_rows is None:
            row_bytes = max(1, self.constants.shape[0]) * 8
            max_rows = max(256, int(max_bytes // row_bytes))
        self.max_rows = int(max_rows)
        self.max_orders = int(max_orders)
        self._rows: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._orders: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.row_hits = 0
        self.row_misses = 0
        self.row_evictions = 0
        self.order_hits = 0
        self.order_misses = 0
        self.order_evictions = 0
        self.n_batches = 0

    @classmethod
    def for_working(cls, working: "WorkingSet", **kwargs) -> "VertexScoreMemo":
        """Memo bound to the affine form of a (root) working set."""
        return cls(working.coefficients, working.constants, **kwargs)

    @classmethod
    def resolve(
        cls,
        working: "WorkingSet",
        score_memo: Optional["VertexScoreMemo"],
        enabled: bool,
    ) -> Optional["VertexScoreMemo"]:
        """The memo a partition call should use.

        ``None`` when the incremental path is disabled; otherwise the
        supplied memo (validated against the working set's affine form —
        reusing rows scored for different options would be silently wrong)
        or a fresh one bound to ``working``.
        """
        from repro.exceptions import InvalidParameterError

        if not enabled:
            return None
        if score_memo is not None:
            if score_memo.n_options != working.coefficients.shape[0]:
                raise InvalidParameterError(
                    "score_memo is bound to a different affine form than the working set"
                )
            return score_memo
        return cls.for_working(working)

    @property
    def n_options(self) -> int:
        """Width of the cached rows (options of the bound ``D'``)."""
        return self.constants.shape[0]

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------ #
    # score-row layer
    # ------------------------------------------------------------------ #
    def ensure_rows(
        self,
        vertices: np.ndarray,
        frontier: Iterable[np.ndarray] = (),
        stats: Optional["SolverStats"] = None,
    ) -> int:
        """Memoize score rows for ``vertices``; returns the rows freshly scored.

        When any row of ``vertices`` is missing, the union of missing rows
        across ``vertices`` *and* every vertex array yielded by ``frontier``
        is scored in a single kernel call (``frontier`` is not touched
        otherwise).  ``stats`` receives the per-region hit/computed counts.
        """
        vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
        keys = [vertex_key(row) for row in vertices]
        with self._lock:
            missing: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
            hits = 0
            for key, row in zip(keys, vertices):
                if key in self._rows:
                    self._rows.move_to_end(key)
                    hits += 1
                elif key not in missing:
                    missing[key] = row
            self.row_hits += hits
            self.row_misses += len(missing)
        if stats is not None:
            stats.n_score_rows_reused += hits
        if not missing:
            return 0
        # A kernel launch is due: extend it with every unscored vertex of
        # the pending frontier so the launch count tracks tree depth.  The
        # frontier is materialised outside the lock — it may enumerate
        # polytope vertices, which must not serialise concurrent queries.
        frontier_batches = [np.atleast_2d(np.asarray(batch, dtype=float)) for batch in frontier]
        with self._lock:
            for batch in frontier_batches:
                for key, row in zip((vertex_key(r) for r in batch), batch):
                    if key not in self._rows and key not in missing:
                        missing[key] = row
            to_score = np.array(list(missing.values()), dtype=float)
        scores = affine_scores(to_score, self.coefficients, self.constants)
        with self._lock:
            # Rows are copied out of the batch matrix so that evicting a row
            # actually frees its memory (a view would pin the whole batch
            # alive for as long as any sibling row stays cached).
            for key, row in zip(missing, scores):
                if key not in self._rows:
                    self._rows[key] = row.copy()
                self._rows.move_to_end(key)
            while len(self._rows) > self.max_rows:
                self._rows.popitem(last=False)
                self.row_evictions += 1
            self.n_batches += 1
        if stats is not None:
            stats.n_score_rows_computed += len(missing)
            stats.n_score_batches += 1
        return len(missing)

    def _row(self, key: bytes, vertex: np.ndarray) -> np.ndarray:
        """Cached score row, recomputed on the spot if it was evicted.

        The single-row recompute is bit-identical to the batched row (the
        kernel is shape-independent), so eviction can never change results.
        """
        row = self._rows.get(key)
        if row is None:
            row = affine_scores(vertex[None, :], self.coefficients, self.constants)[0]
        return row

    def score_matrix(self, vertices: np.ndarray) -> np.ndarray:
        """Full-width ``(m, n_options)`` score matrix assembled from the memo."""
        vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
        self.ensure_rows(vertices)
        with self._lock:
            rows = [self._row(vertex_key(row), row) for row in vertices]
        if not rows:
            return np.empty((0, self.n_options))
        return np.array(rows)

    # ------------------------------------------------------------------ #
    # profile assembly (order-row layer on top of the score rows)
    # ------------------------------------------------------------------ #
    def region_profiles(
        self,
        working: "WorkingSet",
        vertices: np.ndarray,
        frontier: Optional[Callable[[], List[tuple]]] = None,
        stats: Optional["SolverStats"] = None,
    ) -> RegionProfiles:
        """Memo-backed replacement for :meth:`RegionProfiles.compute`.

        ``frontier`` is a zero-argument callable returning
        ``(vertices, working uid)`` pairs of the regions still pending on the
        solver's stack (see :func:`pending_frontier`); it is only invoked on
        a memo miss.  Score rows missing from the memo are computed together
        with the union of unscored frontier vertices in one kernel call, and
        missing top-k orderings are batched with the pending regions that
        share this working set — so both kernel stages launch per split-tree
        layer, not per region.  Orderings derive from the cached full-width
        rows column-sliced to ``working.active``; everything is bit-identical
        to a from-scratch computation.
        """
        vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
        frontier_entries: Optional[List[tuple]] = None

        def entries() -> List[tuple]:
            nonlocal frontier_entries
            if frontier_entries is None:
                frontier_entries = list(frontier()) if frontier is not None else []
            return frontier_entries

        def frontier_vertex_sets() -> Iterator[np.ndarray]:
            for pending_vertices, _uid in entries():
                yield pending_vertices

        self.ensure_rows(vertices, frontier=frontier_vertex_sets(), stats=stats)
        keys = [vertex_key(row) for row in vertices]
        uid = working.uid
        width = min(working.k, working.n_active)
        ordered = np.empty((vertices.shape[0], width), dtype=working.active.dtype)
        missing: List[int] = []
        with self._lock:
            for index, key in enumerate(keys):
                cached = self._orders.get((uid, key))
                if cached is None:
                    missing.append(index)
                else:
                    self._orders.move_to_end((uid, key))
                    ordered[index] = cached
            self.order_hits += len(keys) - len(missing)
            self.order_misses += len(missing)
        if stats is not None:
            stats.n_order_rows_reused += len(keys) - len(missing)
        if missing:
            # Batch the ordering of this region's fresh vertices with every
            # unordered vertex of the pending regions that share this
            # working set: their pops then hit, and the per-batch fixed cost
            # of the top-k selection amortises over the whole tree layer.
            batch_keys = [keys[i] for i in missing]
            batch_vertices = [vertices[i] for i in missing]
            seen = set(batch_keys)
            # Materialise the frontier before taking the lock: it may
            # enumerate polytope vertices, which must not serialise
            # concurrent queries sharing this memo.
            same_working = [
                np.atleast_2d(np.asarray(pending_vertices, dtype=float))
                for pending_vertices, pending_uid in entries()
                if pending_uid == uid
            ]
            with self._lock:
                for pending_vertices in same_working:
                    for row in pending_vertices:
                        key = vertex_key(row)
                        if key in seen or (uid, key) in self._orders:
                            continue
                        seen.add(key)
                        batch_keys.append(key)
                        batch_vertices.append(row)
            self.ensure_rows(np.array(batch_vertices))
            with self._lock:
                rows = [self._row(k, v) for k, v in zip(batch_keys, batch_vertices)]
            scores = np.array(rows)
            if working.n_active != self.n_options:
                # Column-mask slice of the full-width rows: how Lemma-5
                # option removals reuse the cached scores instead of
                # rescoring.  Skipped while no option was removed (the
                # active set is still the identity).
                scores = scores[:, working.active]
            fresh = topk_order_matrix(scores, working.active, working.k)
            ordered[missing] = fresh[: len(missing)]
            if stats is not None:
                stats.n_order_rows_computed += len(batch_keys)
            with self._lock:
                for key, row in zip(batch_keys, fresh):
                    self._orders[(uid, key)] = row
                while len(self._orders) > self.max_orders:
                    self._orders.popitem(last=False)
                    self.order_evictions += 1
        return RegionProfiles(vertices, ordered, working)

    def lemma5_sliced_profiles(
        self,
        working: "WorkingSet",
        vertices: np.ndarray,
        parent: RegionProfiles,
        lam: int,
        stats: Optional["SolverStats"] = None,
    ) -> RegionProfiles:
        """Profiles after a Lemma-5 reduction, as a column slice of the parent's.

        The removed options are exactly the shared top-λ prefix of every
        vertex's ordering (``consistent_top_lambda`` guarantees ranks
        ``1..λ`` at every vertex are the set φ), and removing options never
        reorders the remaining ones, so dropping the first λ columns of the
        parent's ordered matrix *is* the top-``(k-λ)`` ordering over the
        reduced working set — no rescore, no re-sort, bit-identical to a
        from-scratch computation.  The sliced rows are stored under the new
        working set's uid so the region's children hit them directly.
        """
        vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
        ordered = parent.ordered[:, lam:]
        keys = [vertex_key(row) for row in vertices]
        uid = working.uid
        with self._lock:
            for key, row in zip(keys, ordered):
                self._orders[(uid, key)] = np.ascontiguousarray(row)
            while len(self._orders) > self.max_orders:
                self._orders.popitem(last=False)
                self.order_evictions += 1
            self.order_hits += len(keys)
        if stats is not None:
            # Scores and orderings were both reused wholesale; count them so
            # the hit rate reflects the avoided work.
            stats.n_score_rows_reused += len(keys)
            stats.n_order_rows_reused += len(keys)
        return RegionProfiles(vertices, ordered, working)

    # ------------------------------------------------------------------ #
    # mutation salvage
    # ------------------------------------------------------------------ #
    def remapped(
        self,
        coefficients: np.ndarray,
        constants: np.ndarray,
        column_map: np.ndarray,
    ) -> "VertexScoreMemo":
        """A memo rebound to a mutated dataset's affine form, keeping score rows.

        ``column_map[j]`` names the column of *this* memo that holds the
        scores of the mutated dataset's ``j``-th option, or ``-1`` for a
        freshly inserted option (see
        :func:`repro.core.mutation.position_column_map`).  Surviving columns
        are copied out of the cached rows; inserted columns are scored in one
        kernel call against the column slice of the new affine form — both
        operations are bit-identical to scoring the full new row from scratch
        (:func:`~repro.core.profiles.affine_scores` is element-wise per
        column).  Ordering rows are *not* carried over: they are keyed by
        working-set uid, and every working set of the old dataset dies with
        the mutation.
        """
        fresh = VertexScoreMemo(
            coefficients,
            constants,
            max_orders=self.max_orders,
        )
        column_map = np.asarray(column_map, dtype=int)
        surviving = column_map >= 0
        old_columns = column_map[surviving]
        new_columns = np.flatnonzero(~surviving)
        with self._lock:
            cached = list(self._rows.items())
        if not cached:
            return fresh
        if new_columns.size:
            # The keys are the exact float64 bytes of the reduced vertices,
            # so the vertices themselves round-trip losslessly.
            width = fresh.coefficients.shape[1]
            vertices = np.array(
                [np.frombuffer(key, dtype=float) for key, _row in cached]
            ).reshape(len(cached), width)
            inserted_scores = affine_scores(
                vertices,
                fresh.coefficients[new_columns],
                fresh.constants[new_columns],
            )
        for index, (key, old_row) in enumerate(cached):
            row = np.empty(fresh.n_options)
            row[surviving] = old_row[old_columns]
            if new_columns.size:
                row[new_columns] = inserted_scores[index]
            fresh._rows[key] = row
        while len(fresh._rows) > fresh.max_rows:
            fresh._rows.popitem(last=False)
            fresh.row_evictions += 1
        return fresh

    # ------------------------------------------------------------------ #
    # snapshot export / seeding (durable warm caches)
    # ------------------------------------------------------------------ #
    def export_rows(self) -> List[tuple]:
        """Snapshot of the score-row layer as ``(vertex bytes, row)`` pairs.

        Oldest-first, so replaying the pairs through :meth:`seed_rows`
        reproduces the LRU recency order exactly.  The keys are the exact
        float64 bytes of the reduced vertices and the rows are full-width
        score vectors — everything the snapshot format needs to bring a
        restarted replica's memo up byte-identical.
        """
        with self._lock:
            return [(key, row.copy()) for key, row in self._rows.items()]

    def export_orders(self, uid: int) -> List[tuple]:
        """Snapshot of the ordering rows stored under one working-set uid.

        Only the given ``uid``'s rows are exportable: uids are process-local,
        so a snapshot can only meaningfully persist the orderings of the
        working set it also persists (the root working set of a cached
        r-skyband entry) and must re-key them on restore via
        :meth:`seed_orders`.  Returned oldest-first, keys as vertex bytes.
        """
        with self._lock:
            return [
                (key, row.copy())
                for (row_uid, key), row in self._orders.items()
                if row_uid == uid
            ]

    def seed_rows(self, items: Iterable[tuple]) -> int:
        """Install exported ``(vertex bytes, row)`` pairs; returns rows kept.

        Rows are adopted in iteration order (so an :meth:`export_rows` dump
        restores its recency order) and the LRU bound applies as usual.
        Counters are untouched — a restored replica starts its hit/miss
        accounting fresh.
        """
        from repro.exceptions import InvalidParameterError

        count = 0
        with self._lock:
            for key, row in items:
                row = np.ascontiguousarray(np.asarray(row, dtype=float))
                if row.shape != (self.n_options,):
                    raise InvalidParameterError(
                        f"seeded score row has width {row.shape}, memo expects "
                        f"({self.n_options},)"
                    )
                self._rows[bytes(key)] = row
                self._rows.move_to_end(bytes(key))
                count += 1
            while len(self._rows) > self.max_rows:
                self._rows.popitem(last=False)
                self.row_evictions += 1
        return count

    def seed_orders(self, uid: int, items: Iterable[tuple]) -> int:
        """Install exported ordering rows under a (fresh) working-set uid."""
        count = 0
        with self._lock:
            for key, row in items:
                self._orders[(int(uid), bytes(key))] = np.ascontiguousarray(
                    np.asarray(row)
                )
                self._orders.move_to_end((int(uid), bytes(key)))
                count += 1
            while len(self._orders) > self.max_orders:
                self._orders.popitem(last=False)
                self.order_evictions += 1
        return count

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def info(self) -> dict:
        """Hit/miss/eviction counters and current sizes of both layers."""
        with self._lock:
            return {
                "rows": {
                    "hits": self.row_hits,
                    "misses": self.row_misses,
                    "evictions": self.row_evictions,
                    "currsize": len(self._rows),
                    "maxsize": self.max_rows,
                },
                "orders": {
                    "hits": self.order_hits,
                    "misses": self.order_misses,
                    "evictions": self.order_evictions,
                    "currsize": len(self._orders),
                    "maxsize": self.max_orders,
                },
                "n_batches": self.n_batches,
            }

    def clear(self) -> None:
        """Drop all cached rows and orderings (counters are kept)."""
        with self._lock:
            self._rows.clear()
            self._orders.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VertexScoreMemo(n_options={self.n_options}, rows={len(self._rows)}/"
            f"{self.max_rows}, orders={len(self._orders)}/{self.max_orders}, "
            f"batches={self.n_batches})"
        )
