"""The user-facing TopRR front end.

:func:`solve_toprr` wires together the full pipeline of the paper:

1. pre-filter the dataset with the r-skyband (Section 6.3 — the filter the
   paper selects for all methods),
2. partition the preference region with the chosen solver (PAC, TAS or TAS*)
   to obtain the vertex set ``V_all``,
3. apply Theorem 1: intersect the impact halfspaces of the vertices in
   ``V_all`` (clipped to the option-space box) to obtain the output region
   ``oR``.

The result object :class:`TopRRResult` exposes the region both as a polytope
and through a fast membership predicate, together with all the bookkeeping
the experiment harness needs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.impact import is_top_ranking
from repro.core.pac import PACSolver
from repro.core.stats import SolverStats
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.polytope import ConvexPolytope
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Method labels accepted by :func:`solve_toprr`.
METHODS = ("tas*", "tas", "pac")

SolverLike = Union[str, TASSolver, TASStarSolver, PACSolver]


class TopRRResult:
    """The answer to a TopRR query.

    Attributes
    ----------
    dataset:
        The original dataset ``D``.
    filtered:
        The r-skyband subset ``D'`` actually processed.
    k:
        The query parameter.
    region:
        The preference region ``wR``.
    vertices_reduced:
        ``V_all`` in reduced preference coordinates, shape ``(m, d-1)``.
    full_weights:
        ``V_all`` lifted to full weight vectors, shape ``(m, d)``.
    thresholds:
        ``TopK(v)`` for every vertex of ``V_all``.
    polytope:
        The output region ``oR`` (clipped to the option-space box).
    stats:
        Solver bookkeeping (splits, vertices, timings, ...).
    method:
        Name of the solver that produced the result.
    """

    def __init__(
        self,
        dataset: Dataset,
        filtered: Dataset,
        k: int,
        region: PreferenceRegion,
        vertices_reduced: np.ndarray,
        full_weights: np.ndarray,
        thresholds: np.ndarray,
        polytope: ConvexPolytope,
        stats: SolverStats,
        method: str,
        tol: Tolerance = DEFAULT_TOL,
    ):
        self.dataset = dataset
        self.filtered = filtered
        self.k = int(k)
        self.region = region
        self.vertices_reduced = vertices_reduced
        self.full_weights = full_weights
        self.thresholds = thresholds
        self.polytope = polytope
        self.stats = stats
        self.method = method
        self._tol = tol

    # ------------------------------------------------------------------ #
    # membership and geometry
    # ------------------------------------------------------------------ #
    def contains(self, option: Sequence[float]) -> bool:
        """True if placing a new option at ``option`` makes it top-ranking for ``wR``.

        The test is performed directly against the impact halfspaces (score
        at every vertex of ``V_all`` at least the vertex's threshold); the
        option-space box is *not* enforced here, mirroring the paper's remark
        that domain constraints are applied after ``oR`` computation.
        """
        return is_top_ranking(option, self.full_weights, self.thresholds, tol=self._tol)

    def contains_many(self, options: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` for an ``(n, d)`` array of candidate options."""
        options = np.asarray(options, dtype=float)
        scores = options @ self.full_weights.T
        return np.all(scores >= self.thresholds[None, :] - self._tol.score, axis=1)

    @property
    def n_vertices(self) -> int:
        """Size of ``V_all``."""
        return int(self.vertices_reduced.shape[0])

    @property
    def option_region_vertices(self) -> np.ndarray:
        """Vertices of the output polytope ``oR`` (clipped to the option box)."""
        return self.polytope.vertices

    def volume(self) -> float:
        """Volume of ``oR`` within the option-space box."""
        return self.polytope.volume()

    def is_empty(self) -> bool:
        """True when no placement inside the option-space box is top-ranking."""
        return self.polytope.is_empty()

    def existing_top_ranking_options(self) -> np.ndarray:
        """Positional indices of *existing* options that are already top-ranking for ``wR``."""
        mask = self.contains_many(self.dataset.values)
        return np.flatnonzero(mask)

    def summary(self) -> dict:
        """Compact dictionary used by the CLI and the experiment reports."""
        return {
            "method": self.method,
            "k": self.k,
            "n_options": self.dataset.n_options,
            "n_filtered": self.filtered.n_options,
            "n_vertices": self.n_vertices,
            "volume": self.volume(),
            "seconds": self.stats.seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TopRRResult(method={self.method!r}, k={self.k}, "
            f"|V_all|={self.n_vertices}, |D'|={self.filtered.n_options})"
        )


def make_solver(method: SolverLike, rng: RngLike = 0, tol: Tolerance = DEFAULT_TOL):
    """Instantiate a solver from a method label, or pass an existing solver through."""
    if not isinstance(method, str):
        return method
    label = method.lower().replace("_", "-")
    if label in ("tas*", "tas-star", "tasstar"):
        return TASStarSolver(rng=rng, tol=tol)
    if label == "tas":
        return TASSolver(rng=rng, tol=tol)
    if label == "pac":
        return PACSolver(rng=rng, tol=tol)
    raise InvalidParameterError(f"unknown TopRR method {method!r}; expected one of {METHODS}")


def solve_toprr(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    method: SolverLike = "tas*",
    prefilter: bool = True,
    clip_to_unit_box: bool = True,
    option_bounds: Optional[tuple] = None,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
    shards: Optional[int] = None,
    shard_strategy: str = "contiguous",
    shard_executor: str = "process",
    n_workers: Optional[int] = None,
    shard_timeout: Optional[float] = None,
    shard_retries: int = 2,
    shard_fallback: bool = True,
) -> TopRRResult:
    """Solve a TopRR instance end to end.

    Parameters
    ----------
    dataset:
        The option dataset ``D``.
    k:
        Rank requirement: the new option must be in the top-k for every
        weight vector in ``region``.
    region:
        The target preference region ``wR`` (a convex polytope in the reduced
        preference space).
    method:
        ``"tas*"`` (default), ``"tas"``, ``"pac"``, or an already configured
        solver instance.
    prefilter:
        Apply the r-skyband pre-filter first (recommended; disabling it is
        only useful for measuring the filters themselves).
    clip_to_unit_box:
        Clip ``oR`` to the unit option-space box ``[0, 1]^d``.
    option_bounds:
        Optional ``(lower, upper)`` arrays overriding the option-space box.
    rng:
        Seed or generator for the solver's randomised choices.
    tol:
        Numerical tolerance bundle.
    shards:
        When set (``>= 1``), run the option-space sharded pre-filter of
        :func:`repro.core.sharded.solve_toprr_sharded` over this many
        disjoint option partitions — the result is bit-identical, only the
        filter stage parallelises.  Requires ``prefilter=True`` (sharding
        *is* the filter stage).
    shard_strategy:
        Shard assignment (``"contiguous"`` or ``"hash"``); ignored without
        ``shards``.
    shard_executor:
        ``"process"`` (shared-memory worker pool) or ``"serial"``; ignored
        without ``shards``.
    n_workers:
        Process-pool size for ``shard_executor="process"``; ignored without
        ``shards``.
    shard_timeout:
        Per-batch deadline (seconds) for pool shard tasks; a still-running
        task past it counts as hung and is retried on a fresh pool.
        ``None`` waits indefinitely.  Ignored without ``shards``.
    shard_retries:
        Pool re-submissions allowed per shard task after its first failure;
        ignored without ``shards``.
    shard_fallback:
        Degrade unrecoverable shard tasks to serial in-process execution
        (default; bit-identical results) instead of raising
        :class:`~repro.exceptions.ShardExecutionError`.  Ignored without
        ``shards``.

    Returns
    -------
    :class:`TopRRResult`

    Notes
    -----
    Since the introduction of :class:`repro.engine.TopRREngine` this function
    is a convenience wrapper around a one-shot engine with caching disabled;
    sessions that issue several queries against the same dataset should hold
    an engine instead (bind once, query many).
    """
    if shards is not None:
        if not prefilter:
            raise InvalidParameterError(
                "shards requires prefilter=True: sharding parallelises the r-skyband "
                "pre-filter, so there is no sharded variant of the unfiltered solve"
            )
        from repro.core.sharded import solve_toprr_sharded  # local import: builds on this module

        return solve_toprr_sharded(
            dataset,
            k,
            region,
            n_shards=int(shards),
            strategy=shard_strategy,
            executor=shard_executor,
            n_workers=n_workers,
            method=method,
            clip_to_unit_box=clip_to_unit_box,
            option_bounds=option_bounds,
            rng=rng,
            tol=tol,
            shard_timeout=shard_timeout,
            shard_retries=shard_retries,
            shard_fallback=shard_fallback,
        )

    from repro.engine.engine import TopRREngine  # local import: engine builds on this module

    engine = TopRREngine(
        dataset,
        method=method,
        prefilter=prefilter,
        clip_to_unit_box=clip_to_unit_box,
        option_bounds=option_bounds,
        rng=rng,
        tol=tol,
        skyband_cache_size=0,
        result_cache_size=0,
    )
    return engine.query(k, region)
