"""Array-backed vertex profiles: the vectorized kernel of the TAS solvers.

The test-and-split recursion evaluates every popped region by looking at its
defining vertices (Lemma 1).  The legacy implementation in
:mod:`repro.core.kipr` builds one :class:`~repro.core.kipr.VertexProfile`
(a tuple plus two frozensets) per vertex in a Python loop, and answers the
three region questions — kIPR (Lemma 3), optimized test (Lemma 7),
consistent top-λ (Lemma 5) — with per-vertex set comparisons.  For the hot
path that is almost all of the solve time.

:class:`RegionProfiles` replaces that with one batched computation:

* all vertex scores of a region are obtained in a single
  ``(n_vertices, n_active)`` matrix product against the working set's affine
  score form,
* the per-vertex top-k orderings come from one batched
  ``argpartition``/``lexsort`` over that matrix (with an exact fallback when
  score ties straddle the k-boundary, so verdicts are bit-identical to the
  per-vertex path),
* the three lemma tests are plain array comparisons over the resulting
  ``(n_vertices, k)`` index matrix.

The object is sequence-like (``len``, indexing, iteration) and yields legacy
:class:`~repro.core.kipr.VertexProfile` views on demand, so code that only
needs one vertex (splitting-pair selection, the UTK anchor) keeps working
unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.kipr import VertexProfile, WorkingSet
    from repro.preference.region import PreferenceRegion

#: Below this many active options the partition fast path is not worth it.
_PARTITION_MIN_ACTIVE = 64


def affine_scores(
    vertices: np.ndarray, coefficients: np.ndarray, constants: np.ndarray
) -> np.ndarray:
    """``(m, n)`` score matrix ``constants + vertices . coefficients^T``.

    Accumulated with elementwise outer products (one per reduced dimension,
    in fixed order) instead of a BLAS ``matmul``: BLAS picks different
    kernels (FMA, blocking) depending on the operand shapes, so a batched
    product is not bit-identical to a per-vertex one and near-exact score
    ties would break differently between the vectorized kernel and the
    per-vertex reference path.  Elementwise ufuncs round every element the
    same way regardless of batch shape, which keeps the two paths — and any
    row subset — bit-identical.  The reduced dimension is small (``d - 1``,
    single digits in the paper's experiments), so this stays cheap.
    """
    vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
    scores = np.multiply.outer(vertices[:, 0], coefficients[:, 0])
    for j in range(1, vertices.shape[1]):
        scores += np.multiply.outer(vertices[:, j], coefficients[:, j])
    scores += constants
    return scores


def _topk_order_full(scores: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """Top-k global ids per row with the exact legacy tie-break (reference path).

    Equivalent to the per-vertex ``np.lexsort((ids, -scores))[:k]`` of the
    legacy kernel.  Narrow rows sort in one batched ``lexsort``; wide rows
    first select every entry that can reach the top k — score at least the
    k-th largest value, boundary ties included — via ``argpartition`` and
    only sort the selection.  Entries below the boundary sort after every
    selected one under the ``(-score, id)`` key, so restricting the sort to
    the selection returns the identical first k rows.
    """
    n = scores.shape[1]
    if n < _PARTITION_MIN_ACTIVE or n <= 4 * k:
        keys = np.broadcast_to(ids, scores.shape)
        order = np.lexsort((keys, -scores), axis=-1)[:, :k]
        return ids[order]
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    boundary = np.take_along_axis(scores, part, axis=1).min(axis=1)
    out = np.empty((scores.shape[0], k), dtype=ids.dtype)
    for row in range(scores.shape[0]):
        selected = np.flatnonzero(scores[row] >= boundary[row])
        selected_ids = ids[selected]
        order = np.lexsort((selected_ids, -scores[row, selected]))[:k]
        out[row] = selected_ids[order]
    return out


def _topk_order_partition(scores: np.ndarray, ids: np.ndarray, k: int) -> Optional[np.ndarray]:
    """Top-k global ids per row via ``argpartition``; ``None`` when inexact.

    ``argpartition`` selects *some* k row entries with the largest scores; the
    selection is only guaranteed to match the legacy tie-break (ascending id
    among equal scores) when no tie straddles the k-boundary.  The boundary
    check below is exact — float equality, the same comparison the legacy
    ``lexsort`` performs — and the function declines (returns ``None``)
    whenever a straddling tie is detected, letting the caller fall back to
    the full sort.
    """
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    part_scores = np.take_along_axis(scores, part, axis=1)
    boundary = part_scores.min(axis=1)
    if np.any((scores >= boundary[:, None]).sum(axis=1) != k):
        return None
    part_ids = ids[part]
    order = np.lexsort((part_ids, -part_scores), axis=-1)
    return np.take_along_axis(part_ids, order, axis=1)


def topk_order_matrix(scores: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """``(n_rows, k)`` matrix of the top-k ids of every row of ``scores``.

    Rows are ordered by decreasing score, ties broken by ascending id.  Wide
    rows go through one ``argpartition``; rows where a score tie straddles
    the k-boundary (where ``argpartition``'s selection is not guaranteed to
    match the legacy tie-break) are resolved individually by sorting every
    entry at or above the boundary score — per row, so one tie-heavy vertex
    no longer drags its whole batch onto the full-sort path.  Results are
    bit-identical to the batched ``lexsort`` reference in every case.
    """
    n = scores.shape[1]
    k = min(k, n)
    if k == 0 or scores.shape[0] == 0:
        return np.empty((scores.shape[0], k), dtype=ids.dtype)
    if n < _PARTITION_MIN_ACTIVE or n <= 4 * k:
        keys = np.broadcast_to(ids, scores.shape)
        order = np.lexsort((keys, -scores), axis=-1)[:, :k]
        return ids[order]
    # One ascending two-pivot partition per batch: positions n-k.. hold the k
    # largest entries (position n-k exactly the k-th largest), position
    # n-k-1 exactly the (k+1)-th largest.  A tie straddles the k-boundary
    # iff those two values are equal — no full-width boundary mask needed.
    part = np.argpartition(scores, (n - k - 1, n - k), axis=1)
    top = part[:, n - k :]
    top_scores = np.take_along_axis(scores, top, axis=1)
    kth_value = top_scores[:, 0]
    next_value = np.take_along_axis(scores, part[:, n - k - 1 : n - k], axis=1)[:, 0]
    straddle = next_value == kth_value
    out = np.empty((scores.shape[0], k), dtype=ids.dtype)
    clean = np.flatnonzero(~straddle)
    if clean.size:
        clean_ids = ids[top[clean]]
        order = np.lexsort((clean_ids, -top_scores[clean]), axis=-1)
        out[clean] = np.take_along_axis(clean_ids, order, axis=1)
    for row in np.flatnonzero(straddle):
        selected = np.flatnonzero(scores[row] >= kth_value[row])
        selected_ids = ids[selected]
        order = np.lexsort((selected_ids, -scores[row, selected]))[:k]
        out[row] = selected_ids[order]
    return out


class RegionProfiles:
    """Top-k information of every defining vertex of a region, as arrays.

    Attributes
    ----------
    vertices:
        ``(m, d-1)`` reduced weight vectors of the region's vertices.
    ordered:
        ``(m, k)`` positional indices (into ``D'``) of each vertex's top-k
        active options, by decreasing score, ties broken by ascending index.
    sorted_sets:
        ``ordered`` with every row sorted ascending — the order-insensitive
        top-k sets, in a form where set equality is row equality.
    kth:
        ``(m,)`` the k-th (last ordered) option of every vertex.
    """

    __slots__ = ("vertices", "ordered", "sorted_sets", "kth", "_working")

    def __init__(self, vertices: np.ndarray, ordered: np.ndarray, working: "WorkingSet"):
        self.vertices = vertices
        self.ordered = ordered
        self.sorted_sets = np.sort(ordered, axis=1) if ordered.size else ordered
        self.kth = ordered[:, -1] if ordered.shape[1] else np.empty(ordered.shape[0], dtype=int)
        self._working = working

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def compute(cls, working: "WorkingSet", vertices: np.ndarray) -> "RegionProfiles":
        """Profiles of every row of ``vertices`` for the current working set."""
        vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
        coefficients, constants = working.active_form()
        scores = affine_scores(vertices, coefficients, constants)
        return cls.from_scores(working, vertices, scores)

    @classmethod
    def from_scores(
        cls, working: "WorkingSet", vertices: np.ndarray, scores: np.ndarray
    ) -> "RegionProfiles":
        """Profiles from an already computed ``(m, n_active)`` score matrix.

        Entry point of the incremental split-tree path
        (:mod:`repro.core.scorecache`), which assembles the score matrix from
        memoized per-vertex rows instead of a fresh kernel call.  Because
        :func:`affine_scores` is shape-independent, a matrix assembled from
        cached rows (and column-sliced to the active options) is bit-identical
        to the one :meth:`compute` produces, so the resulting profiles — and
        every verdict derived from them — are exactly the same.
        """
        ordered = topk_order_matrix(scores, working.active, working.k)
        return cls(vertices, ordered, working)

    @classmethod
    def of_region(cls, working: "WorkingSet", region: "PreferenceRegion") -> "RegionProfiles":
        """Profiles of every defining vertex of ``region``."""
        return cls.compute(working, region.vertices)

    # ------------------------------------------------------------------ #
    # sequence protocol (legacy VertexProfile views)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.vertices.shape[0]

    def __getitem__(self, index: int) -> "VertexProfile":
        from repro.core.kipr import VertexProfile

        ordered = tuple(int(i) for i in self.ordered[index])
        return VertexProfile(
            vertex=self.vertices[index],
            ordered=ordered,
            top_set=frozenset(ordered),
            kth=ordered[-1],
        )

    def __iter__(self) -> Iterator["VertexProfile"]:
        for index in range(len(self)):
            yield self[index]

    @property
    def working(self) -> "WorkingSet":
        """The working set these profiles were computed for."""
        return self._working

    # ------------------------------------------------------------------ #
    # the three region tests as array comparisons
    # ------------------------------------------------------------------ #
    def kipr_violation(self) -> Optional[Tuple[int, int, str]]:
        """First vertex pair violating the kIPR conditions (Lemma 3), or ``None``.

        Mirrors :func:`repro.core.kipr.find_kipr_violation`: Case 1
        (different top-k sets) is reported before Case 2 (same set, different
        k-th option), always against vertex 0.
        """
        if len(self) == 0 or self.ordered.shape[1] == 0:
            return None
        set_mismatch = np.any(self.sorted_sets != self.sorted_sets[0], axis=1)
        if np.any(set_mismatch):
            return 0, int(np.argmax(set_mismatch)), "set"
        kth_mismatch = self.kth != self.kth[0]
        if np.any(kth_mismatch):
            return 0, int(np.argmax(kth_mismatch)), "kth"
        return None

    def is_kipr(self) -> bool:
        """Lemma 3 verdict: one shared top-k set and k-th option."""
        return self.kipr_violation() is None

    def passes_lemma7(self, k: int) -> bool:
        """Lemma 7 verdict: every vertex yields the same top-(k-1) set."""
        if k <= 1 or len(self) == 0:
            return True
        prefix = self.ordered[:, : k - 1]
        prefix = np.sort(prefix, axis=1) if prefix.size else prefix
        return bool(np.all(prefix == prefix[0]))

    def consistent_top_lambda(self, k: int) -> Tuple[int, frozenset]:
        """Largest λ < k shared as a top-λ set by all vertices (Lemma 5)."""
        if k <= 1 or len(self) == 0:
            return 0, frozenset()
        max_lambda = min(k - 1, self.ordered.shape[1])
        if max_lambda <= 0:
            return 0, frozenset()
        # One sort of the longest prefix; shorter prefixes reuse it by
        # re-sorting the clipped columns (cheap: max_lambda < k columns).
        for lam in range(max_lambda, 0, -1):
            prefix = np.sort(self.ordered[:, :lam], axis=1)
            if np.all(prefix == prefix[0]):
                return lam, frozenset(int(i) for i in self.ordered[0, :lam])
        return 0, frozenset()

    # ------------------------------------------------------------------ #
    # helpers for splitting-pair search
    # ------------------------------------------------------------------ #
    def candidate_pool(self) -> np.ndarray:
        """Sorted union of the vertices' top-k sets (splitting candidates)."""
        return np.unique(self.ordered)

    def pool_scores(self, pool: np.ndarray) -> np.ndarray:
        """``(m, len(pool))`` scores of the pool options at every vertex."""
        coefficients = self._working.coefficients[pool]
        constants = self._working.constants[pool]
        return affine_scores(self.vertices, coefficients, constants)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RegionProfiles(n_vertices={len(self)}, k={self.ordered.shape[1]}, "
            f"n_active={self._working.n_active})"
        )
