"""Incremental cache maintenance for mutable datasets.

Real catalogues churn: options are inserted and deleted between queries.
Before this module the only correct response was
:meth:`~repro.engine.engine.TopRREngine.clear_caches` — discarding every
r-skyband entry, result LRU entry and
:class:`~repro.core.scorecache.VertexScoreMemo` row, most of which are still
valid.  This module provides the machinery to keep the valid ones:

* :class:`MutationDelta` — the record of one
  :meth:`~repro.data.dataset.Dataset.insert_options` /
  :meth:`~repro.data.dataset.Dataset.delete_options` step, linking a parent
  dataset version to its child;
* :func:`entry_survival` — the *eviction-soundness* test deciding whether a
  cached ``(k, region)`` intermediate is provably unaffected by the delta;
* :class:`MutationReport` — the survivor/eviction accounting the engines
  return from their ``apply_delta`` hooks.

Eviction-soundness lemma
------------------------
Cached entries are byte-level artefacts of
:func:`~repro.pruning.rskyband.r_skyband`, which runs the sort-based
k-skyband algorithm (:func:`~repro.topk.skyband.skyband_of_values`) on the
vertex-score matrix ``S = D.values @ V_region^T``.  That algorithm processes
rows in decreasing row-sum order (stable ties by position) and admits a row
into the band iff fewer than ``k`` *already-admitted band rows* dominate it;
rows refused admission never influence any later decision.  Two consequences,
both exact at the byte level and independent of the dominance tolerance:

1. **Delete.**  Removing rows that are not in the band leaves every
   admission decision — and therefore the band, as a set of surviving rows —
   unchanged: the removed rows never entered the band, so no decision ever
   consulted them, and a stable sort of the surviving rows preserves their
   relative processing order.

2. **Insert.**  Appending rows at the end of the dataset leaves the
   processing order of the existing rows unchanged (appended rows sort after
   all existing rows with equal sums).  An appended row ``x`` is refused iff,
   at its processing position, at least ``k`` of the band rows processed
   before it dominate it.  If *every* appended row is refused against the
   old band restricted to ``sum >= sum(x)`` — the exact set of band rows
   processed before ``x`` when no appended row is admitted, by induction over
   the processing order — then no appended row is admitted and the band is
   exactly unchanged.

A cached entry whose band is unchanged is bit-for-bit the entry a fresh
engine would rebuild on the mutated dataset: option ids are stable across
mutations, the affine score form is row-wise
(:meth:`~repro.preference.space.PreferenceSpace.affine_score_form`), and the
solve consumes nothing but the filtered dataset, the working set sliced from
those rows, and ``(k, region)``.  Entries failing the test are *evicted* —
eviction is always sound — and rebuilt lazily on the next query (optionally
salvaging their memo's score rows, see
:meth:`~repro.core.scorecache.VertexScoreMemo.remapped`).

The insert test scores the mutated dataset against the region's defining
vertices with the *same* matrix product :func:`vertex score computation
<repro.pruning.rskyband.vertex_score_matrix>` a fresh filter would perform,
and slices rows out of that one product — so every comparison the test makes
uses the identical floating-point values the from-scratch rebuild would
compare, and a "survive" verdict can never diverge from the oracle.  The
differential harness ``tests/test_mutation_differential.py`` fuzzes exactly
this contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import Dataset


@dataclass(frozen=True)
class MutationDelta:
    """The record of one dataset mutation step (insert *or* delete).

    Produced by :meth:`~repro.data.dataset.Dataset.insert_options` and
    :meth:`~repro.data.dataset.Dataset.delete_options` alongside the mutated
    dataset.  A delta is pure data — engines consume it through their
    ``apply_delta`` hooks to maintain caches incrementally.

    Attributes
    ----------
    parent_version, version:
        Version tags of the dataset the mutation was applied to and of the
        dataset it produced (``version == parent_version + 1``).
    n_before, n_after:
        Option counts on either side of the mutation.
    inserted_values:
        ``(m, d)`` values of the appended options (empty for deletes).
        Inserted options always occupy the *last* ``m`` positions of the
        mutated dataset, which is what keeps every surviving option's
        position stable.
    inserted_ids:
        Their option ids in the mutated dataset.
    deleted_ids:
        Option ids removed by the mutation (empty for inserts).
    deleted_positions:
        Their positional indices *in the parent dataset* (ascending).
    """

    parent_version: int
    version: int
    n_before: int
    n_after: int
    inserted_values: np.ndarray
    inserted_ids: tuple
    deleted_ids: tuple
    deleted_positions: np.ndarray

    @property
    def n_inserted(self) -> int:
        """Number of options this delta appended."""
        return int(self.inserted_values.shape[0])

    @property
    def n_deleted(self) -> int:
        """Number of options this delta removed."""
        return len(self.deleted_ids)

    def check_applies_to(self, parent: "Dataset", mutated: "Dataset") -> None:
        """Raise unless this delta maps ``parent`` onto ``mutated``.

        Engines call this before touching any cache: applying a delta out of
        order (or to the wrong dataset) would silently corrupt every
        maintained entry, so the version chain is enforced, not assumed.
        """
        if parent.version != self.parent_version:
            raise InvalidParameterError(
                f"delta was produced from dataset version {self.parent_version}, "
                f"but the engine is bound to version {parent.version}"
            )
        if mutated.version != self.version:
            raise InvalidParameterError(
                f"delta produces dataset version {self.version}, "
                f"got a dataset at version {mutated.version}"
            )
        if parent.n_options != self.n_before or mutated.n_options != self.n_after:
            raise InvalidParameterError(
                "delta option counts do not match the datasets "
                f"({self.n_before}->{self.n_after} vs "
                f"{parent.n_options}->{mutated.n_options})"
            )


@dataclass
class MutationReport:
    """Survivor/eviction accounting of one ``apply_delta`` call.

    Attributes
    ----------
    n_entries_survived, n_entries_evicted:
        Cached r-skyband entries kept / dropped by the survival test.
    n_results_survived, n_results_evicted:
        Result-LRU entries kept / dropped.
    n_dominance_tests:
        Inserted options put through the point-vs-band dominance test
        (one batched test per inserted option per examined entry).
    n_memos_salvaged:
        Vertex-score memos whose rows were column-remapped onto the mutated
        option set instead of being discarded.
    """

    n_entries_survived: int = 0
    n_entries_evicted: int = 0
    n_results_survived: int = 0
    n_results_evicted: int = 0
    n_dominance_tests: int = 0
    n_memos_salvaged: int = 0

    def merge(self, other: "MutationReport") -> "MutationReport":
        """Accumulate another report into this one (returns ``self``)."""
        self.n_entries_survived += other.n_entries_survived
        self.n_entries_evicted += other.n_entries_evicted
        self.n_results_survived += other.n_results_survived
        self.n_results_evicted += other.n_results_evicted
        self.n_dominance_tests += other.n_dominance_tests
        self.n_memos_salvaged += other.n_memos_salvaged
        return self

    @property
    def survivor_rate(self) -> float:
        """Fraction of examined cache entries (skyband + result) that survived.

        ``1.0`` when no entries were examined (nothing cached is trivially
        all-survived).
        """
        survived = self.n_entries_survived + self.n_results_survived
        total = survived + self.n_entries_evicted + self.n_results_evicted
        return survived / total if total else 1.0

    def as_dict(self) -> dict:
        """Plain-dict view for reports and ``cache_info``."""
        return {
            "n_entries_survived": self.n_entries_survived,
            "n_entries_evicted": self.n_entries_evicted,
            "n_results_survived": self.n_results_survived,
            "n_results_evicted": self.n_results_evicted,
            "n_dominance_tests": self.n_dominance_tests,
            "n_memos_salvaged": self.n_memos_salvaged,
            "survivor_rate": self.survivor_rate,
        }


def refused_admission(
    scores: np.ndarray,
    band_rows: np.ndarray,
    inserted_rows: np.ndarray,
    k: int,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Which inserted rows are provably refused admission to the k-band.

    Parameters
    ----------
    scores:
        The ``(n_after, n_vertices)`` vertex-score matrix of the *mutated*
        dataset — computed with the same matrix product a fresh filter uses,
        so the comparisons below replicate the rebuild's arithmetic exactly.
    band_rows:
        Row indices (into ``scores``) of the cached band members.
    inserted_rows:
        Row indices of the appended options.
    k:
        The band parameter of the cached entry.
    tol:
        The tolerance bundle the filter ran with (dominance uses
        ``tol.geometry``, as :func:`~repro.topk.skyband.skyband_of_values`
        does).

    Returns
    -------
    A boolean array over ``inserted_rows``: ``True`` where the inserted
    option has at least ``k`` dominators among the band members processed
    before it (band rows with row-sum ``>=`` its own — see the
    eviction-soundness lemma in the module docstring), so the band — and
    every cached artefact derived from it — is unchanged by that insert.
    """
    if inserted_rows.size == 0:
        return np.zeros(0, dtype=bool)
    eps = tol.geometry
    sums = scores.sum(axis=1)
    band_scores = scores[band_rows]
    band_sums = sums[band_rows]
    refused = np.zeros(inserted_rows.size, dtype=bool)
    for i, row in enumerate(inserted_rows):
        eligible = band_sums >= sums[row]
        if np.count_nonzero(eligible) < k:
            continue
        candidates = band_scores[eligible]
        geq = np.all(candidates >= scores[row] - eps, axis=1)
        gt = np.any(candidates > scores[row] + eps, axis=1)
        refused[i] = int(np.count_nonzero(geq & gt)) >= k
    return refused


def entry_survival(
    dataset: "Dataset",
    delta: MutationDelta,
    k: int,
    full_vertices: np.ndarray,
    band_ids: Sequence,
    tol: Tolerance = DEFAULT_TOL,
    scores: Optional[np.ndarray] = None,
) -> Tuple[bool, int]:
    """Decide whether one cached ``(k, region)`` band survives ``delta``.

    Parameters
    ----------
    dataset:
        The *mutated* dataset (the delta's child version).
    delta:
        The mutation being applied.
    k:
        The entry's band parameter.
    full_vertices:
        The region's defining vertices as full weight vectors — the exact
        array the entry's filter scored against (stored alongside the cache
        entry, *not* reconstructed from the rounded fingerprint).
    band_ids:
        Option ids of the cached band members (``filtered.option_ids``).
    tol:
        Tolerance bundle of the entry's filter run.
    scores:
        Optional precomputed ``dataset.values @ full_vertices.T`` — callers
        examining several entries that share one region (the skyband entry
        and the per-method results under the same fingerprint) pass it to
        pay the matrix product once.

    Returns
    -------
    ``(survives, n_dominance_tests)``.  ``survives`` is ``True`` only when
    the mutated dataset's band is provably byte-identical to the cached one:
    no deleted option was a band member, and every inserted option is
    refused admission (see the module docstring for why both conditions are
    exact).  Deciding costs one ``(n, d) @ (d, m)`` product plus one pass of
    array comparisons per inserted option — no Python-loop skyband rerun.
    """
    if delta.n_deleted:
        deleted = set(delta.deleted_ids)
        if any(option_id in deleted for option_id in band_ids):
            return False, 0
    if delta.n_inserted == 0:
        return True, 0
    # Score the mutated dataset exactly as vertex_score_matrix would: the
    # full (n_after, d) @ (d, m) product, then row slices — never a
    # re-derivation that could round differently near the eps boundaries.
    if scores is None:
        scores = dataset.values @ full_vertices.T
    band_rows = np.array([dataset.index_of(option_id) for option_id in band_ids], dtype=int)
    inserted_rows = np.arange(dataset.n_options - delta.n_inserted, dataset.n_options)
    refused = refused_admission(scores, band_rows, inserted_rows, k, tol=tol)
    return bool(np.all(refused)), int(inserted_rows.size)


def position_column_map(
    new_ids: Sequence,
    old_ids: Sequence,
) -> np.ndarray:
    """Map new column positions onto old ones by option id (``-1`` = new).

    Used to salvage :class:`~repro.core.scorecache.VertexScoreMemo` rows when
    a band *did* change: column ``j`` of the rebuilt memo equals column
    ``position_column_map(new, old)[j]`` of the old memo when the option was
    already a band member, and must be scored fresh (``-1``) otherwise.
    """
    old_index = {}
    for column, option_id in enumerate(old_ids):
        old_index.setdefault(option_id, column)
    return np.array([old_index.get(option_id, -1) for option_id in new_ids], dtype=int)
