"""Splitting-hyperplane selection and the split operation (Sections 4.2 and 5.3).

When a preference region fails the kIPR test, it must be split by a
hyperplane ``wHP(p_z1, p_z2)`` chosen from a pair of options responsible for
the violation.  Two strategies are provided:

* **random** (plain TAS, Section 4.2.1): any pair that witnesses the
  violation — for Case 1 (different top-k sets at two vertices) an option
  that is in one top-k set but not the other, paired with one in the
  opposite situation; for Case 2 (same set, different k-th) the two k-th
  options.
* **k-switch** (TAS*, Definition 4): for Case 1, ``p_z1`` is the k-th option
  at vertex ``v_a`` and ``p_z2`` is the option from ``v_b``'s top-k set that
  scores *just below* ``p_z1`` at ``v_a`` while overtaking it at ``v_b``.
  This tends to peel off an entire maximal kIPR on the ``v_a`` side, which
  the paper shows reduces the number of splits by almost an order of
  magnitude (Figure 14).

The actual split is carried out by the geometry layer; this module adds the
fallback used when a chosen hyperplane fails to produce two full-dimensional
children (a numerically grazing cut): other violating pairs are tried and,
as a last resort, the region is bisected along its widest axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.kipr import ProfilesLike, VertexProfile, WorkingSet, find_kipr_violation
from repro.core.profiles import RegionProfiles, affine_scores
from repro.geometry.hyperplane import Hyperplane
from repro.preference.region import PreferenceRegion
from repro.utils.rng import ensure_rng
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Strategy labels accepted by :func:`select_splitting_pair`.
STRATEGIES = ("random", "k-switch")


@dataclass(frozen=True)
class SplitDecision:
    """A chosen splitting pair and the resulting hyperplane in reduced space."""

    option_a: int
    option_b: int
    hyperplane: Hyperplane
    case: str


def _scoring_hyperplane(working: WorkingSet, option_a: int, option_b: int) -> Hyperplane:
    """The reduced-space hyperplane where options ``option_a`` and ``option_b`` tie."""
    coeff = working.coefficients[option_a] - working.coefficients[option_b]
    const = working.constants[option_a] - working.constants[option_b]
    # S_w(a) - S_w(b) = coeff . w + const = 0
    return Hyperplane(coeff, -const)


def _case1_pairs(profile_a: VertexProfile, profile_b: VertexProfile) -> List[Tuple[int, int]]:
    """All (p_z1, p_z2) pairs witnessing a Case 1 violation between two vertices."""
    only_a = sorted(profile_a.top_set - profile_b.top_set)
    only_b = sorted(profile_b.top_set - profile_a.top_set)
    return [(pa, pb) for pa in only_a for pb in only_b]


def _random_pair(
    profile_a: VertexProfile,
    profile_b: VertexProfile,
    case: str,
    rng: np.random.Generator,
) -> Tuple[int, int]:
    """The plain TAS choice: a random witnessing pair."""
    if case == "kth":
        return profile_a.kth, profile_b.kth
    pairs = _case1_pairs(profile_a, profile_b)
    if not pairs:
        return profile_a.kth, profile_b.kth
    return pairs[int(rng.integers(len(pairs)))]


def _k_switch_pair(
    working: WorkingSet,
    profile_a: VertexProfile,
    profile_b: VertexProfile,
) -> Optional[Tuple[int, int]]:
    """The k-switch choice of Definition 4 (Case 1 only).

    Returns ``None`` when the candidate set ``LC`` is empty for both
    orientations of the vertex pair, in which case the caller falls back to
    the random strategy.

    All candidate scores at both vertices come from one
    :func:`~repro.core.profiles.affine_scores` call over ``second``'s top-k
    set (plus ``p_z1``) instead of a per-candidate Python loop; ties in the
    score gap are broken by ascending option index, as the legacy
    ``(gap, candidate)`` tuple sort did.
    """
    for first, second in ((profile_a, profile_b), (profile_b, profile_a)):
        pz1 = first.kth
        pool = np.fromiter(sorted(second.top_set), dtype=int)
        ids = np.concatenate(([pz1], pool))
        vertices = np.vstack(
            [np.asarray(first.vertex, dtype=float), np.asarray(second.vertex, dtype=float)]
        )
        scores = affine_scores(vertices, working.coefficients[ids], working.constants[ids])
        pz1_at_a, pz1_at_b = scores[0, 0], scores[1, 0]
        at_a, at_b = scores[0, 1:], scores[1, 1:]
        mask = (pool != pz1) & (at_a < pz1_at_a) & (at_b > pz1_at_b)
        if np.any(mask):
            hits = np.flatnonzero(mask)
            gaps = pz1_at_a - at_a[hits]
            # argmin returns the first minimum; pool is sorted ascending, so
            # equal gaps resolve to the smallest option index.
            return pz1, int(pool[hits[int(np.argmin(gaps))]])
    return None


def select_splitting_pair(
    working: WorkingSet,
    profile_a: VertexProfile,
    profile_b: VertexProfile,
    case: str,
    strategy: str = "k-switch",
    rng: Optional[np.random.Generator] = None,
) -> SplitDecision:
    """Choose the splitting pair for a violating vertex pair.

    Parameters
    ----------
    working:
        Current working set (provides scores for the k-switch ranking).
    profile_a, profile_b:
        Vertex profiles of the violating pair ``(v_a, v_b)``.
    case:
        ``"set"`` for Case 1 (different top-k sets) or ``"kth"`` for Case 2.
    strategy:
        ``"random"`` (plain TAS) or ``"k-switch"`` (TAS*).
    """
    rng = ensure_rng(rng)
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown splitting strategy {strategy!r}; expected one of {STRATEGIES}")
    if case == "kth" or strategy == "random":
        option_a, option_b = _random_pair(profile_a, profile_b, case, rng)
    else:
        pair = _k_switch_pair(working, profile_a, profile_b)
        if pair is None:
            option_a, option_b = _random_pair(profile_a, profile_b, case, rng)
        else:
            option_a, option_b = pair
    hyperplane = _scoring_hyperplane(working, option_a, option_b)
    return SplitDecision(option_a=option_a, option_b=option_b, hyperplane=hyperplane, case=case)


def _profile_vertices(profiles: ProfilesLike) -> np.ndarray:
    """``(m, d-1)`` vertex matrix of either profile representation."""
    if isinstance(profiles, RegionProfiles):
        return profiles.vertices
    return np.array([profile.vertex for profile in profiles], dtype=float)


def _candidate_pool(profiles: ProfilesLike) -> List[int]:
    """Sorted union of the vertices' top-k sets."""
    if isinstance(profiles, RegionProfiles):
        return [int(i) for i in profiles.candidate_pool()]
    return sorted(set().union(*(profile.top_set for profile in profiles)))


def _strict_swap_mask(
    working: WorkingSet,
    vertices: np.ndarray,
    option_a: np.ndarray,
    option_b: np.ndarray,
    tol: Tolerance,
) -> np.ndarray:
    """Per-pair strict-swap verdicts for ``(option_a[i], option_b[i])`` pairs.

    The exact difference values of all pairs at all vertices come from one
    shape-independent :func:`~repro.core.profiles.affine_scores` call on the
    difference form, so a batched verdict is bit-identical to the same pair
    checked alone (each matrix element is computed independently).
    """
    diff_coeff = working.coefficients[option_a] - working.coefficients[option_b]
    diff_const = working.constants[option_a] - working.constants[option_b]
    values = affine_scores(vertices, diff_coeff, diff_const)
    return np.any(values > tol.score, axis=0) & np.any(values < -tol.score, axis=0)


def _has_strict_swap(
    working: WorkingSet,
    profiles: ProfilesLike,
    option_a: int,
    option_b: int,
    tol: Tolerance,
) -> bool:
    """True if the score order of the pair strictly changes across the region vertices.

    A strict swap (``a`` beats ``b`` beyond tolerance at one vertex, loses
    beyond tolerance at another) guarantees — by linearity of the score
    difference — that the hyperplane ``wHP(a, b)`` crosses the region's
    interior, so splitting on it makes real progress.  Pairs without a strict
    swap only tie on the region boundary and cannot cut the interior.
    """
    mask = _strict_swap_mask(
        working,
        _profile_vertices(profiles),
        np.array([option_a]),
        np.array([option_b]),
        tol,
    )
    return bool(mask[0])


def find_swap_candidates(
    working: WorkingSet,
    profiles: ProfilesLike,
    tol: Tolerance,
    max_candidates: int = 256,
) -> List[SplitDecision]:
    """All option pairs from the vertices' top-k sets whose order strictly swaps.

    The candidate pool is the union of the top-k sets over the region's
    vertices: any change of the top-k set or of the k-th option inside the
    region is caused by an order swap between two of these options (an
    outside option overtaking a member of the pool would put it in the pool
    at the vertex where the swap is maximal).  If this list is empty, every
    witnessed violation is a boundary tie and the region's interior is
    rank-invariant, so the caller may accept the region without splitting.

    All pairwise score differences at all vertices are screened in one
    broadcast; candidates are emitted in pool order (ascending ``(a, b)``),
    matching the legacy pairwise scan.
    """
    pool = _candidate_pool(profiles)
    n_pool = len(pool)
    if n_pool < 2:
        return []
    pool_arr = np.asarray(pool, dtype=int)
    vertices = _profile_vertices(profiles)
    scores = affine_scores(vertices, working.coefficients[pool_arr], working.constants[pool_arr])
    # Screen: beats[i, j] ~ pool[i] strictly outscores pool[j] at some
    # vertex.  Differences of separately rounded scores can disagree with
    # the exact difference form ``(c_a - c_b) . v + (k_a - k_b)`` by a few
    # ulps of the score magnitude, so the screen subtracts a slack well
    # above that rounding error (scaled to the actual scores, in case the
    # data is not unit-normalized), and every surviving pair is confirmed
    # with the exact form below.  An over-permissive screen only costs extra
    # exact confirms; it never drops a pair the legacy scan would accept.
    # One (n_pool, n_pool) buffer per vertex keeps the broadcast memory at
    # P^2 rather than m * P^2.
    slack = 1e-12 * (1.0 + float(np.abs(scores).max()))
    beats = np.zeros((n_pool, n_pool), dtype=bool)
    for row in scores:
        np.logical_or(beats, row[:, None] - row[None, :] > tol.score - slack, out=beats)
    swap = np.triu(beats & beats.T, k=1)
    # Exact confirms, batched: the (n_vertices, n_pairs) exact difference
    # values of all screened pairs come from chunked affine_scores calls on
    # the difference form instead of one `_has_strict_swap` per pair (which
    # rebuilt the vertex product every call).  Chunking keeps the
    # max_candidates early exit cheap — `region_is_rank_invariant` asks for
    # a single candidate and should not pay for the full pair set.
    pairs = np.argwhere(swap)  # row-major: ascending (i, j), the legacy scan order
    decisions: List[SplitDecision] = []
    chunk = 256 if max_candidates > 1 else 32
    for start in range(0, pairs.shape[0], chunk):
        block = pairs[start : start + chunk]
        a_ids = pool_arr[block[:, 0]]
        b_ids = pool_arr[block[:, 1]]
        confirmed = _strict_swap_mask(working, vertices, a_ids, b_ids, tol)
        for index in np.flatnonzero(confirmed):
            option_a, option_b = int(a_ids[index]), int(b_ids[index])
            decisions.append(
                SplitDecision(
                    option_a=option_a,
                    option_b=option_b,
                    hyperplane=_scoring_hyperplane(working, option_a, option_b),
                    case="swap",
                )
            )
            if len(decisions) >= max_candidates:
                return decisions
    return decisions


def region_is_rank_invariant(
    working: WorkingSet,
    profiles: ProfilesLike,
    tol: Tolerance = DEFAULT_TOL,
) -> bool:
    """True if the score order of all relevant options is constant inside the region.

    A region is rank-invariant when it either passes the exact kIPR test, or
    every kIPR violation witnessed at its vertices is caused by score ties
    within tolerance (no candidate pair strictly swaps, so by linearity the
    pair stays tied throughout the region).  This is the acceptance condition
    the test-and-split engines and the UTK partitioner actually guarantee for
    their output cells, and the property the correctness tests should check.
    """
    if find_kipr_violation(profiles) is None:
        return True
    return not find_swap_candidates(working, profiles, tol, max_candidates=1)


def split_region(
    region: PreferenceRegion,
    working: WorkingSet,
    profiles: ProfilesLike,
    violation: Tuple[int, int, str],
    strategy: str = "k-switch",
    rng: Optional[np.random.Generator] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> Tuple[Optional[PreferenceRegion], Optional[PreferenceRegion], SplitDecision, bool]:
    """Split ``region`` according to a kIPR violation.

    Returns ``(below, above, decision, cut_found)``.  The splitting
    hyperplane is chosen by the configured strategy (Section 4.2.1 /
    Definition 4) provided the chosen pair's order strictly swaps inside the
    region; otherwise the first pair with a strict swap is used.  When no
    pair of candidate options swaps strictly — every witnessed violation is a
    score tie on the region boundary — ``cut_found`` is False and both
    children are ``None``: the region's interior is rank-invariant and the
    caller should accept it without splitting.
    """
    rng = ensure_rng(rng)
    index_a, index_b, case = violation
    profile_a, profile_b = profiles[index_a], profiles[index_b]

    primary = select_splitting_pair(working, profile_a, profile_b, case, strategy, rng)
    candidates: List[SplitDecision] = []
    if _has_strict_swap(working, profiles, primary.option_a, primary.option_b, tol):
        candidates.append(primary)
    candidates.extend(find_swap_candidates(working, profiles, tol))

    attempted: set[tuple[int, int]] = set()
    for candidate in candidates:
        key = (min(candidate.option_a, candidate.option_b), max(candidate.option_a, candidate.option_b))
        if key in attempted:
            continue
        attempted.add(key)
        below, above = region.split(candidate.hyperplane)
        if below.is_full_dimensional() and above.is_full_dimensional():
            return below, above, candidate, True

    return None, None, primary, False
