"""Supervised process-pool execution: timeouts, retries, rebuilds, degradation.

PR 5's sharded path fans pure filter tasks out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and assumes every worker
lives forever: a crashed worker raises ``BrokenProcessPool`` out of the
query, a hung worker blocks it indefinitely, and either way the whole query
fails even though every shard task is pure and re-runnable.  This module
supervises that fan-out so the parallel path *degrades* instead of failing:

**The degradation ladder.**  Each task batch walks down four rungs, stopping
at the first one that produces a result:

1. **Retry** — a task that raises (or times out) is resubmitted up to
   ``max_retries`` times, with exponential backoff and *deterministic*
   jitter (:func:`backoff_delay`): delays depend only on
   ``(seed, task key, attempt)``, never on a live RNG, so recovery timing is
   reproducible in tests.  Only failures a task itself caused charge its
   retry budget; a future that failed because *another* task crashed the
   shared pool is resubmitted for free (collateral resubmission is bounded
   by the rebuild budget, since every crash retires a pool).
2. **Pool rebuild** — a worker crash (``BrokenProcessPool``) or a hung task
   (per-batch timeout with the future still running) poisons the whole
   pool; the supervisor abandons it (terminating its workers) and builds a
   fresh one, at most ``max_pool_rebuilds`` times per batch.
3. **Serial fallback** — a task with no retries left (or no pool left) runs
   in-process via its ``fallback`` callable.  Shard tasks are pure
   functions of shared inputs, so the fallback result is **bit-identical**
   to the healthy path — degradation trades latency, never correctness.
4. **Hard failure** — only when the caller disabled the fallback
   (``fallback=False``; CLI ``--no-fallback``) does an unrecoverable task
   raise :class:`~repro.exceptions.ShardExecutionError`.

Every rung is counted in :class:`ResilienceStats` (folded into
:class:`~repro.core.stats.SolverStats` by the sharded engine) so degraded
queries are *observable*, and every failure mode is reproducible through the
fault-injection plans of :mod:`repro.core.faults` — pool workers run
:func:`worker_initializer`, which installs the plan exported in the
environment, if any.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, wait as wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import faults
from repro.exceptions import InvalidParameterError, ShardExecutionError

_MASK64 = (1 << 64) - 1


def worker_initializer() -> None:
    """Pool-worker start hook: install the env-exported fault plan, if any.

    A no-op in production (the :data:`~repro.core.faults.FAULT_PLAN_ENV`
    variable is unset); under test it makes every worker — including the
    workers of a rebuilt pool — observe the same deterministic schedule.
    """
    faults.install_from_env()


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the supervision layer.

    Attributes
    ----------
    timeout:
        Per-batch task deadline in seconds (``None``: wait forever).  When
        it expires, still-running tasks count as hung: they are retried on a
        fresh pool (the old one is abandoned, since a running pool task
        cannot be cancelled).
    max_retries:
        Re-submissions allowed per task after its first failed attempt.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per additional retry (exponential backoff).
    backoff_cap:
        Upper bound on the un-jittered delay.
    jitter:
        Jitter amplitude as a fraction of the delay: the sleep is
        ``delay * (1 + jitter * u)`` with ``u ∈ [0, 1)`` drawn
        *deterministically* from ``(seed, task key, attempt)``.
    seed:
        Jitter seed (reproducible recovery timing).
    max_pool_rebuilds:
        Fresh pools the supervisor may build per batch after the first one
        is poisoned by a crash or hang.
    fallback:
        Run unrecoverable tasks serially in-process (the tasks are pure, so
        results stay bit-identical).  With ``False`` they raise
        :class:`~repro.exceptions.ShardExecutionError` instead.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    max_pool_rebuilds: int = 1
    fallback: bool = True

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise InvalidParameterError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise InvalidParameterError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_pool_rebuilds < 0:
            raise InvalidParameterError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )


def _splitmix64(x: int) -> int:
    """Scalar splitmix64 finaliser (the array form lives in repro.data.sharding)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def backoff_delay(config: ResilienceConfig, key: Any, retry_index: int) -> float:
    """Deterministic backoff delay before retry ``retry_index`` of task ``key``.

    ``base * factor**retry_index`` capped at ``backoff_cap``, stretched by a
    jitter factor in ``[1, 1 + jitter)`` that is a pure function of
    ``(config.seed, key, retry_index)`` — two runs of the same schedule wait
    the same fractions of a second, and different tasks de-synchronise their
    retries without sharing any mutable RNG state.
    """
    if retry_index < 0:
        return 0.0
    delay = min(config.backoff_cap, config.backoff_base * config.backoff_factor**retry_index)
    key_hash = zlib.crc32(repr(key).encode("utf-8"))
    mixed = _splitmix64((config.seed & _MASK64) ^ (key_hash << 20) ^ retry_index)
    unit = mixed / float(1 << 64)
    return delay * (1.0 + config.jitter * unit)


@dataclass
class ResilienceStats:
    """What the supervisor had to do to finish a batch (all zero when healthy).

    Attributes
    ----------
    n_retries:
        Task re-submissions to a pool (every attempt after a task's first).
    n_task_errors:
        Task attempts that raised inside a worker (the exception came back
        over the future — the worker itself survived).
    n_timeouts:
        Task attempts abandoned because the batch deadline expired while
        they were running.
    n_worker_crashes:
        ``BrokenProcessPool`` events (a worker died mid-batch).
    n_pool_rebuilds:
        Fresh pools built after a poisoned one was abandoned.
    n_degraded_tasks:
        Tasks that exhausted the pool rungs and ran serially in-process.
    events:
        Human-readable audit trail of every non-healthy step, in order.
    """

    n_retries: int = 0
    n_task_errors: int = 0
    n_timeouts: int = 0
    n_worker_crashes: int = 0
    n_pool_rebuilds: int = 0
    n_degraded_tasks: int = 0
    events: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when at least one task fell back to serial in-process execution."""
        return self.n_degraded_tasks > 0

    def note(self, message: str) -> None:
        """Append one audit-trail event."""
        self.events.append(message)

    def merge(self, other: "ResilienceStats") -> None:
        """Fold another batch's counters into this (lifetime) accumulator."""
        self.n_retries += other.n_retries
        self.n_task_errors += other.n_task_errors
        self.n_timeouts += other.n_timeouts
        self.n_worker_crashes += other.n_worker_crashes
        self.n_pool_rebuilds += other.n_pool_rebuilds
        self.n_degraded_tasks += other.n_degraded_tasks
        self.events.extend(other.events)

    def as_dict(self) -> dict:
        """Plain-dict view (for ``SolverStats.extra`` and pool health reports)."""
        return {
            "n_retries": self.n_retries,
            "n_task_errors": self.n_task_errors,
            "n_timeouts": self.n_timeouts,
            "n_worker_crashes": self.n_worker_crashes,
            "n_pool_rebuilds": self.n_pool_rebuilds,
            "n_degraded_tasks": self.n_degraded_tasks,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class SupervisedTask:
    """One pure unit of work for :meth:`SupervisedPool.run`.

    Attributes
    ----------
    key:
        Stable identifier (ordering, retry accounting, jitter seed).
    fn, args:
        The pool-side callable and its (picklable) arguments.
    fallback:
        Optional in-process replacement invoked on degradation; defaults to
        calling ``fn(*args)`` in the coordinator.  May be a closure — it
        never crosses a process boundary.
    """

    key: Any
    fn: Callable
    args: Tuple = ()
    fallback: Optional[Callable[[], Any]] = None


class SupervisedPool:
    """A process pool that finishes every batch or says exactly why it could not.

    Owns (and lazily builds) one :class:`ProcessPoolExecutor`; the pool
    survives across :meth:`run` batches so repeated queries amortise worker
    start-up, and is replaced transparently when a batch poisons it.  All
    scheduling state (retry budgets, rebuild budget) is per-batch.

    Parameters
    ----------
    n_workers:
        Pool size.
    config:
        The supervision knobs (:class:`ResilienceConfig`).
    sleep:
        Injectable sleep (tests pass a fake clock so backoff is instant).
    pool_factory:
        Injectable pool constructor (tests only); must accept no arguments
        and return a ``ProcessPoolExecutor``-compatible object.
    """

    def __init__(
        self,
        n_workers: int,
        config: ResilienceConfig = ResilienceConfig(),
        sleep: Callable[[float], None] = time.sleep,
        pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
    ):
        if n_workers <= 0:
            raise InvalidParameterError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = int(n_workers)
        self.config = config
        self._sleep = sleep
        self._pool_factory = pool_factory or (
            lambda: ProcessPoolExecutor(
                max_workers=self.n_workers, initializer=worker_initializer
            )
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self.lifetime = ResilienceStats()
        self.n_batches = 0

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """True while a (presumed healthy) pool exists."""
        return self._pool is not None

    def _abandon_pool(self) -> None:
        """Drop the current pool without waiting on it (it may hold hung workers).

        ``shutdown(wait=True)`` would block on a hung task forever, so the
        pool is released asynchronously and its worker processes terminated
        best-effort (``_processes`` is CPython's worker registry; when the
        attribute is missing the processes die with their queues instead).
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.shutdown(wait=False, cancel_futures=True)
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except (OSError, ValueError):  # already dead / already closed
                pass

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def health(self) -> dict:
        """Lifetime supervision counters plus the current pool state."""
        info = {"alive": self.alive, "n_workers": self.n_workers, "n_batches": self.n_batches}
        info.update(self.lifetime.as_dict())
        return info

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence[SupervisedTask]) -> Tuple[Dict[Any, Any], ResilienceStats]:
        """Execute every task to completion, walking the degradation ladder.

        Returns ``(results, stats)`` where ``results`` maps each task key to
        its value.  Either every task has a result or — only with
        ``config.fallback=False`` — a
        :class:`~repro.exceptions.ShardExecutionError` describes the first
        unrecoverable one.

        Batches are serialized: concurrent callers queue on an internal lock
        (the pool, lifetime counters and rebuild budget are shared state, so
        interleaving two batches could abandon a pool out from under the
        other's in-flight submits).
        """
        stats = ResilienceStats()
        with self._lock:
            self.n_batches += 1
            try:
                return self._run(list(tasks), stats), stats
            finally:
                self.lifetime.merge(stats)

    def _run(self, tasks: List[SupervisedTask], stats: ResilienceStats) -> Dict[Any, Any]:
        config = self.config
        results: Dict[Any, Any] = {}
        pending: Dict[Any, SupervisedTask] = {t.key: t for t in tasks}
        order = [t.key for t in tasks]
        # `attempts` charges the per-task retry budget: only failures the task
        # itself caused (raising in the worker, exceeding the deadline) count.
        # A future failed by pool breakage (another task crashed the worker
        # pool) is collateral damage — the task is re-submitted without
        # spending budget; runaway resubmission is bounded by the rebuild
        # budget, since every crash retires a pool.  `submitted` counts actual
        # pool submissions, driving n_retries/backoff and degrade messages.
        attempts = {t.key: 0 for t in tasks}
        submitted = {t.key: 0 for t in tasks}
        last_error: Dict[Any, BaseException] = {}
        rebuilds_used = 0
        pool_retired = False

        def acquire_pool() -> Optional[ProcessPoolExecutor]:
            nonlocal rebuilds_used
            if self._pool is not None:
                return self._pool
            if pool_retired:
                if rebuilds_used >= config.max_pool_rebuilds:
                    return None
                rebuilds_used += 1
                stats.n_pool_rebuilds += 1
                stats.note(f"pool rebuild #{rebuilds_used}")
            try:
                self._pool = self._pool_factory()
            except OSError as exc:  # pragma: no cover - resource exhaustion
                stats.note(f"pool construction failed: {exc}")
                return None
            return self._pool

        while pending:
            runnable = [k for k in order if k in pending and attempts[k] <= config.max_retries]
            for key in [k for k in order if k in pending and k not in runnable]:
                results[key] = self._degrade(pending.pop(key), stats, last_error.get(key), submitted[key])
            if not runnable:
                break

            retrying = [k for k in runnable if submitted[k] > 0]
            if retrying:
                stats.n_retries += len(retrying)
                delay = max(backoff_delay(config, k, submitted[k] - 1) for k in retrying)
                stats.note(f"retrying {len(retrying)} task(s) after {delay * 1000:.0f} ms backoff")
                self._sleep(delay)

            pool = acquire_pool()
            if pool is None:
                stats.note("no pool available; degrading remaining tasks")
                for key in runnable:
                    results[key] = self._degrade(
                        pending.pop(key), stats, last_error.get(key), submitted[key]
                    )
                continue

            futures = {}
            submit_error: Optional[BaseException] = None
            for key in runnable:
                task = pending[key]
                try:
                    futures[pool.submit(task.fn, *task.args)] = key
                    submitted[key] += 1
                except (BrokenProcessPool, RuntimeError) as exc:
                    submit_error = exc
                    break

            pool_broken = saw_crash = submit_error is not None

            def harvest(key: Any, future) -> None:
                nonlocal pool_broken, saw_crash
                try:
                    results[key] = future.result()
                    pending.pop(key)
                except BrokenProcessPool as exc:
                    # Collateral: some task crashed the pool and this future
                    # failed with it.  No budget charge (see `attempts` note).
                    pool_broken = saw_crash = True
                    last_error[key] = exc
                except Exception as exc:  # the task itself raised in the worker
                    stats.n_task_errors += 1
                    attempts[key] += 1
                    last_error[key] = exc
                    stats.note(f"task {key!r} raised {type(exc).__name__}: {exc}")

            done, not_done = (
                wait_futures(futures, timeout=config.timeout) if futures else (set(), set())
            )
            for future in done:
                harvest(futures[future], future)
            for future in not_done:
                key = futures[future]
                if future.cancel():
                    # Never started (queued behind a hung worker): costs no
                    # attempt, simply goes back into the next round.
                    submitted[key] -= 1
                    continue
                if future.done():
                    # Finished in the race window between wait() and cancel():
                    # harvest the result instead of calling the task hung.
                    harvest(key, future)
                    continue
                stats.n_timeouts += 1
                attempts[key] += 1
                last_error[key] = TimeoutError(
                    f"task {key!r} exceeded the {config.timeout}s batch deadline"
                )
                stats.note(f"task {key!r} timed out after {config.timeout}s; abandoning its worker")
                pool_broken = True
            if saw_crash:
                stats.n_worker_crashes += 1
                stats.note("worker crash (BrokenProcessPool); pool poisoned")
            if pool_broken:
                pool_retired = True
                self._abandon_pool()

        return {key: results[key] for key in order}

    def _degrade(
        self,
        task: SupervisedTask,
        stats: ResilienceStats,
        error: Optional[BaseException],
        n_attempts: int,
    ) -> Any:
        """Rung 3/4: run ``task`` serially in-process, or raise if forbidden."""
        if not self.config.fallback:
            raise ShardExecutionError(
                f"task {task.key!r} unrecoverable after {n_attempts} pool attempt(s) "
                f"and serial fallback is disabled (last error: {error!r})"
            ) from error
        stats.n_degraded_tasks += 1
        stats.note(
            f"task {task.key!r} degraded to in-process serial execution "
            f"after {n_attempts} pool attempt(s)"
        )
        if task.fallback is not None:
            return task.fallback()
        return task.fn(*task.args)
