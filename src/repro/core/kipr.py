"""Vertex score profiles and the region tests of the TAS algorithms.

The recursive test-and-split procedure repeatedly asks three questions about
a preference region ``wR_i`` (always answered by looking only at the region's
defining vertices, which Lemma 1 makes sufficient):

* **kIPR test** (Lemma 3): do all vertices share the same top-k set *and*
  the same k-th option?
* **Optimized test** (Lemma 7): do all vertices share the same top-(k-1)
  set?  If so the region need not be split even if it is not a kIPR.
* **Consistent top-λ detection** (Lemma 5): is there a λ < k such that all
  vertices share the same top-λ set?  Those λ options can be removed and
  ``k`` reduced accordingly for the whole sub-tree.

All three are computed from the ordered top-k list of each vertex over the
currently active options.  Two representations exist:

* :class:`VertexProfile` — the legacy per-vertex object (tuple + frozensets),
  still used by single-vertex callers and kept as the reference
  implementation for the parity tests;
* :class:`repro.core.profiles.RegionProfiles` — the array-backed kernel the
  solvers use, computing all vertices of a region in one matrix operation.

The module-level test functions (:func:`find_kipr_violation`,
:func:`passes_lemma7`, :func:`consistent_top_lambda`) accept either
representation and dispatch to the vectorized path when given a
:class:`~repro.core.profiles.RegionProfiles`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.profiles import RegionProfiles, affine_scores
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace

#: Either profile representation accepted by the module-level tests.
ProfilesLike = Union[RegionProfiles, Sequence["VertexProfile"]]


class WorkingSet:
    """The options and query parameter a recursive call currently works with.

    A working set references the (already r-skyband-filtered) dataset ``D'``
    through its affine score form and keeps:

    * ``active`` — positional indices (into ``D'``) still under consideration,
    * ``k`` — the current (possibly Lemma-5-reduced) query parameter.

    Working sets are immutable; Lemma 5 pruning produces a new one via
    :meth:`without_options`.  Every instance carries a process-unique ``uid``
    so caches (e.g. the vertex-score memo of
    :mod:`repro.core.scorecache`) can key per-working-set results without
    holding a reference — immutability makes the uid a stable identity for
    the ``(active, k)`` pair.
    """

    __slots__ = ("coefficients", "constants", "active", "k", "uid", "_active_form")

    #: Process-wide uid source (``itertools.count.__next__`` is atomic).
    _uid_counter = itertools.count()

    def __init__(
        self,
        coefficients: np.ndarray,
        constants: np.ndarray,
        active: np.ndarray,
        k: int,
    ):
        self.coefficients = coefficients
        self.constants = constants
        self.active = np.asarray(active, dtype=int)
        self.k = int(k)
        self.uid = next(WorkingSet._uid_counter)
        self._active_form: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_dataset(cls, dataset: Dataset, k: int) -> "WorkingSet":
        """Build the root working set from the filtered dataset ``D'``."""
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        space = PreferenceSpace(dataset.n_attributes)
        coefficients, constants = space.affine_score_form(dataset.values)
        active = np.arange(dataset.n_options)
        return cls(coefficients, constants, active, min(k, dataset.n_options))

    @classmethod
    def from_affine_form(
        cls, coefficients: np.ndarray, constants: np.ndarray, k: int
    ) -> "WorkingSet":
        """Root working set from an already computed affine score form.

        Used by the query engine, which binds the dataset's affine form once
        and slices it per query instead of recomputing it from the values.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        n_options = coefficients.shape[0]
        active = np.arange(n_options)
        return cls(coefficients, constants, active, min(k, n_options))

    @property
    def n_active(self) -> int:
        """Number of active options."""
        return self.active.shape[0]

    def active_form(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(coefficients, constants)`` restricted to the active options (cached).

        Working sets are immutable, so the sliced affine form is computed at
        most once and reused by every region test on this working set.
        """
        if self._active_form is None:
            self._active_form = (self.coefficients[self.active], self.constants[self.active])
        return self._active_form

    def scores_at(self, reduced_vertex: np.ndarray) -> np.ndarray:
        """Scores of the active options at one reduced weight vector.

        Routed through the kernel's shape-independent score accumulation so
        that per-vertex results are bit-identical to rows of the batched
        :class:`~repro.core.profiles.RegionProfiles` score matrix.
        """
        coefficients, constants = self.active_form()
        return affine_scores(reduced_vertex, coefficients, constants)[0]

    def score_of(self, option_index: int, reduced_vertex: np.ndarray) -> float:
        """Score of a single option (positional index into ``D'``) at a reduced vertex."""
        return float(self.constants[option_index] + self.coefficients[option_index] @ reduced_vertex)

    def without_options(self, option_indices: Sequence[int], new_k: int) -> "WorkingSet":
        """New working set with ``option_indices`` removed and ``k`` replaced."""
        drop = np.fromiter((int(i) for i in option_indices), dtype=int)
        remaining = self.active[~np.isin(self.active, drop)]
        return WorkingSet(self.coefficients, self.constants, remaining, new_k)


@dataclass(frozen=True)
class VertexProfile:
    """Top-k information at one region vertex.

    Attributes
    ----------
    vertex:
        The reduced weight vector of the vertex.
    ordered:
        Positional indices (into ``D'``) of the top-k active options, sorted
        by decreasing score with ties broken by ascending index.
    top_set:
        Order-insensitive top-k set.
    kth:
        The top-k-th option (last entry of ``ordered``).
    """

    vertex: np.ndarray
    ordered: Tuple[int, ...]
    top_set: frozenset
    kth: int

    def prefix_set(self, length: int) -> frozenset:
        """The (order-insensitive) set of the ``length`` best options at this vertex."""
        return frozenset(self.ordered[:length])


def vertex_profile(working: WorkingSet, reduced_vertex: np.ndarray) -> VertexProfile:
    """Compute the :class:`VertexProfile` of one vertex for the current working set."""
    scores = working.scores_at(reduced_vertex)
    k = min(working.k, scores.shape[0])
    local_order = np.lexsort((working.active, -scores))[:k]
    ordered = tuple(int(working.active[i]) for i in local_order)
    return VertexProfile(
        vertex=np.asarray(reduced_vertex, dtype=float),
        ordered=ordered,
        top_set=frozenset(ordered),
        kth=ordered[-1],
    )


def region_profiles(working: WorkingSet, region: PreferenceRegion) -> List[VertexProfile]:
    """Per-vertex :class:`VertexProfile` list for every defining vertex of ``region``.

    This is the legacy (reference) representation; the solvers use the
    array-backed :meth:`repro.core.profiles.RegionProfiles.of_region` instead.
    """
    return [vertex_profile(working, v) for v in region.vertices]


def find_kipr_violation(profiles: ProfilesLike) -> Optional[Tuple[int, int, str]]:
    """First pair of vertices violating the kIPR conditions.

    Returns ``None`` when the region is a kIPR, otherwise a tuple
    ``(index_a, index_b, case)`` where ``case`` is ``"set"`` (different top-k
    sets — Case 1 of Section 4.2.1) or ``"kth"`` (same set, different k-th
    option — Case 2).
    """
    if isinstance(profiles, RegionProfiles):
        return profiles.kipr_violation()
    if not profiles:
        return None
    reference = profiles[0]
    for j in range(1, len(profiles)):
        other = profiles[j]
        if other.top_set != reference.top_set:
            return 0, j, "set"
    for j in range(1, len(profiles)):
        other = profiles[j]
        if other.kth != reference.kth:
            return 0, j, "kth"
    return None


def is_kipr(profiles: ProfilesLike) -> bool:
    """Lemma 3 test: same top-k set and same k-th option at every vertex."""
    return find_kipr_violation(profiles) is None


def passes_lemma7(profiles: ProfilesLike, k: int) -> bool:
    """Lemma 7 test: every vertex yields the same top-(k-1) set.

    For ``k == 1`` the condition is vacuously true (Lemma 6 applies directly).
    """
    if isinstance(profiles, RegionProfiles):
        return profiles.passes_lemma7(k)
    if k <= 1:
        return True
    if not profiles:
        return True
    reference = profiles[0].prefix_set(k - 1)
    if len(reference) < min(k - 1, len(profiles[0].ordered)):
        return False
    return all(profile.prefix_set(k - 1) == reference for profile in profiles[1:])


def consistent_top_lambda(profiles: ProfilesLike, k: int) -> Tuple[int, frozenset]:
    """Largest λ < k such that all vertices share the same top-λ set (Lemma 5).

    Returns ``(0, frozenset())`` when no such λ exists.
    """
    if isinstance(profiles, RegionProfiles):
        return profiles.consistent_top_lambda(k)
    if k <= 1 or not profiles:
        return 0, frozenset()
    max_lambda = min(k - 1, len(profiles[0].ordered))
    for lam in range(max_lambda, 0, -1):
        reference = profiles[0].prefix_set(lam)
        if all(profile.prefix_set(lam) == reference for profile in profiles[1:]):
            return lam, reference
    return 0, frozenset()
