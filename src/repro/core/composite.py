"""Composite TopRR queries: non-convex target regions and constrained option domains.

Section 3.1 of the paper notes two practically important generalisations that
reduce to the basic TopRR machinery:

* **Non-convex target regions.**  TopRR requires ``wR`` to be a convex
  polytope, but "any non-convex polytope can be partitioned into convex ones;
  the latter could be processed independently, and the intersection of their
  TopRR solutions reported as overall oR".  :func:`solve_toprr_union` does
  exactly that: it solves each convex piece and intersects the answers, so a
  clientele described as a union of boxes ("performance-focused OR
  battery-focused designers") is supported directly.

* **Manufacturing constraints.**  Domain constraints such as
  ``p[1] + p[2] <= 1.5`` or a finite attribute domain are "an extra
  condition, applied after oR computation".  :func:`constrain_result`
  intersects the computed ``oR`` with arbitrary additional halfspaces and
  returns a new result object whose membership test and cost-optimal
  placement respect them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.stats import SolverStats
from repro.core.toprr import SolverLike, TopRRResult, solve_toprr
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.halfspace import Halfspace
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.vertex_enum import deduplicate_points
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def solve_toprr_union(
    dataset: Dataset,
    k: int,
    regions: Sequence[PreferenceRegion],
    method: SolverLike = "tas*",
    clip_to_unit_box: bool = True,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
) -> TopRRResult:
    """Solve TopRR for a target clientele given as a *union* of convex regions.

    The returned region is the set of placements that are top-ranking for
    every weight vector in every piece — i.e. the TopRR answer for the
    (possibly non-convex) union, computed as the intersection of the
    per-piece answers (Section 3.1).

    The result is returned as a regular :class:`TopRRResult` whose ``V_all``
    is the union of the pieces' vertex sets and whose ``region`` attribute is
    the first piece (kept for bookkeeping; the full list is recorded in
    ``stats.extra["n_region_pieces"]``).
    """
    regions = list(regions)
    if not regions:
        raise InvalidParameterError("at least one convex region piece is required")
    attribute_counts = {region.n_attributes for region in regions}
    if len(attribute_counts) != 1:
        raise InvalidParameterError("all region pieces must target the same number of attributes")

    partial_results = [
        solve_toprr(
            dataset,
            k,
            region,
            method=method,
            clip_to_unit_box=clip_to_unit_box,
            rng=rng,
            tol=tol,
        )
        for region in regions
    ]

    vertices = deduplicate_points(
        np.vstack([result.vertices_reduced for result in partial_results]), tol=tol
    )
    full_weights = np.vstack([result.full_weights for result in partial_results])
    thresholds = np.concatenate([result.thresholds for result in partial_results])

    # Intersect the per-piece polytopes: concatenating their H-representations
    # is exactly the intersection of the impact halfspaces of all pieces.
    stacked_A = np.vstack([result.polytope.halfspaces[0] for result in partial_results])
    stacked_b = np.concatenate([result.polytope.halfspaces[1] for result in partial_results])
    polytope = ConvexPolytope(stacked_A, stacked_b, tol=tol)

    stats = SolverStats()
    stats.n_input_options = dataset.n_options
    stats.n_filtered_options = max(result.filtered.n_options for result in partial_results)
    stats.n_vertices = int(vertices.shape[0])
    stats.n_splits = sum(result.stats.n_splits for result in partial_results)
    stats.seconds = sum(result.stats.seconds for result in partial_results)
    stats.extra["n_region_pieces"] = len(regions)

    return TopRRResult(
        dataset=dataset,
        filtered=partial_results[0].filtered,
        k=k,
        region=regions[0],
        vertices_reduced=vertices,
        full_weights=full_weights,
        thresholds=thresholds,
        polytope=polytope,
        stats=stats,
        method=f"{partial_results[0].method} (union of {len(regions)} pieces)",
        tol=tol,
    )


def constrain_result(
    result: TopRRResult,
    constraints: Iterable[Halfspace],
    tol: Tolerance = DEFAULT_TOL,
) -> TopRRResult:
    """Intersect a TopRR result with additional option-domain constraints.

    ``constraints`` are halfspaces over the option space (e.g. manufacturing
    limits such as ``p[0] + p[1] <= 1.5`` expressed as ``Halfspace([1, 1, 0],
    1.5)``).  The returned result keeps the same impact halfspaces (so the
    top-ranking guarantee is unchanged) but its polytope — and therefore the
    cost-optimal placements computed from it — satisfies the constraints.
    """
    constraints = list(constraints)
    if not constraints:
        return result
    for halfspace in constraints:
        if halfspace.dimension != result.dataset.n_attributes:
            raise InvalidParameterError(
                "constraint dimensionality does not match the option space"
            )
    constrained_polytope = result.polytope.intersect_halfspaces(constraints)
    constrained = TopRRResult(
        dataset=result.dataset,
        filtered=result.filtered,
        k=result.k,
        region=result.region,
        vertices_reduced=result.vertices_reduced,
        full_weights=result.full_weights,
        thresholds=result.thresholds,
        polytope=constrained_polytope,
        stats=result.stats,
        method=f"{result.method} (constrained)",
        tol=tol,
    )
    return constrained
