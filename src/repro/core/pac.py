"""PAC — the Partition-and-Convert baseline (Section 3.4).

PAC solves TopRR by running the UTK algorithm of [30] as a black box: UTK
partitions the preference region into cells, each of which is (by UTK's
termination condition) a kIPR, and Theorem 1 is then applied to the union of
the cells' defining vertices.  PAC is correct but slow — the UTK recursion
was designed for a different problem, performs anchor-driven splits, and
produces far more (and far-from-maximal) kIPRs than TAS/TAS*, which is what
the paper's Figure 9 quantifies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.stats import SolverStats
from repro.core.utk import UTKPartitioner
from repro.data.dataset import Dataset
from repro.geometry.polytope import merge_vertex_sets
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class PACSolver:
    """The partition-and-convert baseline.

    Exposes the same ``partition`` interface as the test-and-split solvers so
    that :func:`repro.core.toprr.solve_toprr` can treat all three methods
    uniformly.
    """

    name = "PAC"

    def __init__(
        self,
        rng: RngLike = 0,
        max_regions: int = 500_000,
        tol: Tolerance = DEFAULT_TOL,
        incremental: bool = True,
    ):
        self._partitioner = UTKPartitioner(
            rng=rng, max_regions=max_regions, tol=tol, incremental=incremental
        )
        self.tol = tol
        self.incremental = bool(incremental)

    def partition(
        self,
        filtered: Dataset,
        k: int,
        region: PreferenceRegion,
        stats: Optional[SolverStats] = None,
        working=None,
        score_memo=None,
    ) -> np.ndarray:
        """Run UTK on ``region`` and return the union of the cells' vertices (``V_all``)."""
        stats = stats if stats is not None else SolverStats()
        # PAC performs no Lemma 5 pruning: the candidate set is unchanged.
        stats.n_after_lemma5 = filtered.n_options
        cells = self._partitioner.partition(
            filtered, k, region, stats=stats, working=working, score_memo=score_memo
        )
        vertex_sets = []
        for cell in cells:
            try:
                vertex_sets.append(cell.vertices)
            except Exception:
                continue
        if not vertex_sets:
            vertex_sets.append(region.vertices)
        vall = merge_vertex_sets(vertex_sets, tol=self.tol)
        stats.n_vertices = int(vall.shape[0])
        return vall

    def describe(self) -> dict:
        """Configuration summary used in experiment reports."""
        return {"name": self.name, "building_block": "UTK (anchor-based partitioning)"}
