"""Cost-optimal option creation and enhancement on top of a TopRR result.

Section 1 and the case study of Section 6.2 describe three applications once
the top-ranking region ``oR`` is known:

* **option creation**: place a brand-new option in ``oR`` at minimum
  manufacturing cost (the paper's example cost is the summed squares of the
  attribute values);
* **option enhancement**: revamp an existing option ``p_i`` so that it enters
  ``oR`` while moving it as little as possible (cost proportional to the
  Euclidean distance between the old and the new version);
* **budgeted impact maximisation**: find the smallest ``k`` whose cost-optimal
  enhancement stays within a redesign budget ``B`` (Section 3.1 notes that
  the optimal cost is monotone as ``k`` decreases, enabling a simple
  downward scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.toprr import TopRRResult, solve_toprr
from repro.data.dataset import Dataset
from repro.exceptions import InfeasibleProblemError, InvalidParameterError
from repro.geometry.qp import minimize_quadratic_cost, project_point_onto_polytope, quadratic_cost
from repro.preference.region import PreferenceRegion
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


@dataclass(frozen=True)
class PlacementResult:
    """A cost-optimal placement inside the top-ranking region.

    Attributes
    ----------
    option:
        The attribute vector of the placement.
    cost:
        Its cost under the cost model that was optimised.
    k:
        The rank guarantee the placement achieves (top-k for all of ``wR``).
    """

    option: np.ndarray
    cost: float
    k: int


def cheapest_new_option(
    result: TopRRResult,
    weights: Optional[Sequence[float]] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> PlacementResult:
    """Cheapest placement of a *new* option inside ``oR``.

    The manufacturing cost is the (optionally weighted) sum of squared
    attribute values, exactly the model used in the paper's case study.
    """
    if result.is_empty():
        raise InfeasibleProblemError("the top-ranking region is empty; no placement exists")
    option = minimize_quadratic_cost(result.polytope, weights=weights, tol=tol)
    return PlacementResult(option=option, cost=quadratic_cost(option, weights), k=result.k)


def cheapest_enhancement(
    result: TopRRResult,
    existing_option: Sequence[float],
    tol: Tolerance = DEFAULT_TOL,
) -> PlacementResult:
    """Cheapest revamp of ``existing_option`` that makes it top-ranking.

    The modification cost is the Euclidean distance between the current and
    the revamped attribute vector; the returned ``cost`` is that distance.
    If the option is already inside ``oR`` it is returned unchanged with
    cost 0.
    """
    if result.is_empty():
        raise InfeasibleProblemError("the top-ranking region is empty; no enhancement exists")
    existing = np.asarray(existing_option, dtype=float)
    revamped = project_point_onto_polytope(existing, result.polytope, tol=tol)
    distance = float(np.linalg.norm(revamped - existing))
    return PlacementResult(option=revamped, cost=distance, k=result.k)


def smallest_k_within_budget(
    dataset: Dataset,
    region: PreferenceRegion,
    existing_option: Sequence[float],
    budget: float,
    k_max: int,
    k_min: int = 1,
    method: str = "tas*",
    tol: Tolerance = DEFAULT_TOL,
) -> Optional[PlacementResult]:
    """Best (smallest) ``k`` whose cost-optimal enhancement fits a redesign budget.

    Implements the budgeted impact-maximisation procedure of Section 3.1: the
    optimal redesign cost grows monotonically as ``k`` decreases, so ``k`` is
    scanned downwards from ``k_max`` and the placement for the smallest
    affordable ``k`` is returned (``None`` when even ``k_max`` exceeds the
    budget).
    """
    if budget < 0:
        raise InvalidParameterError("budget must be non-negative")
    if k_min <= 0 or k_max < k_min:
        raise InvalidParameterError("need 0 < k_min <= k_max")

    best: Optional[PlacementResult] = None
    for k in range(k_max, k_min - 1, -1):
        result = solve_toprr(dataset, k, region, method=method, tol=tol)
        if result.is_empty():
            break
        placement = cheapest_enhancement(result, existing_option, tol=tol)
        if placement.cost <= budget + tol.geometry:
            best = placement
        else:
            # Costs are monotone non-decreasing as k decreases; no smaller k can fit.
            break
    return best


def cost_saving_vs_competitors(
    result: TopRRResult,
    placement: PlacementResult,
    cost_function: Optional[Callable[[np.ndarray], float]] = None,
) -> tuple[float, float]:
    """Cost saving of ``placement`` against existing options inside ``oR``.

    Reproduces the case-study metric of Section 6.2: the percentage by which
    the cost-optimal new laptop is cheaper to produce than the existing
    products that already sit in the gray (top-ranking) region.  Returns the
    ``(min, max)`` relative saving over those competitors; both are 0 when no
    existing option lies inside ``oR``.
    """
    cost_function = cost_function or quadratic_cost
    competitor_indices = result.existing_top_ranking_options()
    if competitor_indices.size == 0:
        return 0.0, 0.0
    competitor_costs = np.array(
        [cost_function(result.dataset.values[i]) for i in competitor_indices]
    )
    own_cost = cost_function(placement.option)
    savings = 1.0 - own_cost / competitor_costs
    return float(savings.min()), float(savings.max())
