"""Parallel TopRR solving (the paper's "explore parallelism" future work).

Theorem 1 only needs the vertex set of *some* partitioning of ``wR`` into
kIPRs — it does not care how that partitioning was obtained.  This makes the
problem embarrassingly parallel: chop ``wR`` into disjoint boxes, run the
test-and-split recursion on each box independently, take the union of the
accumulated vertex sets, and intersect the impact halfspaces once at the end.
The result is identical to the sequential answer (the chop boundaries simply
become extra, redundant vertices in ``V_all``).

:func:`solve_toprr_parallel` implements that scheme on top of
``concurrent.futures``.  Because the per-piece work is dominated by numpy and
scipy/qhull calls that release the GIL only partially, true speed-ups need
the (default) process executor; the thread and serial executors exist for
environments where spawning processes is undesirable and for testing.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.core.impact import build_impact_region
from repro.core.kipr import WorkingSet
from repro.core.scorecache import VertexScoreMemo
from repro.core.stats import SolverStats
from repro.core.tas_star import TASStarSolver
from repro.core.toprr import TopRRResult
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import merge_vertex_sets
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import r_skyband
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Executor labels accepted by :func:`solve_toprr_parallel`.
EXECUTORS = ("process", "thread", "serial")

#: One warning per process about degenerate chops (tests reset this flag).
_degenerate_split_warned = False


def split_region_into_boxes(region: PreferenceRegion, n_pieces: int) -> List[PreferenceRegion]:
    """Chop a preference region into ``n_pieces`` boxes along its widest axes.

    The region is repeatedly halved along the axis with the largest vertex
    extent until the requested number of pieces is reached (or pieces become
    too thin to split further).  Pieces are full-fledged
    :class:`PreferenceRegion` objects, so any solver can process them
    independently.

    Degenerate regions (every axis extent at or below the 1e-9 split floor,
    e.g. a near-point ``wR``) cannot be chopped and yield fewer pieces than
    requested — possibly just ``[region]``.  That silently serialises a
    "parallel" solve, so the first such shortfall in a process emits a
    :class:`RuntimeWarning`; callers can compare
    ``stats.extra["n_pieces"]`` against ``n_pieces_requested`` to detect it
    programmatically.
    """
    global _degenerate_split_warned
    if n_pieces <= 0:
        raise InvalidParameterError(f"n_pieces must be positive, got {n_pieces}")
    pieces = [region]
    while len(pieces) < n_pieces:
        # Split the piece with the largest extent to keep the pieces balanced.
        extents = []
        for piece in pieces:
            vertices = piece.vertices
            spans = vertices.max(axis=0) - vertices.min(axis=0)
            extents.append((float(spans.max()), int(spans.argmax())))
        widest = int(np.argmax([extent for extent, _axis in extents]))
        span, axis = extents[widest]
        if span <= 1e-9:
            break
        piece = pieces.pop(widest)
        vertices = piece.vertices
        midpoint = float((vertices[:, axis].min() + vertices[:, axis].max()) / 2.0)
        normal = np.zeros(piece.dimension)
        normal[axis] = 1.0
        below, above = piece.split(Hyperplane(normal, midpoint))
        for child in (below, above):
            if not child.is_empty() and child.is_full_dimensional():
                pieces.append(child)
        if not pieces:
            pieces = [region]
            break
    if len(pieces) < n_pieces and not _degenerate_split_warned:
        _degenerate_split_warned = True
        warnings.warn(
            f"split_region_into_boxes produced {len(pieces)} piece(s) instead of the "
            f"requested {n_pieces}: the region is too thin to chop further, so a "
            "parallel solve degrades toward serial execution (warning once per process)",
            RuntimeWarning,
            stacklevel=2,
        )
    return pieces


def _partition_piece(
    filtered: Dataset,
    k: int,
    piece: PreferenceRegion,
    solver_kwargs: dict,
    working: Optional[WorkingSet] = None,
    score_memo: Optional[VertexScoreMemo] = None,
) -> Tuple[np.ndarray, dict]:
    """Worker: run TAS* on one piece and return its vertex set and counters.

    Module-level so that it can be pickled by the process executor.
    ``working`` is the prebuilt root working set (sliced affine form shared
    by all pieces); ``score_memo`` a vertex-score memo bound to it.  The memo
    holds a lock and cannot cross a process boundary, so process workers
    receive ``None`` and let the solver resolve a worker-local one.
    """
    solver = TASStarSolver(**solver_kwargs)
    stats = SolverStats()
    vertices = solver.partition(
        filtered, k, piece, stats=stats, working=working, score_memo=score_memo
    )
    return vertices, {
        "n_regions_tested": stats.n_regions_tested,
        "n_splits": stats.n_splits,
        "n_vertices": stats.n_vertices,
        "n_score_rows_computed": stats.n_score_rows_computed,
        "n_score_rows_reused": stats.n_score_rows_reused,
        "n_score_batches": stats.n_score_batches,
        "n_order_rows_computed": stats.n_order_rows_computed,
        "n_order_rows_reused": stats.n_order_rows_reused,
    }


def solve_toprr_parallel(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    n_workers: int = 4,
    n_pieces: Optional[int] = None,
    executor: str = "process",
    prefilter: bool = True,
    clip_to_unit_box: bool = True,
    incremental: bool = True,
    rng: int = 0,
    tol: Tolerance = DEFAULT_TOL,
) -> TopRRResult:
    """Solve a TopRR instance by partitioning ``wR`` across parallel workers.

    Parameters
    ----------
    dataset, k, region:
        The TopRR instance.
    n_workers:
        Number of worker processes/threads.
    n_pieces:
        Number of boxes ``wR`` is chopped into (defaults to ``2 * n_workers``
        so that faster pieces can steal work from slower ones).
    executor:
        ``"process"`` (default, real parallelism), ``"thread"``, or
        ``"serial"`` (in-process loop; useful for testing and debugging).
    prefilter, clip_to_unit_box, rng, tol:
        As in :func:`repro.core.toprr.solve_toprr`.
    incremental:
        Route each piece through the incremental split-tree vertex-score
        memo, as the sequential solver does by default.  The root working
        set is built once and shared by all pieces; the serial and thread
        executors additionally share one memo across pieces (it is
        thread-safe), so a vertex on the boundary between two pieces is
        scored once.  Process workers build their own memo — the memo's
        lock cannot cross the process boundary — but still reuse rows along
        their piece's split tree.  The score/order counters of
        :class:`~repro.core.stats.SolverStats` are aggregated over pieces.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if n_workers <= 0:
        raise InvalidParameterError(f"n_workers must be positive, got {n_workers}")
    if executor not in EXECUTORS:
        raise InvalidParameterError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if region.n_attributes != dataset.n_attributes:
        raise InvalidParameterError("region and dataset disagree on the number of attributes")

    stats = SolverStats()
    stats.n_input_options = dataset.n_options
    timer = Timer().start()

    if prefilter:
        kept = r_skyband(dataset, k, region, tol=tol)
        filtered = dataset.subset(kept, name=f"{dataset.name}[r-skyband]")
    else:
        filtered = dataset
    stats.n_filtered_options = filtered.n_options

    n_pieces_requested = n_pieces or 2 * n_workers
    pieces = split_region_into_boxes(region, n_pieces_requested)
    solver_kwargs = {"rng": rng, "tol": tol, "incremental": incremental}

    # One root working set for all pieces: the affine score form is computed
    # once here instead of once per piece (and once per worker under the
    # process executor — WorkingSet is plain arrays, so it pickles cleanly).
    root_working = WorkingSet.from_dataset(filtered, k)
    shared_memo = VertexScoreMemo.for_working(root_working) if incremental else None

    piece_outputs: List[Tuple[np.ndarray, dict]] = []
    if executor == "serial" or len(pieces) == 1:
        for piece in pieces:
            piece_outputs.append(
                _partition_piece(filtered, k, piece, solver_kwargs, root_working, shared_memo)
            )
    elif executor == "thread":
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(
                    _partition_piece, filtered, k, piece, solver_kwargs, root_working, shared_memo
                )
                for piece in pieces
            ]
            piece_outputs = [future.result() for future in futures]
    else:
        # The memo embeds a lock and stays home; workers resolve their own.
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_partition_piece, filtered, k, piece, solver_kwargs, root_working)
                for piece in pieces
            ]
            piece_outputs = [future.result() for future in futures]

    vertex_sets = [vertices for vertices, _counters in piece_outputs]
    vall = merge_vertex_sets(vertex_sets, tol=tol)
    for _vertices, counters in piece_outputs:
        stats.n_regions_tested += counters["n_regions_tested"]
        stats.n_splits += counters["n_splits"]
        stats.n_score_rows_computed += counters["n_score_rows_computed"]
        stats.n_score_rows_reused += counters["n_score_rows_reused"]
        stats.n_score_batches += counters["n_score_batches"]
        stats.n_order_rows_computed += counters["n_order_rows_computed"]
        stats.n_order_rows_reused += counters["n_order_rows_reused"]

    polytope, full_weights, thresholds = build_impact_region(
        filtered, vall, k, clip_to_unit_box=clip_to_unit_box, tol=tol
    )
    stats.seconds = timer.stop()
    stats.n_vertices = int(vall.shape[0])
    stats.extra["n_pieces"] = len(pieces)
    stats.extra["n_pieces_requested"] = int(n_pieces_requested)
    stats.extra["n_workers"] = int(n_workers)
    stats.extra["executor"] = executor

    return TopRRResult(
        dataset=dataset,
        filtered=filtered,
        k=k,
        region=region,
        vertices_reduced=vall,
        full_weights=full_weights,
        thresholds=thresholds,
        polytope=polytope,
        stats=stats,
        method=f"TAS* (parallel x{len(pieces)} pieces, {executor})",
        tol=tol,
    )
