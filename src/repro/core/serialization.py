"""Saving and loading TopRR results and engine cache snapshots.

A TopRR region is expensive to compute (seconds to minutes at paper scale)
and cheap to describe: the vertices ``V_all`` with their thresholds fully
determine the membership predicate, and the H-representation of ``oR`` adds
the clipped polytope.  This module serialises exactly that — plus, since the
serving layer arrived, the *warm state* of a whole
:class:`~repro.engine.engine.TopRREngine` session — in two formats:

* **Result documents** (:func:`save_result` / :func:`load_result`): one JSON
  file per :class:`~repro.core.toprr.TopRRResult`.  Schema version 2 embeds
  the dataset (values, option ids, attribute names) and the tolerance
  bundle, so a load without any side input reconstructs the result
  *byte-exactly* — membership tests, volume, placement and option-level
  reports all match the original.  Version-1 documents, which did not embed
  the dataset, still load when the original dataset is passed explicitly;
  loading them without one raises :class:`~repro.exceptions.SerializationError`
  instead of silently substituting a single-row schema stub (the pre-fix
  behaviour, which dropped the real option ids and values).
* **Engine snapshots** (:func:`save_engine_snapshot` /
  :func:`load_engine_snapshot`, surfaced as ``TopRREngine.save_caches`` /
  ``load_caches``): a versioned JSON document persisting every cached
  r-skyband entry (filtered subset, root working set, vertex-score memo,
  exact region vertices), every cached result, and the full-dataset memo of
  ``prefilter=False`` engines.  Arrays are stored as base64-encoded raw
  float64/int bytes, so a restarted replica restores *bit-identical* cache
  contents: its first query against a snapshotted ``(k, region, method)``
  is a cache hit whose answer equals the warm original byte for byte
  (asserted by ``tests/test_snapshot.py``).  The snapshot records a digest
  of the dataset it was taken against; restoring onto a different dataset
  refuses loudly rather than serving stale answers.

Human-readable JSON floats round-trip exactly (``repr`` of a finite float64
is lossless), so the result format stays inspectable; the bulk arrays of
engine snapshots use base64 for compactness.
"""

from __future__ import annotations

import base64
import binascii
import json
import hashlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.kipr import WorkingSet
from repro.core.scorecache import VertexScoreMemo
from repro.core.stats import SolverStats
from repro.core.toprr import TopRRResult
from repro.data.dataset import Dataset
from repro.exceptions import SerializationError
from repro.geometry.polytope import ConvexPolytope
from repro.preference.region import PreferenceRegion
from repro.utils.tolerance import DEFAULT_TOL, Tolerance
from repro.version import __version__

#: Format identifier written into every result file.
FORMAT = "toprr-result"
#: Current result serialisation schema version (2 embeds the dataset).
SCHEMA_VERSION = 2

#: Format identifier written into every engine cache snapshot.
SNAPSHOT_FORMAT = "toprr-engine-snapshot"
#: Current engine snapshot schema version.
SNAPSHOT_VERSION = 1


# ---------------------------------------------------------------------- #
# array / bytes codecs
# ---------------------------------------------------------------------- #
def _encode_array(array: np.ndarray) -> dict:
    """JSON-safe exact encoding of an array (dtype + shape + base64 bytes)."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array`; raises ``SerializationError`` on rot."""
    try:
        raw = base64.b64decode(payload["data"], validate=True)
        array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return array.reshape([int(n) for n in payload["shape"]]).copy()
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise SerializationError(f"corrupt array payload: {exc}") from exc


def dataset_digest(dataset: Dataset) -> str:
    """Content hash binding a snapshot to the exact dataset it was taken on.

    Covers the raw float64 value bytes, the option ids, and the attribute
    names — everything cached entries positionally depend on.  The dataset
    ``version`` is recorded separately (a restored replica may legitimately
    rebuild the same content at version 0).
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.values).tobytes())
    digest.update(json.dumps(list(dataset.option_ids), default=str).encode())
    digest.update(json.dumps(list(dataset.attribute_names)).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# result documents
# ---------------------------------------------------------------------- #
def _dataset_to_dict(dataset: Dataset) -> dict:
    """Embeddable payload reconstructing a dataset exactly (schema v2)."""
    return {
        "values": _encode_array(dataset.values),
        "option_ids": list(dataset.option_ids),
        "attribute_names": list(dataset.attribute_names),
        "name": dataset.name,
        "version": int(dataset.version),
    }


def _dataset_from_dict(payload: dict) -> Dataset:
    """Inverse of :func:`_dataset_to_dict`."""
    return Dataset(
        _decode_array(payload["values"]),
        attribute_names=payload.get("attribute_names"),
        option_ids=payload.get("option_ids"),
        name=str(payload.get("name", "dataset")),
        version=int(payload.get("version", 0)),
    )


def result_to_dict(result: TopRRResult) -> dict:
    """Plain-dict (JSON-ready) representation of a TopRR result.

    Schema version 2: embeds the full dataset payload, the positions of the
    filtered subset, and the tolerance bundle, making
    :func:`result_from_dict` an exact inverse with no side inputs.
    """
    A, b = result.polytope.halfspaces
    region_A, region_b = result.region.polytope.halfspaces
    tol = result._tol
    if result.filtered is result.dataset:
        filtered_kept = None  # prefilter disabled: D' is D itself
    else:
        filtered_kept = [
            int(result.dataset.index_of(option_id))
            for option_id in result.filtered.option_ids
        ]
    return {
        "format": FORMAT,
        "schema_version": SCHEMA_VERSION,
        "library_version": __version__,
        "method": result.method,
        "k": int(result.k),
        "n_attributes": int(result.dataset.n_attributes),
        "attribute_names": list(result.dataset.attribute_names),
        "dataset_name": result.dataset.name,
        "n_dataset_options": int(result.dataset.n_options),
        "dataset": _dataset_to_dict(result.dataset),
        "filtered_kept": filtered_kept,
        "tolerance": {
            "geometry": tol.geometry,
            "score": tol.score,
            "radius": tol.radius,
            "dedup": tol.dedup,
        },
        "vertices_reduced": result.vertices_reduced.tolist(),
        "full_weights": result.full_weights.tolist(),
        "thresholds": result.thresholds.tolist(),
        "option_region": {"A": A.tolist(), "b": b.tolist()},
        "preference_region": {"A": region_A.tolist(), "b": region_b.tolist()},
        "stats": result.stats.as_dict(),
    }


def save_result(result: TopRRResult, path: Union[str, Path]) -> Path:
    """Write ``result`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)
    return path


def result_from_dict(
    payload: dict,
    dataset: Optional[Dataset] = None,
    tol: Optional[Tolerance] = None,
) -> TopRRResult:
    """Rebuild a :class:`TopRRResult` from its dictionary representation.

    ``dataset`` overrides the embedded payload (it must match the stored
    schema); ``tol`` overrides the stored tolerance bundle.  A version-1
    document carries neither an embedded dataset nor a stored tolerance:
    loading one *requires* an explicit ``dataset`` — the old silent
    fallback to a single-row schema stub dropped the real option ids and
    values, so it now raises :class:`SerializationError` instead.
    """
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise SerializationError("the document is not a serialised TopRR result")
    if int(payload.get("schema_version", -1)) > SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {payload.get('schema_version')} "
            f"(this library reads up to {SCHEMA_VERSION})"
        )
    if dataset is not None and dataset.n_attributes != int(payload["n_attributes"]):
        raise SerializationError("the provided dataset does not match the stored schema")

    if tol is None:
        stored_tol = payload.get("tolerance")
        tol = Tolerance(**stored_tol) if stored_tol else DEFAULT_TOL

    if dataset is not None:
        anchor = dataset
    elif "dataset" in payload:
        anchor = _dataset_from_dict(payload["dataset"])
    else:
        raise SerializationError(
            "this document predates schema version 2 and does not embed its "
            "dataset; pass the original dataset to load_result — loading "
            "without one would silently drop the real option ids and values"
        )

    filtered_kept = payload.get("filtered_kept")
    if filtered_kept is None:
        filtered = anchor
    else:
        filtered = anchor.subset(
            [int(i) for i in filtered_kept], name=f"{anchor.name}[r-skyband]"
        )

    polytope = ConvexPolytope(
        np.asarray(payload["option_region"]["A"], dtype=float),
        np.asarray(payload["option_region"]["b"], dtype=float),
        tol=tol,
    )
    region = PreferenceRegion(
        ConvexPolytope(
            np.asarray(payload["preference_region"]["A"], dtype=float),
            np.asarray(payload["preference_region"]["b"], dtype=float),
            tol=tol,
        ),
        n_attributes=int(payload["n_attributes"]),
        tol=tol,
    )
    stats = SolverStats.from_dict(payload.get("stats", {}))

    return TopRRResult(
        dataset=anchor,
        filtered=filtered,
        k=int(payload["k"]),
        region=region,
        vertices_reduced=np.asarray(payload["vertices_reduced"], dtype=float),
        full_weights=np.asarray(payload["full_weights"], dtype=float),
        thresholds=np.asarray(payload["thresholds"], dtype=float),
        polytope=polytope,
        stats=stats,
        method=str(payload.get("method", "loaded")),
        tol=tol,
    )


def load_result(
    path: Union[str, Path],
    dataset: Optional[Dataset] = None,
    tol: Optional[Tolerance] = None,
) -> TopRRResult:
    """Read a result previously written by :func:`save_result`.

    Parameters
    ----------
    path:
        JSON file produced by :func:`save_result`.
    dataset:
        The original dataset; optional for schema-v2 files (which embed it),
        required for legacy v1 files.  When given it overrides the embedded
        payload.
    tol:
        Optional tolerance override; defaults to the stored bundle (v2) or
        :data:`DEFAULT_TOL` (v1).
    """
    path = Path(path)
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read result document {path}: {exc}") from exc
    return result_from_dict(payload, dataset=dataset, tol=tol)


# ---------------------------------------------------------------------- #
# engine cache snapshots
# ---------------------------------------------------------------------- #
def _memo_to_dict(memo: VertexScoreMemo, root_uid: Optional[int] = None) -> dict:
    """Snapshot one vertex-score memo (rows always; orders for ``root_uid``).

    Row keys are the exact float64 bytes of the reduced vertices
    (base64-encoded); the rows themselves are stacked into one matrix.
    Working-set uids are process-local, so only the orderings of the
    entry's *root* working set are portable — they are re-keyed under the
    restored root's fresh uid by :func:`_seed_memo`.
    """
    rows = memo.export_rows()
    row_matrix = (
        np.array([row for _key, row in rows])
        if rows
        else np.empty((0, memo.n_options))
    )
    doc = {
        "max_rows": int(memo.max_rows),
        "max_orders": int(memo.max_orders),
        "row_keys": [base64.b64encode(key).decode("ascii") for key, _row in rows],
        "rows": _encode_array(row_matrix),
    }
    if root_uid is not None:
        orders = memo.export_orders(root_uid)
        order_matrix = (
            np.array([row for _key, row in orders])
            if orders
            else np.empty((0, 0), dtype=np.intp)
        )
        doc["order_keys"] = [
            base64.b64encode(key).decode("ascii") for key, _row in orders
        ]
        doc["orders"] = _encode_array(order_matrix)
    return doc


def _memo_from_dict(
    payload: dict,
    coefficients: np.ndarray,
    constants: np.ndarray,
    root_uid: Optional[int] = None,
) -> VertexScoreMemo:
    """Rebuild a memo from :func:`_memo_to_dict`, re-keying orders to ``root_uid``."""
    memo = VertexScoreMemo(
        coefficients,
        constants,
        max_rows=int(payload["max_rows"]),
        max_orders=int(payload["max_orders"]),
    )
    keys = [base64.b64decode(key, validate=True) for key in payload["row_keys"]]
    rows = _decode_array(payload["rows"])
    if len(keys) != rows.shape[0]:
        raise SerializationError(
            f"memo payload lists {len(keys)} row keys for {rows.shape[0]} rows"
        )
    memo.seed_rows(zip(keys, rows))
    if root_uid is not None and "order_keys" in payload:
        order_keys = [base64.b64decode(key, validate=True) for key in payload["order_keys"]]
        orders = _decode_array(payload["orders"])
        if len(order_keys) != orders.shape[0]:
            raise SerializationError(
                f"memo payload lists {len(order_keys)} order keys for "
                f"{orders.shape[0]} order rows"
            )
        memo.seed_orders(root_uid, zip(order_keys, orders))
    return memo


def _fingerprint_to_json(fingerprint: tuple) -> list:
    """Region fingerprint (tuple of vertex tuples) as nested JSON lists."""
    return [[float(value) for value in vertex] for vertex in fingerprint]


def _fingerprint_from_json(payload: list) -> tuple:
    """Inverse of :func:`_fingerprint_to_json` (hash/equality-compatible)."""
    return tuple(tuple(float(value) for value in vertex) for vertex in payload)


def snapshot_engine(engine) -> dict:
    """JSON-ready snapshot of a :class:`TopRREngine`'s warm cache state.

    Captures, oldest-first so LRU recency replays on restore:

    * every r-skyband entry — ``k``, region fingerprint, the positional
      indices of the band members, the exact (unrounded) region vertices,
      and the entry's vertex-score memo (rows + root-working-set orders);
    * every cached result — key plus an exact array-level dump of the
      :class:`TopRRResult`;
    * the full-dataset memo of ``prefilter=False`` engines (rows only).

    Counters (hits/misses, query counts, mutation totals) are deliberately
    *not* captured: a restored replica starts its accounting fresh.
    """
    dataset = engine.dataset
    skyband_entries = []
    for (k, fingerprint), entry in engine._skyband_cache.items():
        filtered, working, memo, full_vertices = entry
        skyband_entries.append(
            {
                "k": int(k),
                "fingerprint": _fingerprint_to_json(fingerprint),
                "kept": [int(dataset.index_of(oid)) for oid in filtered.option_ids],
                "full_vertices": _encode_array(full_vertices),
                "memo": _memo_to_dict(memo, root_uid=working.uid),
            }
        )

    result_entries = []
    for (k, fingerprint, method_key), result in engine._result_cache.items():
        A, b = result.polytope.halfspaces
        region_A, region_b = result.region.polytope.halfspaces
        if result.filtered is result.dataset:
            kept = None
        else:
            kept = [int(dataset.index_of(oid)) for oid in result.filtered.option_ids]
        result_entries.append(
            {
                "k": int(k),
                "fingerprint": _fingerprint_to_json(fingerprint),
                "method_key": str(method_key),
                "result": {
                    "method": result.method,
                    "n_attributes": int(result.region.n_attributes),
                    "kept": kept,
                    "vertices_reduced": _encode_array(result.vertices_reduced),
                    "full_weights": _encode_array(result.full_weights),
                    "thresholds": _encode_array(result.thresholds),
                    "option_region": {"A": _encode_array(A), "b": _encode_array(b)},
                    "preference_region": {
                        "A": _encode_array(region_A),
                        "b": _encode_array(region_b),
                    },
                    "stats": result.stats.as_dict(),
                },
            }
        )

    full_memo = getattr(engine, "_full_memo", None)
    return {
        "format": SNAPSHOT_FORMAT,
        "schema_version": SNAPSHOT_VERSION,
        "library_version": __version__,
        "engine": {
            "prefilter": bool(engine.prefilter),
            "method": engine.method if isinstance(engine.method, str) else str(engine.method),
            "skyband_cache_size": int(engine._skyband_cache.maxsize),
            "result_cache_size": int(engine._result_cache.maxsize),
        },
        "dataset": {
            "name": dataset.name,
            "n_options": int(dataset.n_options),
            "n_attributes": int(dataset.n_attributes),
            "version": int(dataset.version),
            "digest": dataset_digest(dataset),
        },
        "skyband_entries": skyband_entries,
        "result_entries": result_entries,
        "full_memo": None if full_memo is None else _memo_to_dict(full_memo),
    }


def restore_engine(engine, payload: dict) -> dict:
    """Install a :func:`snapshot_engine` payload into ``engine``'s caches.

    The engine must be bound to the *same dataset content* the snapshot was
    taken against (verified via :func:`dataset_digest`) and share its
    ``prefilter`` setting; anything else raises
    :class:`SerializationError` — restoring caches across datasets would
    serve answers for options that no longer exist.  Entries are installed
    oldest-first, so the restored LRU recency order matches the original
    (and the engine's own — possibly smaller — cache bounds apply).
    Returns ``{"skyband_entries", "result_entries", "memo_rows"}`` counts.
    """
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SerializationError("the document is not a TopRR engine snapshot")
    if int(payload.get("schema_version", -1)) > SNAPSHOT_VERSION:
        raise SerializationError(
            f"unsupported snapshot schema version {payload.get('schema_version')} "
            f"(this library reads up to {SNAPSHOT_VERSION})"
        )
    dataset = engine.dataset
    recorded = payload.get("dataset", {})
    if (
        int(recorded.get("n_options", -1)) != dataset.n_options
        or int(recorded.get("n_attributes", -1)) != dataset.n_attributes
        or recorded.get("digest") != dataset_digest(dataset)
    ):
        raise SerializationError(
            f"snapshot was taken against dataset {recorded.get('name')!r} "
            f"({recorded.get('n_options')}x{recorded.get('n_attributes')}, "
            f"digest {str(recorded.get('digest'))[:12]}...), which does not match "
            f"the engine's dataset {dataset.name!r} "
            f"({dataset.n_options}x{dataset.n_attributes})"
        )
    config = payload.get("engine", {})
    if bool(config.get("prefilter", True)) != engine.prefilter:
        raise SerializationError(
            f"snapshot was taken with prefilter={config.get('prefilter')} but the "
            f"engine runs with prefilter={engine.prefilter}; the cached entries "
            "are not interchangeable between the two modes"
        )

    coefficients, constants = engine.affine_form()
    counts = {"skyband_entries": 0, "result_entries": 0, "memo_rows": 0}
    try:
        for entry in payload.get("skyband_entries", []):
            k = int(entry["k"])
            fingerprint = _fingerprint_from_json(entry["fingerprint"])
            kept = np.asarray([int(i) for i in entry["kept"]], dtype=int)
            filtered = dataset.subset(kept, name=f"{dataset.name}[r-skyband]")
            working = WorkingSet.from_affine_form(
                coefficients[kept], constants[kept], k
            )
            memo = _memo_from_dict(
                entry["memo"],
                working.coefficients,
                working.constants,
                root_uid=working.uid,
            )
            counts["memo_rows"] += len(memo)
            full_vertices = _decode_array(entry["full_vertices"])
            engine._skyband_cache.put(
                (k, fingerprint), (filtered, working, memo, full_vertices)
            )
            counts["skyband_entries"] += 1

        for entry in payload.get("result_entries", []):
            k = int(entry["k"])
            fingerprint = _fingerprint_from_json(entry["fingerprint"])
            doc = entry["result"]
            tol = engine.tol
            region = PreferenceRegion(
                ConvexPolytope(
                    _decode_array(doc["preference_region"]["A"]),
                    _decode_array(doc["preference_region"]["b"]),
                    tol=tol,
                ),
                n_attributes=int(doc["n_attributes"]),
                tol=tol,
            )
            polytope = ConvexPolytope(
                _decode_array(doc["option_region"]["A"]),
                _decode_array(doc["option_region"]["b"]),
                tol=tol,
            )
            kept = doc.get("kept")
            if kept is None:
                filtered = dataset
            else:
                filtered = dataset.subset(
                    [int(i) for i in kept], name=f"{dataset.name}[r-skyband]"
                )
            result = TopRRResult(
                dataset=dataset,
                filtered=filtered,
                k=k,
                region=region,
                vertices_reduced=_decode_array(doc["vertices_reduced"]),
                full_weights=_decode_array(doc["full_weights"]),
                thresholds=_decode_array(doc["thresholds"]),
                polytope=polytope,
                stats=SolverStats.from_dict(doc.get("stats", {})),
                method=str(doc.get("method", "loaded")),
                tol=tol,
            )
            engine._result_cache.put(
                (k, fingerprint, str(entry["method_key"])), result
            )
            counts["result_entries"] += 1

        full_memo = payload.get("full_memo")
        if full_memo is not None and not engine.prefilter:
            memo = _memo_from_dict(full_memo, coefficients, constants)
            counts["memo_rows"] += len(memo)
            with engine._counter_lock:
                engine._full_memo = memo
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise SerializationError(f"truncated or corrupt engine snapshot: {exc}") from exc
    return counts


def save_engine_snapshot(engine, path: Union[str, Path]) -> Path:
    """Write ``engine``'s cache snapshot to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(snapshot_engine(engine), handle, separators=(",", ":"))
    return path


def load_engine_snapshot(engine, path: Union[str, Path]) -> dict:
    """Read a snapshot written by :func:`save_engine_snapshot` into ``engine``.

    Returns the restore counts of :func:`restore_engine`.  Unreadable,
    truncated, or non-snapshot files raise :class:`SerializationError`.
    """
    path = Path(path)
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read engine snapshot {path}: {exc}") from exc
    return restore_engine(engine, payload)
