"""Saving and loading TopRR results.

A TopRR region is expensive to compute (seconds to minutes at paper scale)
and cheap to describe: the vertices ``V_all`` with their thresholds fully
determine the membership predicate, and the H-representation of ``oR`` adds
the clipped polytope.  This module serialises exactly that, so a result can
be computed once (e.g. in a batch job) and reused later by a pricing or
design tool without re-running the solver.

The format is a single JSON document (human-inspectable, dependency-free);
arrays are stored as nested lists.  Loading reconstructs a fully functional
:class:`~repro.core.toprr.TopRRResult` — membership tests, volume, and
cost-optimal placement all work — except that the ``dataset``/``filtered``
references are replaced by a lightweight stub carrying only the attribute
schema (the original options are not embedded, by design; pass the dataset
explicitly to :func:`load_result` when option-level reports are needed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.stats import SolverStats
from repro.core.toprr import TopRRResult
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.geometry.polytope import ConvexPolytope
from repro.preference.region import PreferenceRegion
from repro.utils.tolerance import DEFAULT_TOL, Tolerance
from repro.version import __version__

#: Format identifier written into every file.
FORMAT = "toprr-result"
#: Current serialisation schema version.
SCHEMA_VERSION = 1


def result_to_dict(result: TopRRResult) -> dict:
    """Plain-dict (JSON-ready) representation of a TopRR result."""
    A, b = result.polytope.halfspaces
    region_A, region_b = result.region.polytope.halfspaces
    return {
        "format": FORMAT,
        "schema_version": SCHEMA_VERSION,
        "library_version": __version__,
        "method": result.method,
        "k": int(result.k),
        "n_attributes": int(result.dataset.n_attributes),
        "attribute_names": list(result.dataset.attribute_names),
        "dataset_name": result.dataset.name,
        "n_dataset_options": int(result.dataset.n_options),
        "vertices_reduced": result.vertices_reduced.tolist(),
        "full_weights": result.full_weights.tolist(),
        "thresholds": result.thresholds.tolist(),
        "option_region": {"A": A.tolist(), "b": b.tolist()},
        "preference_region": {"A": region_A.tolist(), "b": region_b.tolist()},
        "stats": result.stats.as_dict(),
    }


def save_result(result: TopRRResult, path: Union[str, Path]) -> Path:
    """Write ``result`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)
    return path


def _schema_stub(payload: dict) -> Dataset:
    """A single-row placeholder dataset carrying only the attribute schema.

    It exists so that the reconstructed result keeps the attribute names and
    dimensionality; callers needing option-level reports should pass the real
    dataset to :func:`load_result`.
    """
    d = int(payload["n_attributes"])
    return Dataset(
        np.zeros((1, d)),
        attribute_names=payload.get("attribute_names"),
        name=f"{payload.get('dataset_name', 'dataset')}[schema-only]",
    )


def result_from_dict(payload: dict, dataset: Optional[Dataset] = None, tol: Tolerance = DEFAULT_TOL) -> TopRRResult:
    """Rebuild a :class:`TopRRResult` from its dictionary representation."""
    if payload.get("format") != FORMAT:
        raise InvalidParameterError("the document is not a serialised TopRR result")
    if int(payload.get("schema_version", -1)) > SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported schema version {payload.get('schema_version')} "
            f"(this library reads up to {SCHEMA_VERSION})"
        )
    if dataset is not None and dataset.n_attributes != int(payload["n_attributes"]):
        raise InvalidParameterError("the provided dataset does not match the stored schema")

    anchor = dataset if dataset is not None else _schema_stub(payload)
    polytope = ConvexPolytope(
        np.asarray(payload["option_region"]["A"], dtype=float),
        np.asarray(payload["option_region"]["b"], dtype=float),
        tol=tol,
    )
    region = PreferenceRegion(
        ConvexPolytope(
            np.asarray(payload["preference_region"]["A"], dtype=float),
            np.asarray(payload["preference_region"]["b"], dtype=float),
            tol=tol,
        ),
        n_attributes=int(payload["n_attributes"]),
        tol=tol,
    )
    stats = SolverStats()
    stats.extra.update(payload.get("stats", {}))

    return TopRRResult(
        dataset=anchor,
        filtered=anchor,
        k=int(payload["k"]),
        region=region,
        vertices_reduced=np.asarray(payload["vertices_reduced"], dtype=float),
        full_weights=np.asarray(payload["full_weights"], dtype=float),
        thresholds=np.asarray(payload["thresholds"], dtype=float),
        polytope=polytope,
        stats=stats,
        method=str(payload.get("method", "loaded")),
        tol=tol,
    )


def load_result(path: Union[str, Path], dataset: Optional[Dataset] = None, tol: Tolerance = DEFAULT_TOL) -> TopRRResult:
    """Read a result previously written by :func:`save_result`.

    Parameters
    ----------
    path:
        JSON file produced by :func:`save_result`.
    dataset:
        The original dataset; optional.  When given, option-level reports
        (e.g. :meth:`TopRRResult.existing_top_ranking_options`) work exactly
        as on the freshly computed result.
    """
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    return result_from_dict(payload, dataset=dataset, tol=tol)
