"""TAS — the Test-and-Split algorithm (Algorithm 1, Section 4).

TAS recursively tests whether a preference region is a kIPR (Lemma 3) and,
if not, splits it by the hyperplane of a randomly chosen violating option
pair.  No further optimization is applied; the optimized variant lives in
:mod:`repro.core.tas_star`.  Both run on the vectorized
:class:`~repro.core.profiles.RegionProfiles` kernel via
:class:`~repro.core.base_solver.BaseTestAndSplit`.
"""

from __future__ import annotations

from repro.core.base_solver import BaseTestAndSplit
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class TASSolver(BaseTestAndSplit):
    """The plain test-and-split solver of Section 4.

    Examples
    --------
    >>> from repro.core.tas import TASSolver
    >>> TASSolver().describe()["strategy"]
    'random'
    """

    name = "TAS"

    def __init__(
        self,
        rng: RngLike = 0,
        max_regions: int = 500_000,
        tol: Tolerance = DEFAULT_TOL,
        incremental: bool = True,
    ):
        super().__init__(
            use_lemma5=False,
            use_lemma7=False,
            strategy="random",
            rng=rng,
            max_regions=max_regions,
            tol=tol,
            incremental=incremental,
        )
