"""Anchor-based UTK partitioner (re-implementation of Mouratidis & Tang [30]).

The *uncertain top-k* (UTK) problem computes, for a preference region
``wR``, every possible top-k set together with the sub-region of ``wR`` in
which it applies.  The original algorithm recursively picks an *anchor*
option, inserts the hyperplanes between the anchor and the options whose
order against it changes inside the region, and stops refining a cell once
the anchor has rank exactly k everywhere in it — at which point the cell is
a (generally non-maximal) kIPR.

This module re-implements that anchor-driven recursion.  It serves two
purposes in the reproduction:

* it is the building block of the PAC baseline of Section 3.4
  (partition-and-convert), and
* it yields the exact ``UTK`` pre-filter of Section 6.3 / Figure 8 — the set
  of options that appear in *some* top-k result inside ``wR`` is the union
  of the top-k sets over all cells.

Because every split involves the anchor (rather than the k-switch pair of
TAS*), the recursion produces many more cells than TAS/TAS*, which is
exactly the behaviour the paper exploits to show PAC's inferiority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.kipr import WorkingSet, vertex_profile
from repro.core.profiles import RegionProfiles
from repro.core.scorecache import VertexScoreMemo, pending_frontier
from repro.core.splitting import split_region
from repro.core.stats import SolverStats
from repro.data.dataset import Dataset
from repro.exceptions import DegeneratePolytopeError, EmptyRegionError, InvalidParameterError
from repro.geometry.counters import geometry_counters
from repro.geometry.hyperplane import Hyperplane
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


@dataclass(frozen=True)
class UTKCell:
    """One cell of the UTK partitioning.

    The cell's interior is rank-invariant (a kIPR up to score ties on its
    boundary facets); ``top_set`` and ``kth`` describe the top-k result that
    holds throughout that interior, evaluated at an interior point so that
    boundary-tie artifacts at the defining vertices cannot leak into the
    annotation.
    """

    region: PreferenceRegion
    top_set: frozenset
    kth: int

    @property
    def vertices(self) -> np.ndarray:
        """Defining vertices of the cell in reduced preference coordinates."""
        return self.region.vertices


class UTKPartitioner:
    """Recursive anchor-based partitioning of a preference region into kIPR cells."""

    def __init__(
        self,
        rng: RngLike = 0,
        max_regions: int = 500_000,
        tol: Tolerance = DEFAULT_TOL,
        incremental: bool = True,
    ):
        self._rng = ensure_rng(rng)
        self.max_regions = int(max_regions)
        self.tol = tol
        self.incremental = bool(incremental)

    # ------------------------------------------------------------------ #
    def _anchor_hyperplane(
        self,
        working: WorkingSet,
        profiles: RegionProfiles,
    ) -> Optional[Hyperplane]:
        """Splitting hyperplane between the anchor and an order-changing option.

        The anchor is the k-th option at the first vertex.  Among the options
        appearing in any vertex's top-k set, the first whose score order
        against the anchor differs between two vertices provides the
        splitting hyperplane (its sign change guarantees a proper cut).  All
        candidate scores at all vertices come from one matrix product against
        the profiles' vertex matrix.
        """
        anchor = int(profiles.kth[0])
        pool = profiles.candidate_pool()
        candidates = pool[pool != anchor]
        if candidates.size == 0:
            return None
        scores = profiles.pool_scores(candidates)
        anchor_scores = profiles.pool_scores(np.array([anchor]))[:, 0]
        diff = anchor_scores[:, None] - scores
        changing = np.any(diff > self.tol.score, axis=0) & np.any(diff < -self.tol.score, axis=0)
        hits = np.flatnonzero(changing)
        if hits.size == 0:
            return None
        candidate = int(candidates[hits[0]])
        coeff = working.coefficients[anchor] - working.coefficients[candidate]
        const = working.constants[anchor] - working.constants[candidate]
        return Hyperplane(coeff, -const)

    @staticmethod
    def _annotate(working: WorkingSet, region: PreferenceRegion) -> UTKCell:
        """Build a cell annotated with the top-k result at an interior point.

        The centroid of the defining vertices is strictly interior for a
        full-dimensional cell, so its top-k result is free of the boundary
        score ties that can occur at vertices lying exactly on a splitting
        hyperplane.
        """
        interior = vertex_profile(working, region.centroid())
        return UTKCell(region=region, top_set=interior.top_set, kth=interior.kth)

    # ------------------------------------------------------------------ #
    def partition(
        self,
        filtered: Dataset,
        k: int,
        region: PreferenceRegion,
        stats: Optional[SolverStats] = None,
        working: Optional[WorkingSet] = None,
        score_memo: Optional[VertexScoreMemo] = None,
    ) -> List[UTKCell]:
        """Partition ``region`` into kIPR cells, each annotated with its top-k set.

        ``working`` optionally supplies a prebuilt root working set (sliced
        from a cached affine score form by the query engine), ``score_memo``
        a vertex-score memo bound to the same affine form.  UTK never prunes
        options, so the memo pays off even more than for TAS/TAS*: every
        region of the (large) anchor-driven partition shares one column set.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        stats = stats if stats is not None else SolverStats()
        working = working if working is not None else WorkingSet.from_dataset(filtered, k)
        stats.k_effective = working.k
        memo = VertexScoreMemo.resolve(working, score_memo, self.incremental)

        cells: List[UTKCell] = []
        stack: List[PreferenceRegion] = [region]
        geometry_before = geometry_counters.snapshot()

        while stack:
            if stats.n_regions_tested >= self.max_regions:
                raise RuntimeError(
                    f"UTK: exceeded the safety cap of {self.max_regions} regions"
                )
            current = stack.pop()
            stats.n_regions_tested += 1
            try:
                vertices = current.vertices
            except (DegeneratePolytopeError, EmptyRegionError):
                continue
            if vertices.shape[0] == 0:
                continue

            if memo is None:
                profiles = RegionProfiles.compute(working, vertices)
            else:
                profiles = memo.region_profiles(
                    working,
                    vertices,
                    frontier=lambda: pending_frontier(
                        (pending, working) for pending in reversed(stack)
                    ),
                    stats=stats,
                )
            violation = profiles.kipr_violation()
            if violation is None:
                stats.n_kipr_regions += 1
                cells.append(self._annotate(working, current))
                continue

            children: Optional[Tuple[PreferenceRegion, PreferenceRegion]] = None
            hyperplane = self._anchor_hyperplane(working, profiles)
            if hyperplane is not None:
                below, above = current.split(hyperplane)
                if below.is_full_dimensional() and above.is_full_dimensional():
                    children = (below, above)
            if children is None:
                below, above, _decision, cut_found = split_region(
                    current,
                    working,
                    profiles,
                    violation,
                    strategy="random",
                    rng=self._rng,
                    tol=self.tol,
                )
                if not cut_found:
                    # The violation is a boundary tie: the interior is
                    # rank-invariant, so close the cell here.
                    stats.n_fallback_splits += 1
                    stats.n_kipr_regions += 1
                    cells.append(self._annotate(working, current))
                    continue
                children = (below, above)

            stats.n_splits += 1
            for child in children:
                if child.is_empty() or not child.is_full_dimensional():
                    continue
                stack.append(child)

        lp_calls, qhull_calls, clip_calls, backend_fallbacks = geometry_counters.delta(
            geometry_before
        )
        stats.n_lp_calls += lp_calls
        stats.n_qhull_calls += qhull_calls
        stats.n_clip_calls += clip_calls
        stats.n_backend_fallbacks += backend_fallbacks
        stats.extra["n_cells"] = len(cells)
        return cells


def possible_top_k_options(
    filtered: Dataset,
    k: int,
    region: PreferenceRegion,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Positional indices (into ``filtered``) of options in some top-k result inside ``region``."""
    cells = UTKPartitioner(rng=rng, tol=tol).partition(filtered, k, region)
    union: set[int] = set()
    for cell in cells:
        union.update(int(i) for i in cell.top_set)
    return np.array(sorted(union), dtype=int)
