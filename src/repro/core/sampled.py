"""The sampling-based (inexact) alternative to TopRR (Section 2.1).

The paper argues that the natural adaptation of prior work — apply a
finite-set method such as the why-not reverse top-k query [26] to a set of
weight vectors *sampled* from ``wR`` — cannot give the guarantee TopRR
provides: "there is no guarantee that the modified option would be among the
top-k for every possible vector in wR, i.e., the solution would be inexact".

This module implements exactly that baseline so the claim can be quantified:

* :func:`sampled_toprr` builds the intersection of the impact halfspaces of
  ``m`` sampled weight vectors (instead of the vertices ``V_all`` of a kIPR
  partitioning) and returns it as a regular :class:`TopRRResult`;
* :func:`evaluate_sampled_exactness` measures how wrong that answer is — the
  fraction of candidate placements the sampled region accepts even though
  they are *not* top-ranking for all of ``wR``, and the worst-case fraction
  of ``wR`` actually covered by such a falsely accepted placement.

The ablation benchmark built on top of this
(``benchmarks/bench_ablation_sampling.py``) shows the trade-off the paper
describes: the error shrinks as ``m`` grows but never reaches the exact
guarantee, while the exact methods get it at comparable cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import TopRREngine

from repro.core.impact import build_impact_region
from repro.core.stats import SolverStats
from repro.core.toprr import TopRRResult
from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import r_skyband
from repro.topk.query import rank_of
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def sampled_toprr(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    n_samples: int = 64,
    include_vertices: bool = True,
    prefilter: bool = True,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
    engine: Optional["TopRREngine"] = None,
) -> TopRRResult:
    """Inexact TopRR answer from ``n_samples`` weight vectors sampled inside ``wR``.

    Parameters
    ----------
    dataset, k, region:
        The TopRR instance.
    n_samples:
        Number of weight vectors drawn uniformly inside ``region``.
    include_vertices:
        Also include the defining vertices of ``region`` among the samples
        (the strongest variant of the baseline; without them even the
        region's corners are unguarded).
    prefilter:
        Apply the r-skyband pre-filter, as the exact methods do.
    rng:
        Seed or generator for the sampling.
    engine:
        Optional :class:`repro.engine.TopRREngine` bound to ``dataset``; when
        given, the r-skyband pre-filter is served from (and feeds) the
        engine's cross-query cache, so baseline comparisons against engine
        sessions do not re-filter.

    Returns
    -------
    :class:`TopRRResult`
        A result whose region is a *superset* of the exact ``oR`` (fewer
        halfspaces are intersected), i.e. it may accept placements that are
        not actually top-ranking throughout ``wR``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if n_samples <= 0:
        raise InvalidParameterError(f"n_samples must be positive, got {n_samples}")
    if region.n_attributes != dataset.n_attributes:
        raise InvalidParameterError("region and dataset disagree on the number of attributes")
    use_engine_prefilter = prefilter and engine is not None and engine.prefilter
    if use_engine_prefilter:
        if engine.dataset is not dataset:
            raise InvalidParameterError("engine is bound to a different dataset")
        if engine.tol != tol:
            raise InvalidParameterError(
                "engine was built with a different tolerance bundle; its cached r-skyband "
                "results would not match this call's tol"
            )

    rng = ensure_rng(rng)
    stats = SolverStats()
    stats.n_input_options = dataset.n_options

    timer = Timer().start()
    if use_engine_prefilter:
        filtered, _working, _memo, _cache_hit = engine.prefiltered(k, region)
    elif prefilter:
        kept = r_skyband(dataset, k, region, tol=tol)
        filtered = dataset.subset(kept, name=f"{dataset.name}[r-skyband]")
    else:
        filtered = dataset
    stats.n_filtered_options = filtered.n_options

    sampled = region.sample_weights(n_samples, rng)
    if include_vertices:
        sampled = np.vstack([sampled, region.vertices])
    polytope, full_weights, thresholds = build_impact_region(filtered, sampled, k, tol=tol)
    stats.seconds = timer.stop()
    stats.n_vertices = int(sampled.shape[0])
    stats.extra["n_samples"] = int(n_samples)

    return TopRRResult(
        dataset=dataset,
        filtered=filtered,
        k=k,
        region=region,
        vertices_reduced=sampled,
        full_weights=full_weights,
        thresholds=thresholds,
        polytope=polytope,
        stats=stats,
        method=f"sampled({n_samples})",
        tol=tol,
    )


@dataclass(frozen=True)
class SampledExactnessReport:
    """How far a sampled TopRR answer is from the exact one.

    Attributes
    ----------
    n_samples:
        Number of weight samples the baseline used.
    n_probes:
        Number of candidate placements probed.
    n_false_accepts:
        Probes accepted by the sampled region but rejected by the exact one.
    false_accept_rate:
        ``n_false_accepts`` over the number of probes the sampled region
        accepts (0 when it accepts none).
    worst_uncovered_fraction:
        For the falsely accepted probes, the largest fraction of test weight
        vectors in ``wR`` for which the probe misses the top-k — i.e. how
        badly the "guarantee" can fail for a placement the baseline endorses.
    """

    n_samples: int
    n_probes: int
    n_false_accepts: int
    false_accept_rate: float
    worst_uncovered_fraction: float

    @property
    def is_exact(self) -> bool:
        """True when no probe exposed the baseline's inexactness."""
        return self.n_false_accepts == 0


def evaluate_sampled_exactness(
    exact: TopRRResult,
    sampled: TopRRResult,
    n_probes: int = 512,
    n_weight_checks: int = 128,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
) -> SampledExactnessReport:
    """Quantify the inexactness of a sampled answer against the exact one.

    Probes are drawn inside the *sampled* region (biased towards its boundary
    by projecting random options onto the accepted set when possible), which
    is where false accepts live.
    """
    if exact.k != sampled.k or exact.dataset is not sampled.dataset:
        raise InvalidParameterError("exact and sampled results must describe the same instance")
    rng = ensure_rng(rng)
    d = exact.dataset.n_attributes

    probes = rng.random((n_probes, d))
    accepted_by_sampled = sampled.contains_many(probes)
    accepted_probes = probes[accepted_by_sampled]
    accepted_by_exact = exact.contains_many(accepted_probes) if accepted_probes.size else np.empty(0, dtype=bool)
    false_mask = ~accepted_by_exact
    n_false = int(np.count_nonzero(false_mask))

    worst_uncovered = 0.0
    if n_false:
        weights_reduced = exact.region.sample_weights(n_weight_checks, rng)
        weights_full = exact.region.space.to_full_many(weights_reduced)
        for probe in accepted_probes[false_mask][: min(n_false, 32)]:
            misses = sum(
                1 for weight in weights_full if rank_of(exact.dataset, weight, probe) > exact.k
            )
            worst_uncovered = max(worst_uncovered, misses / weights_full.shape[0])

    n_accepted = int(np.count_nonzero(accepted_by_sampled))
    return SampledExactnessReport(
        n_samples=int(sampled.stats.extra.get("n_samples", sampled.n_vertices)),
        n_probes=int(n_probes),
        n_false_accepts=n_false,
        false_accept_rate=(n_false / n_accepted) if n_accepted else 0.0,
        worst_uncovered_fraction=float(worst_uncovered),
    )
