"""Sampling-based verification of TopRR results.

The exact algorithms are cross-checked in two independent ways:

* **agreement** — PAC, TAS and TAS* must produce the same region (verified in
  the test suite by mutual containment of vertices and by identical
  membership decisions on random probes);
* **semantics** — this module checks the defining property of ``oR`` by
  sampling: a candidate option *inside* the region must be among the top-k
  of the dataset for every sampled weight vector of ``wR``, and a candidate
  *outside* the region must be outside at least one impact halfspace (so
  there exists a weight vector — one of the vertices of ``V_all`` — for
  which it misses the top-k).

The verifier never proves correctness by itself, but together with the
property-based tests it gives strong evidence that the geometric pipeline
(splitting, vertex enumeration, threshold computation) is sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.toprr import TopRRResult
from repro.topk.query import rank_of
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a sampling verification run."""

    n_weight_samples: int
    n_option_samples: int
    n_inside_checked: int
    n_inside_failures: int
    n_outside_checked: int
    n_outside_failures: int

    @property
    def passed(self) -> bool:
        """True when no sampled counter-example was found."""
        return self.n_inside_failures == 0 and self.n_outside_failures == 0


def verify_result_by_sampling(
    result: TopRRResult,
    n_weight_samples: int = 64,
    n_option_samples: int = 256,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
    margin: float = 1e-7,
) -> VerificationReport:
    """Probe a :class:`TopRRResult` with random weights and random candidate options.

    Parameters
    ----------
    result:
        The result to verify.
    n_weight_samples:
        Number of weight vectors sampled inside ``wR`` (the region vertices
        are always included as well).
    n_option_samples:
        Number of candidate options sampled in the option-space box.
    margin:
        Candidates closer than this to the region boundary are skipped, so
        that floating-point ties do not produce spurious failures.
    """
    rng = ensure_rng(rng)
    dataset = result.dataset
    d = dataset.n_attributes
    space = result.region.space

    reduced_samples = result.region.sample_weights(n_weight_samples, rng)
    reduced_samples = np.vstack([reduced_samples, result.region.vertices])
    full_weights = space.to_full_many(reduced_samples)

    candidates = rng.random((n_option_samples, d))
    # Always probe the extremes of the option box and the dataset's own options.
    candidates = np.vstack([candidates, np.ones((1, d)), dataset.values[: min(64, len(dataset))]])

    scores_at_vall = candidates @ result.full_weights.T
    slack = scores_at_vall - result.thresholds[None, :]
    inside_mask = np.all(slack >= margin, axis=1)
    outside_mask = np.any(slack <= -margin, axis=1)

    n_inside_failures = 0
    n_inside_checked = 0
    for candidate in candidates[inside_mask]:
        n_inside_checked += 1
        for weight in full_weights:
            if rank_of(dataset, weight, candidate) > result.k:
                n_inside_failures += 1
                break

    n_outside_failures = 0
    n_outside_checked = 0
    for candidate in candidates[outside_mask]:
        n_outside_checked += 1
        # Being outside some impact halfspace means there is a vertex of V_all
        # where the candidate scores strictly below the k-th option, i.e. a
        # weight vector in wR for which it is not top-k.
        vertex_index = int(np.argmin(slack[outside_mask][n_outside_checked - 1]))
        weight = result.full_weights[vertex_index]
        if rank_of(dataset, weight, candidate) <= result.k:
            n_outside_failures += 1

    return VerificationReport(
        n_weight_samples=int(full_weights.shape[0]),
        n_option_samples=int(candidates.shape[0]),
        n_inside_checked=n_inside_checked,
        n_inside_failures=n_inside_failures,
        n_outside_checked=n_outside_checked,
        n_outside_failures=n_outside_failures,
    )
