"""Pre-computation for repeated TopRR queries (the paper's future-work direction).

The conclusion of the paper names "pre-computation techniques to further
expedite processing" as future work.  The dominant per-query costs amenable
to pre-computation are (i) the dominance-based filtering of the dataset and
(ii) repeated solves against the same dataset with different target regions
(a business owner exploring several clientele types).

:class:`PrecomputedTopRR` addresses both:

* at construction time it computes the ``k_max``-skyband of the dataset
  once; since the r-skyband of *any* region for any ``k <= k_max`` is a
  subset of it, per-query filtering only needs to scan that (much smaller)
  set instead of the full dataset;
* it memoises query results keyed by ``(k, region fingerprint, method)``, so
  interactive workloads that revisit the same clientele pay the solver cost
  once.

Results are exactly those of :func:`repro.core.toprr.solve_toprr` — the
pre-computation only changes where the candidate options come from, not
which ones survive (the k-skyband is a proven superset of every possible
top-k result, Section 6.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.toprr import SolverLike, TopRRResult, solve_toprr
from repro.data.dataset import Dataset
from repro.engine.fingerprint import region_fingerprint  # noqa: F401  (canonical home)
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.topk.skyband import k_skyband
from repro.utils.timer import Timer
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class PrecomputedTopRR:
    """Per-dataset pre-computation that accelerates repeated TopRR queries.

    Parameters
    ----------
    dataset:
        The option dataset ``D``.
    k_max:
        Largest ``k`` the index will be asked to serve.  Queries with a
        larger ``k`` fall back to the unindexed path.
    tol:
        Tolerance bundle shared with the solvers.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data.generators import generate_independent
    >>> from repro.preference.region import PreferenceRegion
    >>> index = PrecomputedTopRR(generate_independent(2_000, 3, rng=1), k_max=10)
    >>> region = PreferenceRegion.hyperrectangle([(0.3, 0.35), (0.3, 0.35)])
    >>> result = index.solve(5, region)
    >>> bool(result.contains(np.ones(3)))
    True
    """

    def __init__(self, dataset: Dataset, k_max: int, tol: Tolerance = DEFAULT_TOL):
        if k_max <= 0:
            raise InvalidParameterError(f"k_max must be positive, got {k_max}")
        self.dataset = dataset
        self.k_max = int(k_max)
        self.tol = tol

        timer = Timer().start()
        self._skyband_indices = k_skyband(dataset, self.k_max, tol=tol)
        self._skyband = dataset.subset(
            self._skyband_indices, name=f"{dataset.name}[{self.k_max}-skyband]"
        )
        self.precompute_seconds = timer.stop()
        self._cache: Dict[Tuple, TopRRResult] = {}
        self.n_cache_hits = 0
        self.n_cache_misses = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def skyband_size(self) -> int:
        """Number of options in the precomputed ``k_max``-skyband."""
        return self._skyband.n_options

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the precomputed candidate set is than ``D``."""
        return self.dataset.n_options / max(self.skyband_size, 1)

    def cache_info(self) -> dict:
        """Hit/miss counters of the result cache."""
        return {
            "hits": self.n_cache_hits,
            "misses": self.n_cache_misses,
            "entries": len(self._cache),
        }

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def solve(
        self,
        k: int,
        region: PreferenceRegion,
        method: SolverLike = "tas*",
        use_cache: bool = True,
    ) -> TopRRResult:
        """Solve a TopRR query against the precomputed candidate set.

        The solver runs on the ``k_max``-skyband subset, which contains every
        option that can appear in a top-k result for ``k <= k_max`` anywhere
        in the preference space; thresholds and therefore the output region
        are identical to solving against the full dataset.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if region.n_attributes != self.dataset.n_attributes:
            raise InvalidParameterError("region and dataset disagree on the number of attributes")
        if k > self.k_max:
            # The precomputed skyband is not a valid superset for larger k.
            return solve_toprr(self.dataset, k, region, method=method, tol=self.tol)

        key: Optional[Tuple] = None
        if use_cache and isinstance(method, str):
            key = (int(k), method, region_fingerprint(region))
            cached = self._cache.get(key)
            if cached is not None:
                self.n_cache_hits += 1
                return cached
        self.n_cache_misses += 1

        solved = solve_toprr(self._skyband, k, region, method=method, tol=self.tol)
        # Re-anchor the result on the full dataset so that option-level
        # reports (e.g. existing_top_ranking_options) refer to original
        # positional indices; thresholds and the region are unaffected.
        result = TopRRResult(
            dataset=self.dataset,
            filtered=solved.filtered,
            k=solved.k,
            region=solved.region,
            vertices_reduced=solved.vertices_reduced,
            full_weights=solved.full_weights,
            thresholds=solved.thresholds,
            polytope=solved.polytope,
            stats=solved.stats,
            method=f"{solved.method} (precomputed)",
            tol=self.tol,
        )
        if key is not None:
            self._cache[key] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PrecomputedTopRR(n={self.dataset.n_options}, k_max={self.k_max}, "
            f"skyband={self.skyband_size})"
        )
