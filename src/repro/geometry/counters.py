"""Thread-local counters for the expensive geometry primitives.

The tentpole question of the geometry backend work is *observable
elimination*: with an exact closed-form backend selected (2-D polygon or
3-D polyhedron), a solve must perform **zero** `scipy.optimize.linprog`
round trips and **zero** qhull halfspace intersections, replacing both with
closed-form clipping.  The only way to assert that from a test (or to
report it from :class:`~repro.core.stats.SolverStats`) is to count the
calls at the source.

Every LP solve (:func:`repro.geometry.chebyshev.chebyshev_center`,
:func:`~repro.geometry.chebyshev.maximize_linear`), every qhull halfspace
intersection (:func:`repro.geometry.vertex_enum.enumerate_vertices`) and
every clipping pass (:mod:`repro.geometry.polygon`,
:mod:`repro.geometry.polyhedron`) increments the process-wide
:data:`geometry_counters`.  The counters are ``threading.local``
so that concurrent solves (e.g. :meth:`TopRREngine.query_batch` with the
thread executor) each observe their own deltas; solvers snapshot the counters
around their region loop and record the difference into ``SolverStats``.
"""

from __future__ import annotations

import threading
from typing import NamedTuple


class GeometrySnapshot(NamedTuple):
    """Immutable view of the four per-thread geometry counters."""

    n_lp_calls: int
    n_qhull_calls: int
    n_clip_calls: int
    n_backend_fallbacks: int


class GeometryCounters(threading.local):
    """Per-thread running totals of LP, qhull and polygon-clip invocations.

    Attributes
    ----------
    n_lp_calls:
        ``scipy.optimize.linprog`` round trips (Chebyshev centres,
        feasibility tests, linear maximisation).
    n_qhull_calls:
        qhull halfspace intersections (general-dimension vertex
        enumeration).
    n_clip_calls:
        Closed-form clipping passes, polygon or polyhedron (one per
        halfspace clip; a *cut* — one pass emitting both children — also
        counts one).
    n_backend_fallbacks:
        Closed-form backends demoted to the generic LP/qhull path because a
        consistency check caught a numerically broken body (non-finite
        vertices, negative area/volume, a torn face ring).  Zero on healthy
        inputs; nonzero means results are still exact but some regions paid
        the generic-path price.
    """

    def __init__(self):
        self.n_lp_calls = 0
        self.n_qhull_calls = 0
        self.n_clip_calls = 0
        self.n_backend_fallbacks = 0

    def snapshot(self) -> GeometrySnapshot:
        """Current totals, for delta accounting around a solve."""
        return GeometrySnapshot(
            self.n_lp_calls, self.n_qhull_calls, self.n_clip_calls, self.n_backend_fallbacks
        )

    def delta(self, since: GeometrySnapshot) -> GeometrySnapshot:
        """Counts accumulated since ``since`` (an earlier :meth:`snapshot`)."""
        return GeometrySnapshot(
            self.n_lp_calls - since.n_lp_calls,
            self.n_qhull_calls - since.n_qhull_calls,
            self.n_clip_calls - since.n_clip_calls,
            self.n_backend_fallbacks - since.n_backend_fallbacks,
        )

    def reset(self) -> None:
        """Zero the calling thread's counters (used by tests and benchmarks)."""
        self.n_lp_calls = 0
        self.n_qhull_calls = 0
        self.n_clip_calls = 0
        self.n_backend_fallbacks = 0


#: Process-wide (per-thread) geometry counters.
geometry_counters = GeometryCounters()
