"""Quadratic programming over polytopes for cost-optimal option placement.

The paper's applications (Section 1 and the case study of Section 6.2) need
two quadratic programs once the TopRR region ``oR`` is known:

* *option creation*: minimise a manufacturing cost that is monotonic in the
  attribute values — the paper's example uses the summed squares
  ``cost(o) = sum_j o[j]^2`` — subject to ``o`` lying in ``oR``;
* *option enhancement*: minimise the Euclidean modification distance
  ``||o - p_i||`` between an existing option ``p_i`` and its revamped version,
  again subject to the revamped option lying in ``oR``.

Both are instances of minimising ``(x - target)' H (x - target)`` over a
polytope with ``H`` positive definite (identity in the paper's cost models).
We solve them with SLSQP started from the Chebyshev centre and validate the
result against the constraints; an exact projected fallback handles the
trivial case where the unconstrained minimiser is already feasible.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import InfeasibleProblemError
from repro.geometry.chebyshev import chebyshev_center
from repro.geometry.polytope import ConvexPolytope
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def _solve_qp(
    A: np.ndarray,
    b: np.ndarray,
    target: np.ndarray,
    weights: Optional[np.ndarray],
    tol: Tolerance,
) -> np.ndarray:
    """Minimise ``sum_j weights[j] * (x[j] - target[j])^2`` s.t. ``A x <= b``."""
    dim = A.shape[1]
    if weights is None:
        weights = np.ones(dim)
    weights = np.asarray(weights, dtype=float)
    if np.any(weights <= 0):
        raise ValueError("quadratic cost weights must be strictly positive")

    # If the unconstrained optimum is already feasible we are done.
    if np.all(A @ target - b <= tol.geometry):
        return target.copy()

    centre, radius = chebyshev_center(A, b)
    if centre is None or radius < -tol.geometry:
        raise InfeasibleProblemError("placement region is empty")
    x0 = centre

    def objective(x: np.ndarray) -> float:
        """Weighted squared distance from ``x`` to the target point."""
        diff = x - target
        return float(np.dot(weights * diff, diff))

    def gradient(x: np.ndarray) -> np.ndarray:
        """Gradient of :func:`objective` at ``x``."""
        return 2.0 * weights * (x - target)

    constraints = [
        {
            "type": "ineq",
            "fun": lambda x, A=A, b=b: b - A @ x,
            "jac": lambda x, A=A: -A,
        }
    ]
    result = minimize(
        objective,
        x0,
        jac=gradient,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not result.success:
        # Retry from a slightly perturbed start before giving up.
        result = minimize(
            objective,
            x0 + 1e-6,
            jac=gradient,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 2000, "ftol": 1e-12},
        )
    if not result.success:
        raise InfeasibleProblemError(f"quadratic program failed to converge: {result.message}")
    x = np.asarray(result.x, dtype=float)
    # Clip tiny constraint violations introduced by the solver.
    violation = np.max(A @ x - b)
    if violation > 1e-6:
        raise InfeasibleProblemError(
            f"quadratic program returned an infeasible point (violation {violation:.2e})"
        )
    return x


def project_point_onto_polytope(
    point: Sequence[float],
    polytope: ConvexPolytope,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Euclidean projection of ``point`` onto ``polytope``.

    This is the *option enhancement* primitive: the cheapest revamp of an
    existing option so that it enters the TopRR region, when the modification
    cost is proportional to the Euclidean distance moved.
    """
    A, b = polytope.halfspaces
    target = np.asarray(point, dtype=float)
    return _solve_qp(A, b, target, weights=None, tol=tol)


def minimize_quadratic_cost(
    polytope: ConvexPolytope,
    weights: Optional[Sequence[float]] = None,
    target: Optional[Sequence[float]] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Minimise a separable quadratic cost over ``polytope``.

    Parameters
    ----------
    polytope:
        Feasible region (typically the TopRR output ``oR`` intersected with
        the option-space box).
    weights:
        Positive per-attribute cost weights; defaults to all ones, i.e. the
        paper's ``sum of squared attribute values`` manufacturing cost.
    target:
        Cost is measured as squared distance from this point; defaults to the
        origin (so the cost is exactly the summed squares of the attributes).

    Returns
    -------
    The cost-optimal placement as a 1-D array.
    """
    A, b = polytope.halfspaces
    dim = polytope.dimension
    target_arr = np.zeros(dim) if target is None else np.asarray(target, dtype=float)
    weight_arr = None if weights is None else np.asarray(weights, dtype=float)
    return _solve_qp(A, b, target_arr, weights=weight_arr, tol=tol)


def quadratic_cost(point: Sequence[float], weights: Optional[Sequence[float]] = None) -> float:
    """The paper's manufacturing-cost model: weighted sum of squared attribute values."""
    point = np.asarray(point, dtype=float)
    if weights is None:
        return float(np.dot(point, point))
    weights = np.asarray(weights, dtype=float)
    return float(np.dot(weights * point, point))
