"""Volume estimation helpers for convex polytopes.

Exact volumes (via qhull convex hulls of the vertex set) are used for small
dimensions; a Monte-Carlo estimator over the bounding box provides a
cross-check and covers degenerate cases.  Volumes are used in tests (e.g. to
assert that the TopRR region shrinks monotonically as ``k`` decreases) and in
the sensitivity-style reporting of the experiment harness.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polytope import ConvexPolytope
from repro.utils.rng import RngLike, ensure_rng


def exact_volume(polytope: ConvexPolytope) -> float:
    """Exact volume of the polytope (0.0 when empty or lower-dimensional)."""
    return polytope.volume()


def monte_carlo_volume(
    polytope: ConvexPolytope,
    n_samples: int = 20_000,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the polytope volume.

    Samples uniformly in the bounding box of the vertex set and multiplies
    the hit rate by the box volume.  Returns 0.0 for empty polytopes.
    """
    if polytope.is_empty():
        return 0.0
    rng = ensure_rng(rng)
    try:
        lower, upper = polytope.bounding_box()
    except Exception:
        return 0.0
    extent = upper - lower
    box_volume = float(np.prod(np.where(extent > 0, extent, 1.0)))
    if box_volume == 0.0:
        return 0.0
    points = rng.uniform(lower, upper, size=(n_samples, polytope.dimension))
    hits = polytope.contains_many(points)
    return box_volume * float(np.count_nonzero(hits)) / float(n_samples)


def relative_volume(inner: ConvexPolytope, outer: ConvexPolytope) -> float:
    """Ratio ``vol(inner) / vol(outer)``; 0.0 when the outer volume vanishes."""
    outer_volume = outer.volume()
    if outer_volume <= 0.0:
        return 0.0
    return inner.volume() / outer_volume
