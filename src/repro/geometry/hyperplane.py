"""Hyperplanes ``a . x = b`` in arbitrary dimension.

A hyperplane is the boundary of two opposite halfspaces.  In the TopRR
algorithms hyperplanes arise as *splitting hyperplanes* ``wHP(p_i, p_j)``:
the locus of preference vectors that score two options equally
(Section 4.2.1 of the paper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class Hyperplane:
    """A hyperplane ``{x : a . x = b}``.

    Parameters
    ----------
    normal:
        Coefficient vector ``a``.  Must be non-zero.
    offset:
        Right-hand side ``b``.
    normalize:
        If True (default), scale ``a`` and ``b`` so that ``||a||_2 = 1``.
        Normalising makes signed distances comparable across hyperplanes.
    """

    __slots__ = ("normal", "offset")

    def __init__(self, normal: Sequence[float], offset: float, normalize: bool = True):
        a = np.asarray(normal, dtype=float)
        if a.ndim != 1:
            raise InvalidParameterError("hyperplane normal must be a 1-D vector")
        norm = float(np.linalg.norm(a))
        if norm == 0.0 or not np.isfinite(norm):
            raise InvalidParameterError("hyperplane normal must be non-zero and finite")
        b = float(offset)
        if normalize:
            a = a / norm
            b = b / norm
        self.normal = a
        self.offset = b

    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self.normal.shape[0]

    def evaluate(self, point: Sequence[float]) -> float:
        """Signed distance surrogate ``a . x - b`` (true distance if normalised)."""
        return float(np.dot(self.normal, np.asarray(point, dtype=float)) - self.offset)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`evaluate` for an ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=float)
        return pts @ self.normal - self.offset

    def side(self, point: Sequence[float], tol: Tolerance = DEFAULT_TOL) -> int:
        """Classify ``point``: -1 (negative side), 0 (on the plane), +1 (positive side)."""
        value = self.evaluate(point)
        if tol.is_zero(value):
            return 0
        return 1 if value > 0 else -1

    def classify_many(self, points: np.ndarray, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
        """Vectorised :meth:`side` returning an int array of -1/0/+1 labels."""
        values = self.evaluate_many(points)
        labels = np.sign(values).astype(int)
        labels[np.abs(values) <= tol.geometry] = 0
        return labels

    def flipped(self) -> "Hyperplane":
        """The same geometric hyperplane with the normal pointing the other way."""
        return Hyperplane(-self.normal, -self.offset, normalize=False)

    def contains(self, point: Sequence[float], tol: Tolerance = DEFAULT_TOL) -> bool:
        """Return True if ``point`` lies on the hyperplane within tolerance."""
        return tol.is_zero(self.evaluate(point))

    def intersection_parameter(
        self, start: np.ndarray, end: np.ndarray, tol: Tolerance = DEFAULT_TOL
    ) -> float | None:
        """Parameter ``t`` in [0, 1] where the segment ``start→end`` crosses the plane.

        Returns ``None`` when the segment is (numerically) parallel to the
        hyperplane.  This is the primitive used when splitting a polytope
        edge by a splitting hyperplane.
        """
        f_start = self.evaluate(start)
        f_end = self.evaluate(end)
        denom = f_start - f_end
        if tol.is_zero(denom):
            return None
        t = f_start / denom
        return float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        terms = " + ".join(f"{c:.4g}*x{i}" for i, c in enumerate(self.normal))
        return f"Hyperplane({terms} = {self.offset:.4g})"
