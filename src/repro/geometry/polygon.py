"""Exact 2-D polygon geometry: closed-form clipping with no LP and no qhull.

The paper's experiments run overwhelmingly with ``d = 3`` attributes, i.e.
in a 2-D reduced preference space, where every region the test-and-split
solvers touch is a convex *polygon*.  The generic geometry layer treats it
like any polytope: a scipy ``linprog`` round trip for the Chebyshev
centre/feasibility of every split child plus a qhull halfspace intersection
to enumerate its vertices.  Both are closed-form in 2-D:

* **halfspace clipping** (Sutherland–Hodgman) intersects an ordered vertex
  list with ``a . x <= b`` in one pass;
* a **cut by a hyperplane** classifies the vertices once and emits both
  children, which share the cut edge (and share the exact bytes of the cut
  vertices — see :func:`~repro.geometry.vertex_enum.canonicalize_polygon_vertices`);
* the **Chebyshev centre** of a polygon is an LP in three variables whose
  optimum is attained at a basic solution — enumerating the (few) facet
  triples solves it exactly;
* **area** is the shoelace formula, **emptiness** is an empty vertex list.

:class:`Polygon` is the ordered-vertex representation used by the
``backend="polygon"`` dispatch in :class:`~repro.geometry.polytope.ConvexPolytope`
(auto-selected for 2-D bodies).  Each edge carries the *label* (row index)
of the halfspace it lies on, so the final vertex coordinates can be
recomputed exactly from the owning H-representation — which is what makes
the polygon backend bit-identical to the LP/qhull path rather than merely
close to it.

Polygons are built from an arbitrary H-representation by clipping a large
safety box (the same ``±bound`` box :func:`~repro.geometry.chebyshev.chebyshev_center`
imposes on its LP), so unbounded intermediate H-representations are handled
gracefully: the polygon remembers that it still touches the safety box
(synthetic negative edge labels) and callers can fall back to the generic
path for those rare, non-solver cases.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.counters import geometry_counters
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Safety-box half-width for unbounded H-representations; mirrors the
#: ``bound`` box of :func:`repro.geometry.chebyshev.chebyshev_center`.
DEFAULT_BOUND = 1e6

#: Relative threshold under which two consecutive polygon vertices are
#: merged as numerical noise.  Deliberately far below ``Tolerance.dedup`` so
#: that thin-but-real slivers (width above ``Tolerance.radius``) survive and
#: keep their exact inradius — collapsing them here would flip
#: full-dimensionality verdicts relative to the LP path.
_MERGE_EPS = 1e-12


class Polygon:
    """A convex polygon as an ordered (counter-clockwise) vertex list.

    Parameters
    ----------
    points:
        ``(m, 2)`` vertex array in counter-clockwise order.  ``m`` may be 0
        (empty), 1 (point) or 2 (segment) for degenerate bodies.
    edge_labels:
        ``(m,)`` int array; ``edge_labels[i]`` is the index of the halfspace
        row (in the owning H-representation) that edge ``i`` — from vertex
        ``i`` to vertex ``(i + 1) % m`` — lies on.  Negative labels are
        synthetic: they mark edges of the construction safety box and flag
        the polygon as (still) unbounded.

    Instances are immutable by convention: clipping returns new polygons.
    """

    __slots__ = ("points", "edge_labels")

    def __init__(self, points: np.ndarray, edge_labels: np.ndarray):
        self.points = np.asarray(points, dtype=float).reshape(-1, 2)
        self.edge_labels = np.asarray(edge_labels, dtype=int).reshape(-1)
        if self.points.shape[0] != self.edge_labels.shape[0]:
            raise ValueError("polygon needs one edge label per vertex")

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of (ordered) vertices."""
        return self.points.shape[0]

    def is_empty(self) -> bool:
        """True when the polygon has no points at all."""
        return self.points.shape[0] == 0

    def touches_bound(self) -> bool:
        """True when an edge still lies on the construction safety box.

        A polygon built from an H-representation that does not bound the
        plane keeps (synthetic, negative) safety-box labels; callers treat
        such polygons as unbounded bodies.
        """
        return bool(np.any(self.edge_labels < 0))

    def area(self) -> float:
        """Euclidean area via the shoelace formula (0.0 for degenerate bodies)."""
        if self.points.shape[0] < 3:
            return 0.0
        x, y = self.points[:, 0], self.points[:, 1]
        return 0.5 * float(np.abs(np.dot(x, np.roll(y, -1)) - np.dot(np.roll(x, -1), y)))

    def centroid(self) -> np.ndarray:
        """Area centroid (vertex mean for degenerate bodies) — an interior point.

        For a full-dimensional convex polygon the area centroid is strictly
        interior, which is all the solver-side callers need; no LP is
        involved.
        """
        m = self.points.shape[0]
        if m == 0:
            raise ValueError("empty polygon has no centroid")
        if m < 3:
            return self.points.mean(axis=0)
        x, y = self.points[:, 0], self.points[:, 1]
        x1, y1 = np.roll(x, -1), np.roll(y, -1)
        cross = x * y1 - x1 * y
        twice_area = float(cross.sum())
        if abs(twice_area) <= _MERGE_EPS * max(1.0, float(np.abs(self.points).max())):
            return self.points.mean(axis=0)
        cx = float(((x + x1) * cross).sum() / (3.0 * twice_area))
        cy = float(((y + y1) * cross).sum() / (3.0 * twice_area))
        return np.array([cx, cy])

    # ------------------------------------------------------------------ #
    # clipping
    # ------------------------------------------------------------------ #
    def clip(
        self,
        normal: np.ndarray,
        offset: float,
        label: int,
        tol: Tolerance = DEFAULT_TOL,
    ) -> "Polygon":
        """Sutherland–Hodgman clip by the halfspace ``normal . x <= offset``.

        Vertices within ``tol.geometry`` of the boundary count as inside
        (mirroring the vertex classification of the split machinery, where
        "on" vertices belong to both children).  The new edge introduced on
        the clipping line is labelled ``label``.
        """
        if self.points.shape[0] == 0:
            return self
        geometry_counters.n_clip_calls += 1
        signed = self.points @ np.asarray(normal, dtype=float) - float(offset)
        return self._emit_side(signed, label, tol)

    def cut(
        self,
        normal: np.ndarray,
        offset: float,
        label: int,
        tol: Tolerance = DEFAULT_TOL,
    ) -> Tuple["Polygon", "Polygon"]:
        """Split by the hyperplane ``normal . x = offset`` into two children.

        One classification pass serves both sides: the ``(<=)`` child and the
        ``(>=)`` child share the cut edge (labelled ``label`` in both), and
        vertices lying on the hyperplane belong to both children.  Crossing
        points are interpolated once and reused, so the shared vertices are
        bit-identical across siblings even before canonicalisation.
        """
        if self.points.shape[0] == 0:
            return self, self
        geometry_counters.n_clip_calls += 1
        signed = self.points @ np.asarray(normal, dtype=float) - float(offset)
        below = self._emit_side(signed, label, tol)
        above = self._emit_side(-signed, label, tol)
        return below, above

    def _emit_side(self, signed: np.ndarray, cut_label: int, tol: Tolerance) -> "Polygon":
        """One Sutherland–Hodgman pass keeping ``signed <= tol.geometry``."""
        tolg = tol.geometry
        inside = signed <= tolg
        if bool(inside.all()):
            return self
        if not bool(inside.any()):
            return Polygon(np.empty((0, 2)), np.empty(0, dtype=int))
        m = self.points.shape[0]
        out_points: List[np.ndarray] = []
        out_labels: List[int] = []
        for i in range(m):
            j = (i + 1) % m
            d0, d1 = signed[i], signed[j]
            if inside[i]:
                out_points.append(self.points[i])
                if inside[j]:
                    out_labels.append(int(self.edge_labels[i]))
                elif d0 < -tolg:
                    # Strictly inside -> strictly outside: a real crossing.
                    out_labels.append(int(self.edge_labels[i]))
                    t = d0 / (d0 - d1)
                    out_points.append(self.points[i] + t * (self.points[j] - self.points[i]))
                    out_labels.append(cut_label)
                else:
                    # The vertex itself lies on the cut; the boundary leaves
                    # along the cut line from here.
                    out_labels.append(cut_label)
            elif inside[j] and d1 < -tolg and d0 > tolg:
                # Strictly outside -> strictly inside: re-entry crossing; the
                # edge from the crossing to vertex j lies on the old facet.
                t = d0 / (d0 - d1)
                out_points.append(self.points[i] + t * (self.points[j] - self.points[i]))
                out_labels.append(int(self.edge_labels[i]))
            # outside -> "on" needs no crossing: the re-entry point *is*
            # vertex j, emitted (with its own label logic) on the next turn.
        return _merged(np.asarray(out_points), np.asarray(out_labels, dtype=int))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polygon(n_vertices={self.n_vertices}, area={self.area():.3g})"


def polygon_is_consistent(polygon: Polygon) -> bool:
    """Cheap structural health check of a polygon backend body.

    Returns False when the representation can no longer be trusted: a
    non-finite vertex coordinate (NaN/inf crept in through degenerate
    interpolation), or a full polygon whose *signed* shoelace area is
    negative beyond noise — the class invariant is counter-clockwise order,
    so a clockwise ring means the ordering broke and every downstream
    closed-form answer (area, centroid, clip classification) would be wrong.
    The polytope layer runs this before trusting the backend and demotes the
    region to the generic LP/qhull path on failure
    (:meth:`~repro.geometry.polytope.ConvexPolytope` backend degradation).
    """
    points = polygon.points
    if not bool(np.isfinite(points).all()):
        return False
    if points.shape[0] >= 3:
        x, y = points[:, 0], points[:, 1]
        signed = 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(np.roll(x, -1), y))
        scale = max(1.0, float(np.abs(points).max()) ** 2)
        if signed < -1e-9 * scale:
            return False
    return True


def _merged(points: np.ndarray, labels: np.ndarray) -> Polygon:
    """Drop zero-length edges (consecutive vertices merged as numerical noise).

    When vertex ``i`` coincides with its successor (within :data:`_MERGE_EPS`,
    relative), vertex ``i`` and its outgoing zero-length edge are removed; the
    predecessor's edge then connects directly to the successor, which is the
    same geometric edge.  The threshold is far below ``Tolerance.dedup`` on
    purpose: real sliver polygons must survive with their exact shape.
    """
    m = points.shape[0]
    if m < 2:
        return Polygon(points, labels)
    scale = 1.0 + float(np.abs(points).max())
    nxt = np.roll(points, -1, axis=0)
    zero_edge = np.max(np.abs(points - nxt), axis=1) <= _MERGE_EPS * scale
    if bool(zero_edge.any()):
        keep = ~zero_edge
        points = points[keep]
        labels = labels[keep]
    return Polygon(points, labels)


def polygon_from_halfspaces(
    A: np.ndarray,
    b: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
    bound: float = DEFAULT_BOUND,
) -> Polygon:
    """Build the polygon ``{x : A x <= b}`` by clipping a safety box.

    The box ``[-bound, bound]^2`` (synthetic edge labels ``-1 .. -4``) is
    clipped by every row of the H-representation in order; row ``i`` becomes
    edge label ``i``.  If the result still touches the box the input was
    unbounded — :meth:`Polygon.touches_bound` reports it and callers decide
    how to proceed (the polytope layer falls back to the generic qhull path
    for vertex output in that case).
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float).ravel()
    if A.shape[1] != 2:
        raise ValueError("polygon_from_halfspaces requires a 2-D H-representation")
    box_points = np.array(
        [[-bound, -bound], [bound, -bound], [bound, bound], [-bound, bound]]
    )
    polygon = Polygon(box_points, np.array([-1, -2, -3, -4]))
    for row in range(A.shape[0]):
        polygon = polygon.clip(A[row], b[row], label=row, tol=tol)
        if polygon.is_empty():
            break
    return polygon


def polygon_chebyshev(
    A: np.ndarray,
    b: np.ndarray,
    polygon: Polygon,
    tol: Tolerance = DEFAULT_TOL,
    bound: float = DEFAULT_BOUND,
) -> Tuple[Optional[np.ndarray], float]:
    """Exact Chebyshev centre and radius of a 2-D polytope — no LP.

    The Chebyshev problem ``max r  s.t.  a_i . x + r <= b_i`` (rows are unit
    normals) is a linear program in ``(x, r)`` whose optimum is attained at a
    basic solution: three active constraints.  The candidate actives are the
    polytope's non-redundant facets — exactly the edges of ``polygon`` — plus
    the same auxiliary constraints the LP formulation carries (the ``±bound``
    box on ``x``, ``0 <= r <= bound``).  Enumerating the facet triples, one
    vectorised ``3 x 3`` solve each, and keeping the best feasible candidate
    reproduces the LP's optimum in closed form.

    Degenerate bodies are handled by additionally evaluating the polygon's
    own vertices and centroid as centre candidates (a segment's optimum has
    radius 0 with the ``r >= 0`` bound active, which no facet triple
    expresses); the best of all candidates is returned.

    Returns ``(centre, radius)`` exactly like
    :func:`~repro.geometry.chebyshev.chebyshev_center`: ``(None, -inf)`` for
    an empty body, radius (numerically) zero for a lower-dimensional one.

    One documented edge: systems that are infeasible by a margin between
    ``tol.geometry`` and the LP solver's own feasibility slack (~1e-7) are
    reported empty here but may come back from HiGHS as feasible with a tiny
    negative radius.  Both verdicts make every solver discard the region
    (not full-dimensional either way), so solver output is unaffected;
    callers branching on ``is_empty`` for near-infeasible inputs should not
    expect backend-identical answers inside that band.
    """
    if polygon.is_empty():
        return None, float("-inf")
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float).ravel()

    facet_rows = np.unique(polygon.edge_labels[polygon.edge_labels >= 0])
    rows = [np.array([A[i, 0], A[i, 1], 1.0, b[i]]) for i in facet_rows]
    if polygon.touches_bound() or len(rows) < 3:
        # Mirror the LP's auxiliary box exactly: |x_i| <= bound carries no
        # radius coefficient, and r is bounded above by `bound`.
        rows.append(np.array([1.0, 0.0, 0.0, bound]))
        rows.append(np.array([-1.0, 0.0, 0.0, bound]))
        rows.append(np.array([0.0, 1.0, 0.0, bound]))
        rows.append(np.array([0.0, -1.0, 0.0, bound]))
        rows.append(np.array([0.0, 0.0, 1.0, bound]))
    system = np.asarray(rows)
    lhs = system[:, :3]
    rhs = system[:, 3]
    feas_eps = 1e-9 * (1.0 + float(np.abs(rhs).max(initial=0.0)))

    best_center: Optional[np.ndarray] = None
    best_radius = float("-inf")

    n_rows = lhs.shape[0]
    if n_rows >= 3:
        triples = np.array(list(combinations(range(n_rows), 3)), dtype=int)
        mats = lhs[triples]  # (T, 3, 3)
        dets = np.linalg.det(mats)
        regular = np.abs(dets) > 1e-12
        if bool(regular.any()):
            solutions = np.linalg.solve(mats[regular], rhs[triples[regular]][..., None])[..., 0]
            radii = solutions[:, 2]
            # Feasibility of each candidate against every constraint row.
            slack = solutions @ lhs.T - rhs[None, :]
            feasible = np.all(slack <= feas_eps, axis=1) & (radii >= -feas_eps)
            if bool(feasible.any()):
                idx = int(np.argmax(np.where(feasible, radii, -np.inf)))
                best_radius = float(radii[idx])
                best_center = solutions[idx, :2].copy()

    # Point candidates cover degenerate optima (r* = 0 on a segment/point),
    # which no regular facet triple expresses.
    candidates = [polygon.points.mean(axis=0)]
    if polygon.n_vertices >= 3:
        candidates.append(polygon.centroid())
    candidates.extend(polygon.points)
    pts = np.asarray(candidates)
    ball_rows = lhs[:, 2] > 0.5
    if bool(ball_rows.any()):
        slack = rhs[ball_rows][None, :] - pts @ lhs[ball_rows][:, :2].T
        point_radii = slack.min(axis=1)
        idx = int(np.argmax(point_radii))
        if float(point_radii[idx]) > best_radius:
            best_radius = float(point_radii[idx])
            best_center = pts[idx].copy()

    if best_center is None:
        # No r-bearing rows at all (pure box): centre of the box.
        return np.zeros(2), float(bound)
    return best_center, max(best_radius, 0.0)
