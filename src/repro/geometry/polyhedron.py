"""Exact 3-D polyhedron geometry: closed-form clipping with no LP and no qhull.

The paper's second headline setting runs with ``d = 4`` attributes, i.e. in
a 3-D reduced preference space, where every region the test-and-split
solvers touch is a convex *polyhedron*.  PR 3 removed the per-region
``linprog``/qhull round trip for 2-D bodies (:mod:`repro.geometry.polygon`);
this module extends the same closed-form treatment one dimension up:

* a **halfspace clip** runs one Sutherland–Hodgman-style pass over every
  face ring; crossing points are computed once per (undirected) polyhedron
  edge, so the two faces sharing an edge — and the two children of a *cut*
  — receive bit-identical crossing coordinates;
* a **cut by a hyperplane** classifies the vertices once and emits both
  children; the cap polygon on the cut plane (the shared cut facet) is
  rebuilt by chaining the per-face cut edges;
* the **Chebyshev centre** of a polyhedron is an LP in four variables whose
  optimum is attained at a basic solution: enumerating facet 4-tuples with
  batched ``4 x 4`` solves reproduces it in closed form;
* **volume** is a fan of face-pyramids (one third of face area times
  supporting-plane distance), **emptiness** is an empty vertex list.

:class:`Polyhedron` is the facet→vertex-ring representation used by the
``backend="polyhedron"`` dispatch in
:class:`~repro.geometry.polytope.ConvexPolytope` (auto-selected for 3-D
bodies).  Each face carries the *label* (row index) of the halfspace it lies
on, so the final vertex coordinates can be recomputed exactly from the
owning H-representation (see
:func:`~repro.geometry.vertex_enum.canonicalize_polyhedron_vertices`) —
which is what makes the polyhedron backend bit-identical to the LP/qhull
path rather than merely close to it.

Polyhedra are built from an arbitrary H-representation by clipping a large
safety cube (the same ``±bound`` box
:func:`~repro.geometry.chebyshev.chebyshev_center` imposes on its LP), so
unbounded intermediate H-representations are handled gracefully: the
polyhedron remembers that it still touches the safety cube (synthetic
negative face labels) and callers fall back to the generic path for those
rare, non-solver cases.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.counters import geometry_counters
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Safety-cube half-width for unbounded H-representations; mirrors the
#: ``bound`` box of :func:`repro.geometry.chebyshev.chebyshev_center`.
DEFAULT_BOUND = 1e6

#: A face of a polyhedron: an ordered ring of vertex indices plus the label
#: (row index in the owning H-representation) of its supporting halfspace.
#: Negative labels are synthetic safety-cube faces.
Face = Tuple[np.ndarray, int]


def _edge_key(i: int, j: int) -> Tuple[str, int, int]:
    """Canonical (undirected) key of the crossing point on edge ``(i, j)``."""
    return ("e", i, j) if i < j else ("e", j, i)


class Polyhedron:
    """A convex polyhedron as a vertex array plus facet→vertex-ring faces.

    Parameters
    ----------
    points:
        ``(m, 3)`` vertex array.  ``m`` may be 0 (empty) or small without
        any face (a degenerate, lower-dimensional body kept only for
        emptiness verdicts).
    faces:
        Sequence of ``(ring, label)`` pairs: ``ring`` is an int array of
        vertex indices walking the face boundary (consistently wound across
        faces, so every geometric edge appears in exactly two rings, in
        opposite directions), ``label`` is the index of the supporting
        halfspace row in the owning H-representation.  Negative labels are
        synthetic: they mark faces of the construction safety cube and flag
        the polyhedron as (still) unbounded.

    Instances are immutable by convention: clipping returns new polyhedra.
    """

    __slots__ = ("points", "faces")

    def __init__(self, points: np.ndarray, faces: Sequence[Face]):
        self.points = np.asarray(points, dtype=float).reshape(-1, 3)
        self.faces: Tuple[Face, ...] = tuple(
            (np.asarray(ring, dtype=int).reshape(-1), int(label)) for ring, label in faces
        )

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of stored vertices."""
        return self.points.shape[0]

    @property
    def n_faces(self) -> int:
        """Number of faces (0 for empty or degenerate bodies)."""
        return len(self.faces)

    def is_empty(self) -> bool:
        """True when the polyhedron has no points at all."""
        return self.points.shape[0] == 0

    def touches_bound(self) -> bool:
        """True when a face still lies on the construction safety cube.

        A polyhedron built from an H-representation that does not bound
        space keeps (synthetic, negative) safety-cube labels; callers treat
        such polyhedra as unbounded bodies and fall back to the generic
        geometry path.
        """
        return any(label < 0 for _ring, label in self.faces)

    def facet_labels(self) -> np.ndarray:
        """Sorted unique non-negative face labels (the non-redundant rows)."""
        labels = {label for _ring, label in self.faces if label >= 0}
        return np.array(sorted(labels), dtype=int)

    def volume(self) -> float:
        """Euclidean volume as a fan of face-pyramids (0.0 for degenerate bodies).

        Each face contributes ``area * distance(apex, face plane) / 3`` with
        the vertex mean as apex; the per-face distance is taken as an
        absolute value, so the result does not depend on ring orientation.
        """
        if self.points.shape[0] == 0 or not self.faces:
            return 0.0
        apex = self.points.mean(axis=0)
        total = 0.0
        for ring, _label in self.faces:
            if ring.shape[0] < 3:
                continue
            base = self.points[ring[0]]
            spokes = self.points[ring[1:]] - base
            cross = (np.cross(spokes[:-1], spokes[1:])).sum(axis=0)
            area2 = float(np.linalg.norm(cross))
            if area2 <= 0.0:
                continue
            normal = cross / area2
            height = abs(float(normal @ (apex - base)))
            total += area2 * 0.5 * height / 3.0
        return total

    # ------------------------------------------------------------------ #
    # clipping
    # ------------------------------------------------------------------ #
    def clip(
        self,
        normal: np.ndarray,
        offset: float,
        label: int,
        tol: Tolerance = DEFAULT_TOL,
    ) -> "Polyhedron":
        """Clip by the halfspace ``normal . x <= offset``.

        Vertices within ``tol.geometry`` of the boundary count as inside
        (mirroring the vertex classification of the split machinery, where
        "on" vertices belong to both children).  The new cap face introduced
        on the clipping plane is labelled ``label``.
        """
        if self.points.shape[0] == 0:
            return self
        geometry_counters.n_clip_calls += 1
        signed = self.points @ np.asarray(normal, dtype=float) - float(offset)
        return self._emit_side(signed, label, tol, {})

    def cut(
        self,
        normal: np.ndarray,
        offset: float,
        label: int,
        tol: Tolerance = DEFAULT_TOL,
    ) -> Tuple["Polyhedron", "Polyhedron"]:
        """Split by the hyperplane ``normal . x = offset`` into two children.

        One classification pass serves both sides: the ``(<=)`` child and
        the ``(>=)`` child share the cut facet (labelled ``label`` in both),
        and vertices lying on the hyperplane belong to both children.
        Crossing points are interpolated once per polyhedron edge and reused
        by both sides, so the shared vertices are bit-identical across
        siblings even before canonicalisation.
        """
        if self.points.shape[0] == 0:
            return self, self
        geometry_counters.n_clip_calls += 1
        signed = self.points @ np.asarray(normal, dtype=float) - float(offset)
        crossings: Dict[tuple, np.ndarray] = {}
        below = self._emit_side(signed, label, tol, crossings)
        above = self._emit_side(-signed, label, tol, crossings)
        return below, above

    def _crossing(
        self, i: int, j: int, signed: np.ndarray, crossings: Dict[tuple, np.ndarray]
    ) -> Tuple[tuple, np.ndarray]:
        """Crossing point of edge ``(i, j)`` with the clip plane, cached.

        The interpolation always runs from the smaller to the larger vertex
        index, so both faces sharing the edge — and, on a :meth:`cut`, both
        children (a sign flip of ``signed`` cancels exactly in the
        parameter ``t``) — receive the same bytes.
        """
        key = _edge_key(i, j)
        point = crossings.get(key)
        if point is None:
            lo, hi = key[1], key[2]
            t = signed[lo] / (signed[lo] - signed[hi])
            point = self.points[lo] + t * (self.points[hi] - self.points[lo])
            crossings[key] = point
        return key, point

    def _emit_side(
        self,
        signed: np.ndarray,
        cut_label: int,
        tol: Tolerance,
        crossings: Dict[tuple, np.ndarray],
    ) -> "Polyhedron":
        """One clipping pass keeping ``signed <= tol.geometry``."""
        tolg = tol.geometry
        inside = signed <= tolg
        if bool(inside.all()):
            return self
        if not bool(inside.any()):
            return Polyhedron(np.empty((0, 3)), ())

        coords: Dict[tuple, np.ndarray] = {}
        new_rings: List[Tuple[List[tuple], int]] = []
        cut_edges: List[Tuple[tuple, tuple]] = []
        for ring, label in self.faces:
            out_keys: List[tuple] = []
            exit_key: Optional[tuple] = None
            entry_key: Optional[tuple] = None
            m = ring.shape[0]
            for pos in range(m):
                i = int(ring[pos])
                j = int(ring[(pos + 1) % m])
                d0, d1 = signed[i], signed[j]
                if inside[i]:
                    key = ("v", i)
                    out_keys.append(key)
                    coords[key] = self.points[i]
                    if not inside[j]:
                        if d0 < -tolg:
                            # Strictly inside -> strictly outside: a real
                            # crossing; the boundary leaves along the cut.
                            ckey, cpoint = self._crossing(i, j, signed, crossings)
                            out_keys.append(ckey)
                            coords[ckey] = cpoint
                            exit_key = ckey
                        else:
                            # The vertex itself lies on the cut plane.
                            exit_key = key
                elif inside[j]:
                    if d1 < -tolg and d0 > tolg:
                        # Strictly outside -> strictly inside: re-entry.
                        ckey, cpoint = self._crossing(i, j, signed, crossings)
                        out_keys.append(ckey)
                        coords[ckey] = cpoint
                        entry_key = ckey
                    else:
                        # Outside -> "on": the re-entry point *is* vertex j,
                        # emitted (as a kept vertex) on the next turn.
                        entry_key = ("v", j)
            if len(out_keys) >= 3:
                new_rings.append((out_keys, int(label)))
            if exit_key is not None and entry_key is not None and exit_key != entry_key:
                cut_edges.append((exit_key, entry_key))

        cap = _chain_cap(cut_edges, coords)
        if cap is not None:
            new_rings.append((cap, int(cut_label)))

        if not new_rings:
            # Lower-dimensional intersection (the plane grazes the body):
            # keep the surviving points so emptiness verdicts stay correct,
            # but drop the face structure — the body has no interior.
            keys = [("v", int(i)) for i in np.flatnonzero(inside)]
            keys.extend(k for k in coords if k[0] == "e")
            return Polyhedron(
                np.asarray([coords.get(k, self.points[k[1]]) for k in keys]).reshape(-1, 3),
                (),
            )

        index: Dict[tuple, int] = {}
        rows: List[np.ndarray] = []
        faces: List[Face] = []
        for keys, label in new_rings:
            ring = np.empty(len(keys), dtype=int)
            for pos, key in enumerate(keys):
                slot = index.get(key)
                if slot is None:
                    slot = len(rows)
                    index[key] = slot
                    rows.append(coords[key])
                ring[pos] = slot
            faces.append((ring, label))
        return Polyhedron(np.asarray(rows), faces)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polyhedron(n_vertices={self.n_vertices}, n_faces={self.n_faces})"


def _chain_cap(
    cut_edges: List[Tuple[tuple, tuple]], coords: Dict[tuple, np.ndarray]
) -> Optional[List[tuple]]:
    """Assemble the cap-face ring from the per-face cut edges.

    Each clipped face contributes one directed segment on the cut plane;
    because face rings are consistently wound, the segments chain head to
    tail into a single cycle.  Tolerance-degenerate inputs (duplicate
    starts, open chains) fall back to ordering the cap vertices by angle
    around their mean in the cut plane — always a valid convex ring.
    """
    if len(cut_edges) < 3:
        return None
    succ: Dict[tuple, tuple] = {}
    consistent = True
    for start, end in cut_edges:
        if start in succ:
            consistent = False
            break
        succ[start] = end
    ring: Optional[List[tuple]] = None
    if consistent:
        first = cut_edges[0][0]
        ring = [first]
        node = succ.get(first)
        while node is not None and node != first and len(ring) <= len(cut_edges):
            ring.append(node)
            node = succ.get(node)
        if node != first or len(ring) != len(succ):
            ring = None
    if ring is None:
        keys = sorted({key for edge in cut_edges for key in edge})
        pts = np.asarray([coords[key] for key in keys])
        center = pts.mean(axis=0)
        spread = pts - center
        # Project onto the two principal directions of the cap polygon and
        # order by angle; SVD gives a deterministic in-plane basis.
        _u, _s, vt = np.linalg.svd(spread, full_matrices=False)
        angles = np.arctan2(spread @ vt[1], spread @ vt[0])
        ring = [keys[i] for i in np.argsort(angles, kind="stable")]
    return ring if len(ring) >= 3 else None


def _canonical_vertex_ids(points: np.ndarray) -> np.ndarray:
    """Map each stored vertex to a canonical id, merging geometric duplicates.

    Face rings do not share vertex indices: the clipper emits per-face
    copies of every corner, so one geometric vertex typically appears under
    several indices.  Union-find over pairs within a relative tolerance
    (``1e-9`` of the coordinate scale) collapses those copies so that edge
    identity can be decided geometrically instead of by raw index.  The
    quadratic pairing is fine here — backend bodies carry tens of vertices.
    """
    m = points.shape[0]
    parent = np.arange(m)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    if m:
        thresh = 1e-9 * max(1.0, float(np.abs(points).max()))
        close = np.abs(points[:, None, :] - points[None, :, :]).max(axis=2) <= thresh
        for i, j in zip(*np.nonzero(np.triu(close, k=1))):
            ri, rj = find(int(i)), find(int(j))
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)
    return np.array([find(i) for i in range(m)], dtype=int)


def polyhedron_is_consistent(polyhedron: Polyhedron) -> bool:
    """Cheap structural health check of a polyhedron backend body.

    Returns False when the representation can no longer be trusted:
    non-finite vertex coordinates, a face ring with fewer than three
    vertices, out-of-range or repeated indices, or a torn edge structure —
    in a closed polyhedral surface every undirected edge belongs to exactly
    two faces, so any other count means a clip left the face complex broken
    and downstream closed-form answers (volume, Chebyshev facet tuples,
    further clips) would be wrong.  Because face rings store per-face
    *copies* of shared corners, edges are identified by canonical geometric
    vertex (duplicates merged within a relative ``1e-9`` tolerance), and
    zero-length edges between merged copies are ignored.  Sliver faces that
    collapse to fewer than three distinct geometric vertices (zero area, so
    no edge of theirs borders a second face) are skipped rather than
    counted.  Degenerate bodies (points without faces) pass: they are valid
    lower-dimensional placeholders.  The polytope layer runs this before trusting the backend
    and demotes the region to the generic LP/qhull path on failure
    (:meth:`~repro.geometry.polytope.ConvexPolytope` backend degradation).
    """
    points = polyhedron.points
    if not bool(np.isfinite(points).all()):
        return False
    if not polyhedron.faces:
        return True
    n = points.shape[0]
    canonical = _canonical_vertex_ids(points)
    edge_counts: dict = {}
    for ring, _label in polyhedron.faces:
        if ring.shape[0] < 3:
            return False
        if ring.min(initial=0) < 0 or ring.max(initial=-1) >= n:
            return False
        if np.unique(ring).shape[0] != ring.shape[0]:
            return False
        if np.unique(canonical[ring]).shape[0] < 3:
            # Zero-area sliver: geometrically a point or segment, so none of
            # its edges borders a second face — it cannot tear the surface.
            continue
        for a, b in zip(ring, np.roll(ring, -1)):
            ca, cb = int(canonical[a]), int(canonical[b])
            if ca == cb:
                continue
            key = _edge_key(ca, cb)
            edge_counts[key] = edge_counts.get(key, 0) + 1
    return all(count == 2 for count in edge_counts.values())


def polyhedron_from_halfspaces(
    A: np.ndarray,
    b: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
    bound: float = DEFAULT_BOUND,
) -> Polyhedron:
    """Build the polyhedron ``{x : A x <= b}`` by clipping a safety cube.

    The cube ``[-bound, bound]^3`` (synthetic face labels ``-1 .. -6``) is
    clipped by every row of the H-representation in order; row ``i`` becomes
    face label ``i``.  If the result still touches the cube the input was
    unbounded — :meth:`Polyhedron.touches_bound` reports it and callers
    decide how to proceed (the polytope layer falls back to the generic
    qhull path for vertex output in that case).
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float).ravel()
    if A.shape[1] != 3:
        raise ValueError("polyhedron_from_halfspaces requires a 3-D H-representation")
    B = float(bound)
    corners = np.array(
        [
            [-B, -B, -B],
            [B, -B, -B],
            [B, B, -B],
            [-B, B, -B],
            [-B, -B, B],
            [B, -B, B],
            [B, B, B],
            [-B, B, B],
        ]
    )
    # Consistently wound (CCW viewed from outside), so shared edges appear
    # in opposite directions in their two rings.
    rings = [
        [0, 3, 2, 1],  # z = -B
        [4, 5, 6, 7],  # z = +B
        [0, 1, 5, 4],  # y = -B
        [2, 3, 7, 6],  # y = +B
        [0, 4, 7, 3],  # x = -B
        [1, 2, 6, 5],  # x = +B
    ]
    polyhedron = Polyhedron(corners, [(ring, -(index + 1)) for index, ring in enumerate(rings)])
    for row in range(A.shape[0]):
        polyhedron = polyhedron.clip(A[row], b[row], label=row, tol=tol)
        if polyhedron.is_empty():
            break
    return polyhedron


def polyhedron_chebyshev(
    A: np.ndarray,
    b: np.ndarray,
    polyhedron: Polyhedron,
    tol: Tolerance = DEFAULT_TOL,
    bound: float = DEFAULT_BOUND,
) -> Tuple[Optional[np.ndarray], float]:
    """Exact Chebyshev centre and radius of a 3-D polytope — no LP.

    The Chebyshev problem ``max r  s.t.  a_i . x + r <= b_i`` (rows are unit
    normals) is a linear program in ``(x, r)`` whose optimum is attained at
    a basic solution: four active constraints.  The candidate actives are
    the polytope's non-redundant facets — exactly the faces of
    ``polyhedron`` — plus the same auxiliary constraints the LP formulation
    carries (the ``±bound`` box on ``x``, ``0 <= r <= bound``).  Enumerating
    the facet 4-tuples, one batched ``4 x 4`` solve each, and keeping the
    best feasible candidate reproduces the LP's optimum in closed form.
    (Restricting to non-redundant rows is sound: with unit normals, a row
    implied by the facets in ``x``-space is also implied in ``(x, r)``-space
    for ``r >= 0``.)

    Degenerate bodies are handled by additionally evaluating the
    polyhedron's own vertices and their mean as centre candidates (a flat
    body's optimum has radius 0 with the ``r >= 0`` bound active, which no
    facet 4-tuple expresses); the best of all candidates is returned.  When
    the clipped body kept no face structure at all (a grazing plane left a
    lower-dimensional slab), *every* row of the H-representation is used for
    the feasibility check.

    Returns ``(centre, radius)`` exactly like
    :func:`~repro.geometry.chebyshev.chebyshev_center`: ``(None, -inf)``
    for an empty body, radius (numerically) zero for a lower-dimensional
    one.  The same near-infeasibility band documented on
    :func:`~repro.geometry.polygon.polygon_chebyshev` applies: systems
    infeasible by a margin between ``tol.geometry`` and the LP solver's own
    feasibility slack may be reported empty here but feasible (with a tiny
    negative radius) by HiGHS — either verdict makes every solver discard
    the region.
    """
    if polyhedron.is_empty():
        return None, float("-inf")
    A = np.atleast_2d(np.asarray(A, dtype=float))
    b = np.asarray(b, dtype=float).ravel()

    facet_rows = polyhedron.facet_labels()
    if facet_rows.size == 0 and polyhedron.n_faces == 0:
        # Degenerate body without a face structure: no redundancy
        # information, so feasibility must be checked against every row.
        facet_rows = np.arange(A.shape[0])
    rows = [np.array([A[i, 0], A[i, 1], A[i, 2], 1.0, b[i]]) for i in facet_rows]
    if polyhedron.touches_bound() or len(rows) < 4:
        # Mirror the LP's auxiliary box exactly: |x_i| <= bound carries no
        # radius coefficient, and r is bounded above by `bound`.
        for axis in range(3):
            unit = np.zeros(5)
            unit[axis] = 1.0
            unit[4] = bound
            rows.append(unit.copy())
            unit[axis] = -1.0
            rows.append(unit)
        rows.append(np.array([0.0, 0.0, 0.0, 1.0, bound]))
    system = np.asarray(rows)
    lhs = system[:, :4]
    rhs = system[:, 4]
    feas_eps = 1e-9 * (1.0 + float(np.abs(rhs).max(initial=0.0)))

    best_center: Optional[np.ndarray] = None
    best_radius = float("-inf")

    n_rows = lhs.shape[0]
    if n_rows >= 4:
        quads = np.array(list(combinations(range(n_rows), 4)), dtype=int)
        mats = lhs[quads]  # (T, 4, 4)
        dets = np.linalg.det(mats)
        regular = np.abs(dets) > 1e-12
        if bool(regular.any()):
            solutions = np.linalg.solve(mats[regular], rhs[quads[regular]][..., None])[..., 0]
            radii = solutions[:, 3]
            # Feasibility of each candidate against every constraint row.
            slack = solutions @ lhs.T - rhs[None, :]
            feasible = np.all(slack <= feas_eps, axis=1) & (radii >= -feas_eps)
            if bool(feasible.any()):
                idx = int(np.argmax(np.where(feasible, radii, -np.inf)))
                best_radius = float(radii[idx])
                best_center = solutions[idx, :3].copy()

    # Point candidates cover degenerate optima (r* = 0 on a flat body),
    # which no regular facet 4-tuple expresses.
    pts = np.vstack([polyhedron.points.mean(axis=0)[None, :], polyhedron.points])
    ball_rows = lhs[:, 3] > 0.5
    if bool(ball_rows.any()):
        slack = rhs[ball_rows][None, :] - pts @ lhs[ball_rows][:, :3].T
        point_radii = slack.min(axis=1)
        idx = int(np.argmax(point_radii))
        if float(point_radii[idx]) > best_radius:
            best_radius = float(point_radii[idx])
            best_center = pts[idx].copy()

    if best_center is None:
        # No r-bearing rows at all (pure box): centre of the box.
        return np.zeros(3), float(bound)
    return best_center, max(best_radius, 0.0)
