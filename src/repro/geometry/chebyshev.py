"""Linear-programming helpers: feasibility and Chebyshev centres.

The Chebyshev centre of a polytope ``{x : A x <= b}`` is the centre of its
largest inscribed ball.  It serves two purposes in this package:

* it provides the strictly interior point required by qhull's halfspace
  intersection (vertex enumeration), and
* its radius is a robust emptiness / degeneracy test for the sub-regions
  produced while splitting preference regions (a child whose radius is below
  tolerance is a measure-zero sliver and is discarded).
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import InfeasibleProblemError
from repro.geometry.counters import geometry_counters


def chebyshev_center(
    A: np.ndarray,
    b: np.ndarray,
    bound: float = 1e6,
) -> Tuple[Optional[np.ndarray], float]:
    """Compute the Chebyshev centre of ``{x : A x <= b}``.

    Parameters
    ----------
    A, b:
        Constraint matrix and right-hand side (``A x <= b``).
    bound:
        Box bound ``|x_i| <= bound`` added to keep the LP bounded even if the
        polytope itself is unbounded (TopRR polytopes are always bounded by
        construction, but intermediate H-representations may not be).

    Returns
    -------
    (center, radius):
        ``center`` is ``None`` and ``radius`` is ``-inf`` when the system is
        infeasible.  A ``radius`` of (numerically) zero means the feasible
        set is non-empty but lower-dimensional.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    if A.ndim != 2:
        raise ValueError("A must be a 2-D matrix")
    n_constraints, dim = A.shape
    if b.shape != (n_constraints,):
        raise ValueError("b must have one entry per row of A")

    row_norms = np.linalg.norm(A, axis=1)
    # Degenerate all-zero rows encode "0 <= b"; treat infeasible rows directly.
    zero_rows = row_norms <= 0.0
    if np.any(zero_rows) and np.any(b[zero_rows] < 0):
        return None, float("-inf")
    keep = ~zero_rows
    A_eff = A[keep]
    b_eff = b[keep]
    norms_eff = row_norms[keep]

    if A_eff.shape[0] == 0:
        # Unconstrained: centre at origin with the box radius.
        return np.zeros(dim), float(bound)

    # Variables: (x_1..x_dim, r); maximise r.
    c = np.zeros(dim + 1)
    c[-1] = -1.0
    A_ub = np.hstack([A_eff, norms_eff[:, None]])
    b_ub = b_eff
    bounds = [(-bound, bound)] * dim + [(0.0, bound)]
    geometry_counters.n_lp_calls += 1
    res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:
        return None, float("-inf")
    center = np.asarray(res.x[:dim], dtype=float)
    radius = float(res.x[-1])
    return center, radius


def is_feasible(A: np.ndarray, b: np.ndarray, bound: float = 1e6) -> bool:
    """Return True if ``{x : A x <= b}`` is non-empty (possibly lower-dimensional)."""
    center, radius = chebyshev_center(A, b, bound=bound)
    return center is not None and radius >= 0.0


def interior_point(A: np.ndarray, b: np.ndarray, bound: float = 1e6) -> np.ndarray:
    """Return a strictly interior point of ``{x : A x <= b}``.

    Raises
    ------
    InfeasibleProblemError
        If the polytope is empty or has an empty interior (degenerate).
    """
    center, radius = chebyshev_center(A, b, bound=bound)
    if center is None or radius <= 0.0:
        raise InfeasibleProblemError(
            "polytope is empty or lower-dimensional; no strictly interior point exists"
        )
    return center


def maximize_linear(
    objective: np.ndarray,
    A: np.ndarray,
    b: np.ndarray,
    bound: float = 1e6,
) -> Tuple[np.ndarray, float]:
    """Maximise ``objective . x`` over ``{x : A x <= b}`` (within a safety box).

    Returns the optimal point and value.  Used for redundancy checks and for
    computing extreme option placements inside the TopRR output region.
    """
    objective = np.asarray(objective, dtype=float)
    dim = objective.shape[0]
    geometry_counters.n_lp_calls += 1
    res = linprog(
        -objective,
        A_ub=np.asarray(A, dtype=float),
        b_ub=np.asarray(b, dtype=float),
        bounds=[(-bound, bound)] * dim,
        method="highs",
    )
    if not res.success:
        raise InfeasibleProblemError("linear program is infeasible or unbounded")
    point = np.asarray(res.x, dtype=float)
    return point, float(objective @ point)


def chebyshev_centre(
    A: np.ndarray,
    b: np.ndarray,
    bound: float = 1e6,
) -> Tuple[Optional[np.ndarray], float]:
    """Deprecated British-spelling alias of :func:`chebyshev_center`.

    The package historically mixed both spellings (the module function was
    ``chebyshev_center`` while :class:`~repro.geometry.polytope.ConvexPolytope`
    exposed a ``chebyshev_centre`` property).  ``chebyshev_center`` is the one
    canonical name; this alias emits a :class:`DeprecationWarning` and will be
    removed in a future release.
    """
    warnings.warn(
        "chebyshev_centre is deprecated; use chebyshev_center",
        DeprecationWarning,
        stacklevel=2,
    )
    return chebyshev_center(A, b, bound=bound)
