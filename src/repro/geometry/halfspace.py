"""Halfspaces ``a . x <= b``.

Halfspaces appear in two roles in the paper:

* *impact halfspaces* ``oH(w)`` in the option space (Definition 2), whose
  intersection is the TopRR output region ``oR``;
* *preference halfspaces* ``wH(p_i, p_j)`` in the preference space, which
  bound the rank-invariant regions produced during test-and-split.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.hyperplane import Hyperplane
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class Halfspace:
    """A closed halfspace ``{x : a . x <= b}``.

    The halfspace stores a normalised boundary :class:`Hyperplane`; the
    *interior* direction is ``-a`` (points with smaller ``a . x``).
    """

    __slots__ = ("boundary",)

    def __init__(self, normal: Sequence[float], offset: float, normalize: bool = True):
        self.boundary = Hyperplane(normal, offset, normalize=normalize)

    @classmethod
    def from_hyperplane(cls, hyperplane: Hyperplane) -> "Halfspace":
        """Halfspace on the negative side of ``hyperplane``."""
        return cls(hyperplane.normal, hyperplane.offset, normalize=False)

    @property
    def normal(self) -> np.ndarray:
        """Outward normal ``a`` of the constraint ``a . x <= b``."""
        return self.boundary.normal

    @property
    def offset(self) -> float:
        """Right-hand side ``b`` of the constraint ``a . x <= b``."""
        return self.boundary.offset

    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self.boundary.dimension

    def contains(self, point: Sequence[float], tol: Tolerance = DEFAULT_TOL) -> bool:
        """Return True if ``point`` satisfies ``a . x <= b`` within tolerance."""
        return self.boundary.evaluate(point) <= tol.geometry

    def contains_many(self, points: np.ndarray, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
        """Vectorised :meth:`contains` for an ``(n, d)`` array of points."""
        return self.boundary.evaluate_many(points) <= tol.geometry

    def violation(self, point: Sequence[float]) -> float:
        """Positive amount by which ``point`` violates the constraint (0 if satisfied)."""
        return max(0.0, self.boundary.evaluate(point))

    def complement(self) -> "Halfspace":
        """The opposite closed halfspace ``a . x >= b`` expressed as ``-a . x <= -b``."""
        return Halfspace(-self.normal, -self.offset, normalize=False)

    def as_inequality(self) -> tuple[np.ndarray, float]:
        """Return ``(a, b)`` for the constraint ``a . x <= b``."""
        return self.normal.copy(), float(self.offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        terms = " + ".join(f"{c:.4g}*x{i}" for i, c in enumerate(self.normal))
        return f"Halfspace({terms} <= {self.offset:.4g})"


def stack_halfspaces(halfspaces: Sequence[Halfspace]) -> tuple[np.ndarray, np.ndarray]:
    """Stack a sequence of halfspaces into matrix form ``(A, b)`` with ``A x <= b``."""
    if not halfspaces:
        raise ValueError("cannot stack an empty sequence of halfspaces")
    A = np.vstack([h.normal for h in halfspaces])
    b = np.array([h.offset for h in halfspaces], dtype=float)
    return A, b
