"""Convex polytopes with the hybrid facet-based representation of the paper.

A :class:`ConvexPolytope` keeps three coordinated views of the same body
(Section 4.2.2 of the paper):

* the H-representation ``A x <= b`` (one row per bounding halfspace),
* the V-representation (the defining vertices), and
* the vertex–facet incidence ("facet-based representation": each facet is a
  hyperplane augmented with the defining vertices lying on it).

Splitting a polytope by a hyperplane — the core geometric operation of the
test-and-split algorithms — classifies the vertices by side, reuses the
parent's facets, adds the splitting hyperplane as a new facet on each child,
and re-enumerates vertices with qhull (the same library the paper's C++
implementation calls).  Children whose Chebyshev radius is below tolerance
are reported as empty.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DegeneratePolytopeError, EmptyRegionError
from repro.geometry.chebyshev import chebyshev_center, maximize_linear
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.vertex_enum import (
    deduplicate_points,
    enumerate_vertices,
    vertex_facet_incidence,
)
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


class ConvexPolytope:
    """A bounded convex polytope ``{x : A x <= b}``.

    Instances are immutable from the caller's point of view: all operations
    (intersection, splitting) return new polytopes.

    Parameters
    ----------
    A, b:
        H-representation.  Rows with (numerically) zero normals are dropped.
    vertices:
        Optional pre-computed vertex array.  When omitted, vertices are
        enumerated lazily on first access.
    tol:
        Tolerance bundle used by all geometric predicates on this polytope.
    """

    def __init__(
        self,
        A: np.ndarray,
        b: np.ndarray,
        vertices: Optional[np.ndarray] = None,
        tol: Tolerance = DEFAULT_TOL,
    ):
        A = np.atleast_2d(np.asarray(A, dtype=float))
        b = np.asarray(b, dtype=float).ravel()
        if A.shape[0] != b.shape[0]:
            raise ValueError("A and b must have the same number of rows")
        norms = np.linalg.norm(A, axis=1)
        keep = norms > tol.geometry
        # Normalise rows so that facet identification and slack values are scale-free.
        A = A[keep] / norms[keep][:, None]
        b = b[keep] / norms[keep]
        self._A = A
        self._b = b
        self._tol = tol
        self._vertices = None if vertices is None else np.asarray(vertices, dtype=float)
        self._chebyshev: Optional[Tuple[Optional[np.ndarray], float]] = None
        self._incidence: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_box(
        cls,
        lower: Sequence[float],
        upper: Sequence[float],
        tol: Tolerance = DEFAULT_TOL,
    ) -> "ConvexPolytope":
        """Axis-aligned box ``[lower, upper]`` as a polytope."""
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(upper < lower):
            raise ValueError("box upper bounds must not be below lower bounds")
        dim = lower.shape[0]
        eye = np.eye(dim)
        A = np.vstack([eye, -eye])
        b = np.concatenate([upper, -lower])
        return cls(A, b, tol=tol)

    @classmethod
    def from_halfspaces(
        cls,
        halfspaces: Iterable[Halfspace],
        tol: Tolerance = DEFAULT_TOL,
    ) -> "ConvexPolytope":
        """Polytope bounded by an iterable of :class:`Halfspace` objects."""
        halfspaces = list(halfspaces)
        if not halfspaces:
            raise ValueError("at least one halfspace is required")
        A = np.vstack([h.normal for h in halfspaces])
        b = np.array([h.offset for h in halfspaces], dtype=float)
        return cls(A, b, tol=tol)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self._A.shape[1]

    @property
    def n_constraints(self) -> int:
        """Number of stored bounding halfspaces (possibly including redundant ones)."""
        return self._A.shape[0]

    @property
    def halfspaces(self) -> Tuple[np.ndarray, np.ndarray]:
        """H-representation ``(A, b)`` with ``A x <= b`` (copies)."""
        return self._A.copy(), self._b.copy()

    @property
    def tol(self) -> Tolerance:
        """Tolerance bundle used by this polytope."""
        return self._tol

    def _cheb(self) -> Tuple[Optional[np.ndarray], float]:
        if self._chebyshev is None:
            self._chebyshev = chebyshev_center(self._A, self._b)
        return self._chebyshev

    @property
    def chebyshev_radius(self) -> float:
        """Radius of the largest inscribed ball (``-inf`` if empty)."""
        return self._cheb()[1]

    @property
    def chebyshev_centre(self) -> Optional[np.ndarray]:
        """Centre of the largest inscribed ball (``None`` if empty)."""
        centre = self._cheb()[0]
        return None if centre is None else centre.copy()

    def is_empty(self) -> bool:
        """Return True if the polytope has no point at all."""
        return self._cheb()[0] is None

    def is_full_dimensional(self) -> bool:
        """Return True if the polytope has a non-empty interior."""
        return self._cheb()[1] > self._tol.radius

    @property
    def vertices(self) -> np.ndarray:
        """Defining vertices as an ``(m, d)`` array (enumerated lazily)."""
        if self._vertices is None:
            centre, radius = self._cheb()
            if centre is None:
                self._vertices = np.empty((0, self.dimension))
            elif radius <= self._tol.radius and self.dimension > 1:
                raise DegeneratePolytopeError(
                    "cannot enumerate vertices of a lower-dimensional polytope"
                )
            else:
                self._vertices = enumerate_vertices(
                    self._A, self._b, interior_point=None if self.dimension == 1 else centre,
                    tol=self._tol,
                )
        return self._vertices

    @property
    def n_vertices(self) -> int:
        """Number of defining vertices."""
        return self.vertices.shape[0]

    def incidence(self) -> np.ndarray:
        """Vertex–facet incidence matrix (the facet-based representation)."""
        if self._incidence is None:
            self._incidence = vertex_facet_incidence(self.vertices, self._A, self._b, self._tol)
        return self._incidence

    def facet_vertices(self, facet_index: int) -> np.ndarray:
        """Vertices lying on the ``facet_index``-th stored halfspace."""
        mask = self.incidence()[:, facet_index]
        return self.vertices[mask]

    # ------------------------------------------------------------------ #
    # membership and measurements
    # ------------------------------------------------------------------ #
    def contains(self, point: Sequence[float], tol: Optional[Tolerance] = None) -> bool:
        """Return True if ``point`` satisfies every bounding halfspace."""
        tol = tol or self._tol
        point = np.asarray(point, dtype=float)
        return bool(np.all(self._A @ point - self._b <= tol.geometry))

    def contains_many(self, points: np.ndarray, tol: Optional[Tolerance] = None) -> np.ndarray:
        """Vectorised membership test for an ``(n, d)`` array of points."""
        tol = tol or self._tol
        points = np.asarray(points, dtype=float)
        slack = points @ self._A.T - self._b[None, :]
        return np.all(slack <= tol.geometry, axis=1)

    def volume(self) -> float:
        """Euclidean volume of the polytope (0.0 for empty or degenerate bodies)."""
        try:
            verts = self.vertices
        except DegeneratePolytopeError:
            return 0.0
        if verts.shape[0] <= self.dimension:
            return 0.0
        if self.dimension == 1:
            return float(verts.max() - verts.min())
        from scipy.spatial import ConvexHull, QhullError

        try:
            return float(ConvexHull(verts).volume)
        except QhullError:
            return 0.0

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lower, upper)`` of the vertex set."""
        verts = self.vertices
        if verts.shape[0] == 0:
            raise EmptyRegionError("empty polytope has no bounding box")
        return verts.min(axis=0), verts.max(axis=0)

    def support(self, direction: Sequence[float]) -> Tuple[np.ndarray, float]:
        """Maximise ``direction . x`` over the polytope via LP."""
        return maximize_linear(np.asarray(direction, dtype=float), self._A, self._b)

    # ------------------------------------------------------------------ #
    # construction of derived polytopes
    # ------------------------------------------------------------------ #
    def intersect_halfspace(self, halfspace: Halfspace) -> "ConvexPolytope":
        """Intersect with a single halfspace, returning a new polytope."""
        A = np.vstack([self._A, halfspace.normal[None, :]])
        b = np.concatenate([self._b, [halfspace.offset]])
        return ConvexPolytope(A, b, tol=self._tol)

    def intersect_halfspaces(self, halfspaces: Iterable[Halfspace]) -> "ConvexPolytope":
        """Intersect with several halfspaces at once, returning a new polytope."""
        halfspaces = list(halfspaces)
        if not halfspaces:
            return ConvexPolytope(self._A, self._b, vertices=self._vertices, tol=self._tol)
        extra_A = np.vstack([h.normal for h in halfspaces])
        extra_b = np.array([h.offset for h in halfspaces], dtype=float)
        A = np.vstack([self._A, extra_A])
        b = np.concatenate([self._b, extra_b])
        return ConvexPolytope(A, b, tol=self._tol)

    def split(self, hyperplane: Hyperplane) -> Tuple["ConvexPolytope", "ConvexPolytope"]:
        """Split by ``hyperplane`` into the (<=) side and the (>=) side.

        Both children share the splitting facet.  Either child may be empty
        (or lower-dimensional) when the hyperplane only grazes the polytope;
        callers should check :meth:`is_full_dimensional`.
        """
        below = self.intersect_halfspace(Halfspace.from_hyperplane(hyperplane))
        above = self.intersect_halfspace(
            Halfspace(-hyperplane.normal, -hyperplane.offset, normalize=False)
        )
        return below, above

    def classify_vertices(self, hyperplane: Hyperplane) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Partition the vertex indices by side of ``hyperplane``.

        Returns ``(below, on, above)`` index arrays, implementing the vertex
        classification ``V_<`` / ``V_>`` of Section 4.2.2 (vertices on the
        hyperplane belong to both children).
        """
        labels = hyperplane.classify_many(self.vertices, tol=self._tol)
        below = np.flatnonzero(labels < 0)
        on = np.flatnonzero(labels == 0)
        above = np.flatnonzero(labels > 0)
        return below, on, above

    def prune_redundant(self) -> "ConvexPolytope":
        """Drop stored halfspaces that are not tight at any vertex.

        For a bounded, full-dimensional polytope every true facet is tight at
        at least ``dimension`` vertices; halfspaces tight at no vertex are
        certainly redundant and removing them keeps the representation small
        as splits accumulate constraints.
        """
        verts = self.vertices
        if verts.shape[0] == 0:
            return self
        incidence = vertex_facet_incidence(verts, self._A, self._b, self._tol)
        tight_counts = incidence.sum(axis=0)
        keep = tight_counts >= 1
        if np.all(keep):
            return self
        return ConvexPolytope(self._A[keep], self._b[keep], vertices=verts, tol=self._tol)

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_samples`` points from the polytope by rejection inside its bounding box.

        Falls back to convex combinations of vertices when rejection sampling
        is too wasteful (thin polytopes).  Used by the sampling verifier and
        by the documentation examples; not on the hot path of the solvers.
        """
        lower, upper = self.bounding_box()
        samples = []
        attempts = 0
        max_attempts = max(10_000, 200 * n_samples)
        while len(samples) < n_samples and attempts < max_attempts:
            batch = rng.uniform(lower, upper, size=(max(64, n_samples), self.dimension))
            inside = self.contains_many(batch)
            for row in batch[inside]:
                samples.append(row)
                if len(samples) >= n_samples:
                    break
            attempts += batch.shape[0]
        while len(samples) < n_samples:
            weights = rng.dirichlet(np.ones(self.n_vertices))
            samples.append(weights @ self.vertices)
        return np.asarray(samples[:n_samples])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ConvexPolytope(dim={self.dimension}, constraints={self.n_constraints}, "
            f"radius={self.chebyshev_radius:.3g})"
        )


def merge_vertex_sets(vertex_sets: Iterable[np.ndarray], tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Union several vertex arrays, removing duplicates (used to build ``V_all``)."""
    arrays = [np.atleast_2d(np.asarray(v, dtype=float)) for v in vertex_sets if np.size(v)]
    if not arrays:
        return np.empty((0, 0))
    stacked = np.vstack(arrays)
    return deduplicate_points(stacked, tol=tol)
