"""Convex polytopes with the hybrid facet-based representation of the paper.

A :class:`ConvexPolytope` keeps three coordinated views of the same body
(Section 4.2.2 of the paper):

* the H-representation ``A x <= b`` (one row per bounding halfspace),
* the V-representation (the defining vertices), and
* the vertex–facet incidence ("facet-based representation": each facet is a
  hyperplane augmented with the defining vertices lying on it).

Splitting a polytope by a hyperplane — the core geometric operation of the
test-and-split algorithms — classifies the vertices by side, reuses the
parent's facets, adds the splitting hyperplane as a new facet on each child,
and re-enumerates vertices.  Children whose Chebyshev radius is below
tolerance are reported as empty.

Three interchangeable **geometry backends** implement the primitives:

``"qhull"``
    The general-dimension path: Chebyshev centre / feasibility via a scipy
    ``linprog`` round trip, vertex enumeration via a qhull halfspace
    intersection (the same library the paper's C++ implementation calls).

``"polygon"``
    The exact 2-D path (:mod:`repro.geometry.polygon`): the body is an
    ordered vertex list; splitting is one closed-form Sutherland–Hodgman
    pass that both children inherit, and centre/radius/emptiness come from
    a closed-form facet-triple enumeration.  **No LP, no qhull.**

``"polyhedron"``
    The exact 3-D path (:mod:`repro.geometry.polyhedron`): the body is a
    vertex array plus facet→vertex-ring faces; splitting is one closed-form
    clip pass over the face rings in which both children share the cut
    facet, and centre/radius/emptiness come from a closed-form facet
    4-tuple enumeration.  **No LP, no qhull.**

``backend="auto"`` (the default) selects ``"polygon"`` for 2-D bodies and
``"polyhedron"`` for 3-D bodies — the paper's two experimental settings
(``d = 3`` / ``d = 4`` attributes) — and ``"qhull"`` otherwise.  All
backends finish vertex output with the same canonicalisation
(:func:`~repro.geometry.vertex_enum.canonicalize_polygon_vertices` /
:func:`~repro.geometry.vertex_enum.canonicalize_polyhedron_vertices`),
so their vertices are bit-identical and in the same canonical order; the
parity suites in ``tests/test_geometry_polygon.py``,
``tests/test_polygon_backend.py``, ``tests/test_geometry_polyhedron.py``,
``tests/test_polyhedron_backend.py`` and the cross-backend fuzz harness
``tests/test_backend_differential.py`` pin this down to solver-level
``V_all`` equality.  Use :func:`use_backend` (or a ``backend=`` override)
to force the LP/qhull path, e.g. for parity testing and benchmarking.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence, Tuple
import warnings

import numpy as np

from repro.exceptions import DegeneratePolytopeError, EmptyRegionError
from repro.geometry.chebyshev import chebyshev_center, maximize_linear
from repro.geometry.counters import geometry_counters
from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polygon import (
    Polygon,
    polygon_chebyshev,
    polygon_from_halfspaces,
    polygon_is_consistent,
)
from repro.geometry.polyhedron import (
    Polyhedron,
    polyhedron_chebyshev,
    polyhedron_from_halfspaces,
    polyhedron_is_consistent,
)
from repro.geometry.vertex_enum import (
    canonicalize_polygon_vertices,
    canonicalize_polyhedron_vertices,
    deduplicate_points,
    enumerate_vertices,
    vertex_facet_incidence,
)
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Backend specifications accepted by :class:`ConvexPolytope`.
BACKENDS = ("auto", "qhull", "polygon", "polyhedron")

#: Module-wide default backend specification (see :func:`set_default_backend`).
_DEFAULT_BACKEND = "auto"

#: Warn-once latch for closed-form backend demotions (every demotion is still
#: counted in ``geometry_counters.n_backend_fallbacks``).
_WARNED_BACKEND_FALLBACK = False


def _warn_backend_fallback_once(kind: str) -> None:
    """Warn the first time a closed-form backend body fails its health check."""
    global _WARNED_BACKEND_FALLBACK
    if _WARNED_BACKEND_FALLBACK:
        return
    _WARNED_BACKEND_FALLBACK = True
    warnings.warn(
        f"inconsistent {kind} backend body detected; this region falls back to "
        f"the generic LP/qhull geometry path (results stay exact). Further "
        f"fallbacks are counted in SolverStats.n_backend_fallbacks without "
        f"warning again.",
        RuntimeWarning,
        stacklevel=4,
    )


def default_backend() -> str:
    """The module-wide backend specification new polytopes start from."""
    return _DEFAULT_BACKEND


def set_default_backend(backend: str) -> None:
    """Set the module-wide backend specification (one of :data:`BACKENDS`).

    Applies to polytopes constructed *afterwards* without an explicit
    ``backend=`` argument; existing polytopes keep (and propagate to their
    children) the specification they were built with.
    """
    global _DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(f"unknown geometry backend {backend!r}; expected one of {BACKENDS}")
    _DEFAULT_BACKEND = backend


@contextmanager
def use_backend(backend: str) -> Iterator[None]:
    """Context manager scoping :func:`set_default_backend` to a ``with`` block.

    The parity suites use ``with use_backend("qhull"):`` to build a
    reference region whose whole split tree runs on the LP/qhull path.

    The default is a process-wide setting, not thread-local: polytopes
    constructed on *any* thread during the ``with`` block pick it up.  Use
    explicit ``backend=`` arguments instead when other threads may be
    constructing regions concurrently (split children always inherit their
    parent's specification, so in-flight solves are unaffected either way).
    """
    previous = _DEFAULT_BACKEND
    set_default_backend(backend)
    try:
        yield
    finally:
        set_default_backend(previous)


class ConvexPolytope:
    """A bounded convex polytope ``{x : A x <= b}``.

    Instances are immutable from the caller's point of view: all operations
    (intersection, splitting) return new polytopes.

    Parameters
    ----------
    A, b:
        H-representation.  Rows with (numerically) zero normals are dropped;
        the remaining rows are normalised to unit normals (idempotently —
        already-normalised rows keep their exact bytes, so facet rows are
        bit-stable across parent/child polytopes).
    vertices:
        Optional pre-computed vertex array.  When omitted, vertices are
        enumerated lazily on first access.
    tol:
        Tolerance bundle used by all geometric predicates on this polytope.
    backend:
        Geometry backend specification: ``"auto"`` (default; the exact
        polygon backend for 2-D bodies, the exact polyhedron backend for
        3-D bodies, LP/qhull otherwise), ``"qhull"``, ``"polygon"``, or
        ``"polyhedron"``.  ``None`` uses the module default
        (:func:`set_default_backend`).  Derived polytopes (intersections,
        split children) inherit the parent's specification.
    polygon:
        Internal: a pre-clipped :class:`~repro.geometry.polygon.Polygon`
        consistent with ``(A, b)`` (edge labels indexing its rows), handed
        down by the parent on incremental clips.  Ignored unless the polygon
        backend is active.
    polyhedron:
        Internal: the 3-D analogue — a pre-clipped
        :class:`~repro.geometry.polyhedron.Polyhedron` consistent with
        ``(A, b)`` (face labels indexing its rows), handed down by the
        parent on incremental clips.  Ignored unless the polyhedron backend
        is active.
    """

    def __init__(
        self,
        A: np.ndarray,
        b: np.ndarray,
        vertices: Optional[np.ndarray] = None,
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
        polygon: Optional[Polygon] = None,
        polyhedron: Optional[Polyhedron] = None,
    ):
        A = np.atleast_2d(np.asarray(A, dtype=float))
        b = np.asarray(b, dtype=float).ravel()
        if A.shape[0] != b.shape[0]:
            raise ValueError("A and b must have the same number of rows")
        norms = np.linalg.norm(A, axis=1)
        keep = norms > tol.geometry
        # Normalise rows so that facet identification and slack values are
        # scale-free.  Idempotent: rows that are already unit-norm are left
        # bit-for-bit untouched, so a child's inherited facet rows equal the
        # parent's exactly (which keeps facet-snapped vertex bytes — and the
        # solver's vertex-score memo keys — stable across the split tree).
        A = A[keep]
        b = b[keep]
        norms = norms[keep]
        rescale = np.abs(norms - 1.0) > 1e-12
        if np.any(rescale):
            A = A.copy()
            b = b.copy()
            A[rescale] /= norms[rescale][:, None]
            b[rescale] /= norms[rescale]
        self._A = A
        self._b = b
        self._tol = tol
        if backend is None:
            backend = _DEFAULT_BACKEND
        if backend not in BACKENDS:
            raise ValueError(f"unknown geometry backend {backend!r}; expected one of {BACKENDS}")
        self._backend_spec = backend
        self._use_polygon = backend == "polygon" or (
            backend == "auto" and A.shape[1] == 2
        )
        self._use_polyhedron = backend == "polyhedron" or (
            backend == "auto" and A.shape[1] == 3
        )
        if self._use_polygon and A.shape[1] != 2:
            raise ValueError("the polygon backend requires a 2-D polytope")
        if self._use_polyhedron and A.shape[1] != 3:
            raise ValueError("the polyhedron backend requires a 3-D polytope")
        self._polygon: Optional[Polygon] = polygon if (self._use_polygon and np.all(keep)) else None
        self._polyhedron: Optional[Polyhedron] = (
            polyhedron if (self._use_polyhedron and np.all(keep)) else None
        )
        self._vertices = None if vertices is None else np.asarray(vertices, dtype=float)
        self._chebyshev: Optional[Tuple[Optional[np.ndarray], float]] = None
        self._incidence: Optional[np.ndarray] = None
        self._backend_health: Optional[bool] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_box(
        cls,
        lower: Sequence[float],
        upper: Sequence[float],
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "ConvexPolytope":
        """Axis-aligned box ``[lower, upper]`` as a polytope."""
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(upper < lower):
            raise ValueError("box upper bounds must not be below lower bounds")
        dim = lower.shape[0]
        eye = np.eye(dim)
        A = np.vstack([eye, -eye])
        b = np.concatenate([upper, -lower])
        return cls(A, b, tol=tol, backend=backend)

    @classmethod
    def from_halfspaces(
        cls,
        halfspaces: Iterable[Halfspace],
        tol: Tolerance = DEFAULT_TOL,
        backend: Optional[str] = None,
    ) -> "ConvexPolytope":
        """Polytope bounded by an iterable of :class:`Halfspace` objects."""
        halfspaces = list(halfspaces)
        if not halfspaces:
            raise ValueError("at least one halfspace is required")
        A = np.vstack([h.normal for h in halfspaces])
        b = np.array([h.offset for h in halfspaces], dtype=float)
        return cls(A, b, tol=tol, backend=backend)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self._A.shape[1]

    @property
    def n_constraints(self) -> int:
        """Number of stored bounding halfspaces (possibly including redundant ones)."""
        return self._A.shape[0]

    @property
    def halfspaces(self) -> Tuple[np.ndarray, np.ndarray]:
        """H-representation ``(A, b)`` with ``A x <= b`` (copies)."""
        return self._A.copy(), self._b.copy()

    @property
    def tol(self) -> Tolerance:
        """Tolerance bundle used by this polytope."""
        return self._tol

    @property
    def backend(self) -> str:
        """The geometry backend in effect: ``"polygon"``, ``"polyhedron"`` or ``"qhull"``."""
        if self._use_polygon:
            return "polygon"
        if self._use_polyhedron:
            return "polyhedron"
        return "qhull"

    def _ensure_polygon(self) -> Polygon:
        """The backing polygon, built from ``(A, b)`` by clipping if needed."""
        if self._polygon is None:
            self._polygon = polygon_from_halfspaces(self._A, self._b, tol=self._tol)
        return self._polygon

    def _ensure_polyhedron(self) -> Polyhedron:
        """The backing polyhedron, built from ``(A, b)`` by clipping if needed."""
        if self._polyhedron is None:
            self._polyhedron = polyhedron_from_halfspaces(self._A, self._b, tol=self._tol)
        return self._polyhedron

    def _demote_backend(self) -> None:
        """Numeric graceful degradation: drop to the generic LP/qhull path.

        Called when the closed-form body fails its consistency check.  The
        demotion is per-region: derived polytopes (children, intersections)
        keep the original backend *specification* and rebuild their own body
        from their H-representation, so one broken region never poisons the
        rest of the split tree.  Counted in
        ``geometry_counters.n_backend_fallbacks`` (surfaced as
        ``SolverStats.n_backend_fallbacks``); warns once per process.
        """
        kind = "polygon" if self._use_polygon else "polyhedron"
        self._use_polygon = False
        self._use_polyhedron = False
        self._polygon = None
        self._polyhedron = None
        self._chebyshev = None
        geometry_counters.n_backend_fallbacks += 1
        _warn_backend_fallback_once(kind)

    def _backend_body_ok(self) -> bool:
        """Validate the active closed-form body once; demote this region on failure."""
        if self._backend_health is None:
            if self._use_polygon:
                self._backend_health = polygon_is_consistent(self._ensure_polygon())
            elif self._use_polyhedron:
                self._backend_health = polyhedron_is_consistent(self._ensure_polyhedron())
            else:
                self._backend_health = True
            if not self._backend_health:
                self._demote_backend()
        return self._backend_health

    def _polygon_backend_active(self) -> bool:
        """True when the polygon backend is selected *and* its body is healthy."""
        return self._use_polygon and self._backend_body_ok()

    def _polyhedron_backend_active(self) -> bool:
        """True when the polyhedron backend is selected *and* its body is healthy."""
        return self._use_polyhedron and self._backend_body_ok()

    def _cheb(self) -> Tuple[Optional[np.ndarray], float]:
        """Cached ``(centre, radius)`` from the active backend."""
        if self._chebyshev is None:
            if self._polygon_backend_active():
                self._chebyshev = polygon_chebyshev(
                    self._A, self._b, self._ensure_polygon(), tol=self._tol
                )
            elif self._polyhedron_backend_active():
                self._chebyshev = polyhedron_chebyshev(
                    self._A, self._b, self._ensure_polyhedron(), tol=self._tol
                )
            else:
                self._chebyshev = chebyshev_center(self._A, self._b)
        return self._chebyshev

    @property
    def chebyshev_radius(self) -> float:
        """Radius of the largest inscribed ball (``-inf`` if empty)."""
        return self._cheb()[1]

    @property
    def chebyshev_center(self) -> Optional[np.ndarray]:
        """Centre of the largest inscribed ball (``None`` if empty)."""
        center = self._cheb()[0]
        return None if center is None else center.copy()

    @property
    def chebyshev_centre(self) -> Optional[np.ndarray]:
        """Deprecated British-spelling alias of :attr:`chebyshev_center`."""
        warnings.warn(
            "ConvexPolytope.chebyshev_centre is deprecated; use chebyshev_center",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.chebyshev_center

    def is_empty(self) -> bool:
        """Return True if the polytope has no point at all."""
        return self._cheb()[0] is None

    def is_full_dimensional(self) -> bool:
        """Return True if the polytope has a non-empty interior."""
        return self._cheb()[1] > self._tol.radius

    @property
    def vertices(self) -> np.ndarray:
        """Defining vertices as an ``(m, d)`` array (enumerated lazily).

        For 2-D and 3-D bodies the vertices are *canonical* regardless of
        backend: facet-snapped coordinates in lexicographic order (see
        :func:`~repro.geometry.vertex_enum.canonicalize_polygon_vertices`
        and :func:`~repro.geometry.vertex_enum.canonicalize_polyhedron_vertices`).
        """
        if self._vertices is None:
            center, radius = self._cheb()
            if center is None:
                self._vertices = np.empty((0, self.dimension))
            elif radius <= self._tol.radius and self.dimension > 1:
                raise DegeneratePolytopeError(
                    "cannot enumerate vertices of a lower-dimensional polytope"
                )
            elif self._polygon_backend_active() and not self._ensure_polygon().touches_bound():
                self._vertices = canonicalize_polygon_vertices(
                    self._A, self._b, self._ensure_polygon().points, tol=self._tol
                )
            elif self._polyhedron_backend_active() and not self._ensure_polyhedron().touches_bound():
                self._vertices = canonicalize_polyhedron_vertices(
                    self._A, self._b, self._ensure_polyhedron().points, tol=self._tol
                )
            else:
                # Generic path: qhull halfspace intersection (also the
                # fallback for unbounded 2-D/3-D H-representations, where
                # the clipped body still touches the safety box).
                self._vertices = enumerate_vertices(
                    self._A, self._b, interior_point=None if self.dimension == 1 else center,
                    tol=self._tol,
                )
        return self._vertices

    @property
    def n_vertices(self) -> int:
        """Number of defining vertices."""
        return self.vertices.shape[0]

    def incidence(self) -> np.ndarray:
        """Vertex–facet incidence matrix (the facet-based representation)."""
        if self._incidence is None:
            self._incidence = vertex_facet_incidence(self.vertices, self._A, self._b, self._tol)
        return self._incidence

    def facet_vertices(self, facet_index: int) -> np.ndarray:
        """Vertices lying on the ``facet_index``-th stored halfspace."""
        mask = self.incidence()[:, facet_index]
        return self.vertices[mask]

    # ------------------------------------------------------------------ #
    # membership and measurements
    # ------------------------------------------------------------------ #
    def contains(self, point: Sequence[float], tol: Optional[Tolerance] = None) -> bool:
        """Return True if ``point`` satisfies every bounding halfspace."""
        tol = tol or self._tol
        point = np.asarray(point, dtype=float)
        return bool(np.all(self._A @ point - self._b <= tol.geometry))

    def contains_many(self, points: np.ndarray, tol: Optional[Tolerance] = None) -> np.ndarray:
        """Vectorised membership test for an ``(n, d)`` array of points."""
        tol = tol or self._tol
        points = np.asarray(points, dtype=float)
        slack = points @ self._A.T - self._b[None, :]
        return np.all(slack <= tol.geometry, axis=1)

    def volume(self) -> float:
        """Euclidean volume of the polytope (0.0 for empty or degenerate bodies).

        The polygon backend answers with the shoelace area of its ordered
        vertex list, the polyhedron backend with a closed-form fan of
        face-pyramids; the generic path builds a qhull convex hull.
        """
        if self._polyhedron_backend_active() and not self._ensure_polyhedron().touches_bound():
            return self._ensure_polyhedron().volume()
        if self._polygon_backend_active() and not self._ensure_polygon().touches_bound():
            try:
                verts = self.vertices
            except DegeneratePolytopeError:
                return 0.0
            if verts.shape[0] < 3:
                return 0.0
            # Shoelace over the canonical vertices, re-ordered by angle
            # around their mean (the canonical order is lexicographic).
            center = verts.mean(axis=0)
            angles = np.arctan2(verts[:, 1] - center[1], verts[:, 0] - center[0])
            ordered = verts[np.argsort(angles)]
            x, y = ordered[:, 0], ordered[:, 1]
            return 0.5 * float(
                np.abs(np.dot(x, np.roll(y, -1)) - np.dot(np.roll(x, -1), y))
            )
        try:
            verts = self.vertices
        except DegeneratePolytopeError:
            return 0.0
        if verts.shape[0] <= self.dimension:
            return 0.0
        if self.dimension == 1:
            return float(verts.max() - verts.min())
        from scipy.spatial import ConvexHull, QhullError

        try:
            return float(ConvexHull(verts).volume)
        except QhullError:
            return 0.0

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lower, upper)`` of the vertex set."""
        verts = self.vertices
        if verts.shape[0] == 0:
            raise EmptyRegionError("empty polytope has no bounding box")
        return verts.min(axis=0), verts.max(axis=0)

    def support(self, direction: Sequence[float]) -> Tuple[np.ndarray, float]:
        """Maximise ``direction . x`` over the polytope.

        The closed-form backends evaluate the direction on the vertex set;
        the generic path solves an LP.
        """
        direction = np.asarray(direction, dtype=float)
        closed_form = (
            self._polygon_backend_active() and not self._ensure_polygon().touches_bound()
        ) or (
            self._polyhedron_backend_active() and not self._ensure_polyhedron().touches_bound()
        )
        if closed_form:
            try:
                verts = self.vertices
            except DegeneratePolytopeError:
                verts = np.empty((0, self.dimension))
            if verts.shape[0]:
                values = verts @ direction
                best = int(np.argmax(values))
                return verts[best].copy(), float(values[best])
        return maximize_linear(direction, self._A, self._b)

    # ------------------------------------------------------------------ #
    # construction of derived polytopes
    # ------------------------------------------------------------------ #
    def intersect_halfspace(self, halfspace: Halfspace) -> "ConvexPolytope":
        """Intersect with a single halfspace, returning a new polytope.

        Under the closed-form backends the child does **not** start from
        scratch: it inherits this polytope's clipped vertex structure (one
        Sutherland–Hodgman pass), and the new facet is labelled with its
        row index in the child's H-representation.
        """
        A = np.vstack([self._A, halfspace.normal[None, :]])
        b = np.concatenate([self._b, [halfspace.offset]])
        polygon = None
        polyhedron = None
        if self._polygon_backend_active():
            polygon = self._ensure_polygon().clip(
                halfspace.normal, halfspace.offset, label=self._A.shape[0], tol=self._tol
            )
        elif self._polyhedron_backend_active():
            polyhedron = self._ensure_polyhedron().clip(
                halfspace.normal, halfspace.offset, label=self._A.shape[0], tol=self._tol
            )
        return ConvexPolytope(
            A, b, tol=self._tol, backend=self._backend_spec, polygon=polygon,
            polyhedron=polyhedron,
        )

    def intersect_halfspaces(self, halfspaces: Iterable[Halfspace]) -> "ConvexPolytope":
        """Intersect with several halfspaces at once, returning a new polytope."""
        halfspaces = list(halfspaces)
        if not halfspaces:
            return ConvexPolytope(
                self._A,
                self._b,
                vertices=self._vertices,
                tol=self._tol,
                backend=self._backend_spec,
                polygon=self._polygon,
                polyhedron=self._polyhedron,
            )
        extra_A = np.vstack([h.normal for h in halfspaces])
        extra_b = np.array([h.offset for h in halfspaces], dtype=float)
        A = np.vstack([self._A, extra_A])
        b = np.concatenate([self._b, extra_b])
        polygon = None
        polyhedron = None
        if self._polygon_backend_active():
            polygon = self._ensure_polygon()
            for index, halfspace in enumerate(halfspaces):
                polygon = polygon.clip(
                    halfspace.normal,
                    halfspace.offset,
                    label=self._A.shape[0] + index,
                    tol=self._tol,
                )
                if polygon.is_empty():
                    break
        elif self._polyhedron_backend_active():
            polyhedron = self._ensure_polyhedron()
            for index, halfspace in enumerate(halfspaces):
                polyhedron = polyhedron.clip(
                    halfspace.normal,
                    halfspace.offset,
                    label=self._A.shape[0] + index,
                    tol=self._tol,
                )
                if polyhedron.is_empty():
                    break
        return ConvexPolytope(
            A, b, tol=self._tol, backend=self._backend_spec, polygon=polygon,
            polyhedron=polyhedron,
        )

    def split(self, hyperplane: Hyperplane) -> Tuple["ConvexPolytope", "ConvexPolytope"]:
        """Split by ``hyperplane`` into the (<=) side and the (>=) side.

        Both children share the splitting facet.  Either child may be empty
        (or lower-dimensional) when the hyperplane only grazes the polytope;
        callers should check :meth:`is_full_dimensional`.

        Under the closed-form backends this is the *incremental cut*: one
        classification pass over the parent's vertex structure emits both
        children, which share the cut edge/facet (same label, same
        crossing-point bytes) — no LP and no re-enumeration.
        """
        below_halfspace = Halfspace.from_hyperplane(hyperplane)
        above_halfspace = Halfspace(-hyperplane.normal, -hyperplane.offset, normalize=False)
        if self._polygon_backend_active() or self._polyhedron_backend_active():
            kind = "polygon" if self._use_polygon else "polyhedron"
            body = self._ensure_polygon() if self._use_polygon else self._ensure_polyhedron()
            below_body, above_body = body.cut(
                hyperplane.normal, hyperplane.offset, label=self._A.shape[0], tol=self._tol
            )
            below = ConvexPolytope(
                np.vstack([self._A, below_halfspace.normal[None, :]]),
                np.concatenate([self._b, [below_halfspace.offset]]),
                tol=self._tol,
                backend=self._backend_spec,
                **{kind: below_body},
            )
            above = ConvexPolytope(
                np.vstack([self._A, above_halfspace.normal[None, :]]),
                np.concatenate([self._b, [above_halfspace.offset]]),
                tol=self._tol,
                backend=self._backend_spec,
                **{kind: above_body},
            )
            return below, above
        below = self.intersect_halfspace(below_halfspace)
        above = self.intersect_halfspace(above_halfspace)
        return below, above

    def classify_vertices(self, hyperplane: Hyperplane) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Partition the vertex indices by side of ``hyperplane``.

        Returns ``(below, on, above)`` index arrays, implementing the vertex
        classification ``V_<`` / ``V_>`` of Section 4.2.2 (vertices on the
        hyperplane belong to both children).
        """
        labels = hyperplane.classify_many(self.vertices, tol=self._tol)
        below = np.flatnonzero(labels < 0)
        on = np.flatnonzero(labels == 0)
        above = np.flatnonzero(labels > 0)
        return below, on, above

    def prune_redundant(self) -> "ConvexPolytope":
        """Drop stored halfspaces that are not tight at any vertex.

        For a bounded, full-dimensional polytope every true facet is tight at
        at least ``dimension`` vertices; halfspaces tight at no vertex are
        certainly redundant and removing them keeps the representation small
        as splits accumulate constraints.
        """
        verts = self.vertices
        if verts.shape[0] == 0:
            return self
        incidence = vertex_facet_incidence(verts, self._A, self._b, self._tol)
        tight_counts = incidence.sum(axis=0)
        keep = tight_counts >= 1
        if np.all(keep):
            return self
        polygon = None
        polyhedron = None
        new_index = np.cumsum(keep) - 1
        if self._polygon_backend_active() and self._polygon is not None:
            # Re-index the polygon's edge labels to the surviving rows.  Edge
            # labels always refer to facets tight at two vertices, so they
            # are never dropped; synthetic (negative) labels pass through.
            labels = self._polygon.edge_labels
            remapped = np.where(labels >= 0, new_index[np.clip(labels, 0, None)], labels)
            polygon = Polygon(self._polygon.points, remapped)
        elif self._polyhedron_backend_active() and self._polyhedron is not None:
            # Same re-indexing for face labels (tight at >= 3 vertices, so
            # never dropped); synthetic safety-cube labels pass through.
            polyhedron = Polyhedron(
                self._polyhedron.points,
                [
                    (ring, int(new_index[label]) if label >= 0 else label)
                    for ring, label in self._polyhedron.faces
                ],
            )
        return ConvexPolytope(
            self._A[keep],
            self._b[keep],
            vertices=verts,
            tol=self._tol,
            backend=self._backend_spec,
            polygon=polygon,
            polyhedron=polyhedron,
        )

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_samples`` points from the polytope by rejection inside its bounding box.

        Falls back to convex combinations of vertices when rejection sampling
        is too wasteful (thin polytopes).  Used by the sampling verifier and
        by the documentation examples; not on the hot path of the solvers.
        """
        lower, upper = self.bounding_box()
        samples = []
        attempts = 0
        max_attempts = max(10_000, 200 * n_samples)
        while len(samples) < n_samples and attempts < max_attempts:
            batch = rng.uniform(lower, upper, size=(max(64, n_samples), self.dimension))
            inside = self.contains_many(batch)
            for row in batch[inside]:
                samples.append(row)
                if len(samples) >= n_samples:
                    break
            attempts += batch.shape[0]
        while len(samples) < n_samples:
            weights = rng.dirichlet(np.ones(self.n_vertices))
            samples.append(weights @ self.vertices)
        return np.asarray(samples[:n_samples])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ConvexPolytope(dim={self.dimension}, constraints={self.n_constraints}, "
            f"backend={self.backend!r}, radius={self.chebyshev_radius:.3g})"
        )


def merge_vertex_sets(vertex_sets: Iterable[np.ndarray], tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Union several vertex arrays, removing duplicates (used to build ``V_all``)."""
    arrays = [np.atleast_2d(np.asarray(v, dtype=float)) for v in vertex_sets if np.size(v)]
    if not arrays:
        return np.empty((0, 0))
    stacked = np.vstack(arrays)
    return deduplicate_points(stacked, tol=tol)
