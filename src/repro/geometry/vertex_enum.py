"""Vertex enumeration: from an H-representation ``A x <= b`` to the vertex set.

The general-dimension path delegates to qhull through
:class:`scipy.spatial.HalfspaceIntersection`, exactly as the paper's C++
implementation calls the qhull library.  A dedicated 1-D fast path covers the
interval polytopes that arise for 2-attribute datasets (where the preference
space is one-dimensional, as in the paper's running example).

For two- and three-dimensional polytopes — the paper's experimental
settings, where ``d = 3`` / ``d = 4`` attributes give a 2-D / 3-D preference
space — every enumerated vertex is additionally *canonicalised* by
:func:`canonicalize_polygon_vertices` / :func:`canonicalize_polyhedron_vertices`:
its coordinates are recomputed in closed form from its two (three) tight
facets and the result is returned in a fixed lexicographic order.  The
closed-form backends of :mod:`repro.geometry.polygon` and
:mod:`repro.geometry.polyhedron` run the same canonicalisation over the same
H-representation, which is what makes the backends **bit-identical**
(same vertex bytes, same order) rather than merely close.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import HalfspaceIntersection, QhullError

from repro.exceptions import DegeneratePolytopeError, EmptyRegionError
from repro.geometry.chebyshev import chebyshev_center
from repro.geometry.counters import geometry_counters
from repro.utils.tolerance import DEFAULT_TOL, Tolerance

#: Minimum |determinant| (= |sin| of the facet angle for unit normals) for a
#: facet pair to be preferred when snapping a 2-D vertex onto its defining
#: facets.  Pairs below this are nearly parallel and numerically unreliable.
_DET_MIN = 1e-9


def deduplicate_points(points: np.ndarray, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Remove (near-)duplicate rows from an ``(n, d)`` point array.

    Points are snapped onto a grid of pitch ``tol.dedup`` for hashing, then
    one representative (the original, un-snapped coordinates) is kept per
    grid cell.  Deterministic: representatives are chosen in row order.
    """
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        return points.reshape(0, points.shape[1] if points.ndim == 2 else 0)
    keys = np.round(points / tol.dedup).astype(np.int64)
    seen: set[tuple] = set()
    keep_rows = []
    for i, key in enumerate(map(tuple, keys)):
        if key not in seen:
            seen.add(key)
            keep_rows.append(i)
    return points[keep_rows]


def canonicalize_polygon_vertices(
    A: np.ndarray,
    b: np.ndarray,
    vertices: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Canonical form of a 2-D vertex set: facet-snapped, deduplicated, lexsorted.

    Each vertex is recomputed as the exact intersection of two of its tight
    facets (rows of ``A x <= b`` it lies on, under the same tightness rule as
    :func:`vertex_facet_incidence`), via a fixed-order Cramer solve.  The
    facet pair is chosen deterministically: the lexicographically smallest
    tight pair whose normals are not nearly parallel (``|det| >= 1e-9``),
    falling back to the maximum-``|det|`` pair.  Vertices with fewer than two
    tight facets (or an all-parallel tight set) keep their input coordinates.

    The snapped vertices are sorted in descending lexicographic order (by
    first coordinate, then second) and then deduplicated, so the output is
    independent of the *producer* of the approximate input coordinates.  Both vertex-enumeration
    backends — qhull halfspace intersection and the closed-form polygon
    clipper — finish with this function on the same ``(A, b)``, which makes
    their outputs bit-identical: identical facet pairs fed through identical
    arithmetic, in identical order.

    The fixed Cramer evaluation order (products before differences, one
    division by the determinant) also guarantees that the *same* facet pair
    with both rows negated — a split's complement halfspace — yields the same
    bits, so vertices on a cut edge hash identically in both children (which
    is what keeps the :class:`~repro.core.scorecache.VertexScoreMemo` hit
    rate high across siblings).
    """
    vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
    if vertices.size == 0:
        return vertices.reshape(0, 2)
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    slack = np.abs(b[None, :] - vertices @ A.T)
    scale = np.maximum(1.0, np.abs(b))[None, :]
    tight = slack <= tol.dedup * scale
    snapped = vertices.copy()
    for row in range(vertices.shape[0]):
        facets = np.flatnonzero(tight[row])
        if facets.size < 2:
            continue
        chosen = None
        fallback = None
        fallback_det = 0.0
        for ii in range(facets.size):
            i = facets[ii]
            for jj in range(ii + 1, facets.size):
                j = facets[jj]
                det = A[i, 0] * A[j, 1] - A[i, 1] * A[j, 0]
                if abs(det) >= _DET_MIN:
                    chosen = (i, j, det)
                    break
                if abs(det) > abs(fallback_det):
                    fallback = (i, j, det)
                    fallback_det = det
            if chosen is not None:
                break
        if chosen is None:
            chosen = fallback
        if chosen is None:
            continue
        i, j, det = chosen
        # `+ 0.0` maps -0.0 to +0.0: a negated facet pair (a split's
        # complement halfspace) negates numerator and determinant alike, so
        # the quotient is bit-identical except for the sign of zero.
        snapped[row, 0] = (b[i] * A[j, 1] - b[j] * A[i, 1]) / det + 0.0
        snapped[row, 1] = (A[i, 0] * b[j] - A[j, 0] * b[i]) / det + 0.0
    order = np.lexsort((snapped[:, 1], snapped[:, 0]))[::-1]
    return deduplicate_points(snapped[order], tol=tol)


def _det3(r0: np.ndarray, r1: np.ndarray, r2: np.ndarray) -> float:
    """``3 x 3`` determinant by cofactor expansion in a fixed evaluation order.

    Every term carries exactly one factor from each row, so negating one
    full row negates the result *bit-exactly* (IEEE negation and the
    symmetric rounding of ``a - b`` versus ``b - a`` are both exact) — the
    property :func:`canonicalize_polyhedron_vertices` relies on for split
    complement halfspaces.
    """
    return (
        r0[0] * (r1[1] * r2[2] - r1[2] * r2[1])
        - r0[1] * (r1[0] * r2[2] - r1[2] * r2[0])
        + r0[2] * (r1[0] * r2[1] - r1[1] * r2[0])
    )


def canonicalize_polyhedron_vertices(
    A: np.ndarray,
    b: np.ndarray,
    vertices: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Canonical form of a 3-D vertex set: facet-snapped, deduplicated, lexsorted.

    The three-dimensional sibling of :func:`canonicalize_polygon_vertices`,
    with the same contract: each vertex is recomputed as the exact
    intersection of three of its tight facets via a fixed-order ``3 x 3``
    Cramer solve.  The facet triple is chosen deterministically — the
    lexicographically smallest tight triple whose normal matrix is not
    nearly singular (``|det| >= 1e-9``), falling back to the
    maximum-``|det|`` triple — and vertices with fewer than three tight
    facets (or an all-singular tight set) keep their input coordinates.

    The snapped vertices are sorted in descending lexicographic order and
    deduplicated, so the output depends only on ``(A, b)`` and the tight
    sets, never on the producer of the approximate input coordinates.  Both
    vertex-enumeration backends — qhull halfspace intersection and the
    closed-form polyhedron clipper — finish with this function on the same
    ``(A, b)``, which makes their outputs bit-identical.  As in 2-D, the
    fixed Cramer evaluation order guarantees that the same facet triple
    with one row negated (a split's complement halfspace) yields the same
    bits, so vertices on a cut facet hash identically in both children —
    which is what keeps the :class:`~repro.core.scorecache.VertexScoreMemo`
    hit rate high across siblings at ``d = 4``.
    """
    vertices = np.atleast_2d(np.asarray(vertices, dtype=float))
    if vertices.size == 0:
        return vertices.reshape(0, 3)
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    slack = np.abs(b[None, :] - vertices @ A.T)
    scale = np.maximum(1.0, np.abs(b))[None, :]
    tight = slack <= tol.dedup * scale
    snapped = vertices.copy()
    for row in range(vertices.shape[0]):
        facets = np.flatnonzero(tight[row])
        if facets.size < 3:
            continue
        chosen = None
        fallback = None
        fallback_det = 0.0
        for i, j, k in combinations(facets.tolist(), 3):
            det = _det3(A[i], A[j], A[k])
            if abs(det) >= _DET_MIN:
                chosen = (i, j, k, det)
                break
            if abs(det) > abs(fallback_det):
                fallback = (i, j, k, det)
                fallback_det = det
        if chosen is None:
            chosen = fallback
        if chosen is None:
            continue
        i, j, k, det = chosen
        # Cramer's rule, one column of the normal matrix replaced by b per
        # coordinate; `+ 0.0` maps -0.0 to +0.0 (see the 2-D version).
        bi = np.array([b[i], A[i, 1], A[i, 2]])
        bj = np.array([b[j], A[j, 1], A[j, 2]])
        bk = np.array([b[k], A[k, 1], A[k, 2]])
        snapped[row, 0] = _det3(bi, bj, bk) / det + 0.0
        bi = np.array([A[i, 0], b[i], A[i, 2]])
        bj = np.array([A[j, 0], b[j], A[j, 2]])
        bk = np.array([A[k, 0], b[k], A[k, 2]])
        snapped[row, 1] = _det3(bi, bj, bk) / det + 0.0
        bi = np.array([A[i, 0], A[i, 1], b[i]])
        bj = np.array([A[j, 0], A[j, 1], b[j]])
        bk = np.array([A[k, 0], A[k, 1], b[k]])
        snapped[row, 2] = _det3(bi, bj, bk) / det + 0.0
    order = np.lexsort((snapped[:, 2], snapped[:, 1], snapped[:, 0]))[::-1]
    return deduplicate_points(snapped[order], tol=tol)


def _enumerate_1d(A: np.ndarray, b: np.ndarray, tol: Tolerance) -> np.ndarray:
    """Vertex enumeration for 1-D polytopes (closed intervals)."""
    lower = -np.inf
    upper = np.inf
    for coeff, rhs in zip(A[:, 0], b):
        if coeff > tol.geometry:
            upper = min(upper, rhs / coeff)
        elif coeff < -tol.geometry:
            lower = max(lower, rhs / coeff)
        elif rhs < -tol.geometry:
            return np.empty((0, 1))
    if not np.isfinite(lower) or not np.isfinite(upper):
        raise DegeneratePolytopeError("1-D polytope is unbounded")
    if lower > upper + tol.geometry:
        return np.empty((0, 1))
    if abs(upper - lower) <= tol.dedup:
        return np.array([[0.5 * (lower + upper)]])
    return np.array([[lower], [upper]])


def enumerate_vertices(
    A: np.ndarray,
    b: np.ndarray,
    interior_point: Optional[np.ndarray] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Enumerate the vertices of the polytope ``{x : A x <= b}``.

    Parameters
    ----------
    A, b:
        H-representation of the polytope.  The polytope must be bounded.
    interior_point:
        Optional strictly interior point.  When omitted, the Chebyshev centre
        is computed; if its radius is (numerically) zero the polytope is
        degenerate and :class:`DegeneratePolytopeError` is raised, and if it
        is infeasible :class:`EmptyRegionError` is raised.
    tol:
        Tolerance bundle for deduplication and the 1-D fast path.

    Returns
    -------
    ``(m, d)`` array of vertices (order unspecified, duplicates removed).
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    dim = A.shape[1]

    if dim == 1:
        return _enumerate_1d(A, b, tol)

    if interior_point is None:
        center, radius = chebyshev_center(A, b)
        if center is None:
            raise EmptyRegionError("polytope is empty; cannot enumerate vertices")
        if radius <= tol.radius:
            raise DegeneratePolytopeError(
                "polytope is lower-dimensional; vertex enumeration via qhull needs "
                "a full-dimensional body"
            )
        interior_point = center

    halfspaces = np.hstack([A, -b[:, None]])
    geometry_counters.n_qhull_calls += 1
    try:
        hs = HalfspaceIntersection(halfspaces, np.asarray(interior_point, dtype=float))
    except QhullError as exc:  # pragma: no cover - depends on qhull internals
        raise DegeneratePolytopeError(f"qhull failed on halfspace intersection: {exc}") from exc
    vertices = np.asarray(hs.intersections, dtype=float)
    vertices = vertices[np.all(np.isfinite(vertices), axis=1)]
    if dim == 2:
        return canonicalize_polygon_vertices(A, b, vertices, tol=tol)
    if dim == 3:
        return canonicalize_polyhedron_vertices(A, b, vertices, tol=tol)
    return deduplicate_points(vertices, tol=tol)


def vertex_facet_incidence(
    vertices: np.ndarray,
    A: np.ndarray,
    b: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Boolean matrix ``I`` with ``I[i, j]`` true when vertex ``i`` lies on facet ``j``.

    This realises the paper's facet-based representation: each facet
    (bounding halfspace) is augmented with the defining vertices that lie on
    it (Section 4.2.2, Figure 4).
    """
    vertices = np.asarray(vertices, dtype=float)
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    if vertices.size == 0:
        return np.zeros((0, A.shape[0]), dtype=bool)
    slack = b[None, :] - vertices @ A.T
    scale = np.maximum(1.0, np.abs(b))[None, :]
    return np.abs(slack) <= tol.dedup * scale


def enumerate_box_vertices(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """All ``2^d`` corners of the axis-aligned box ``[lower, upper]``."""
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    dim = lower.shape[0]
    corners = np.empty((2**dim, dim))
    for i in range(2**dim):
        for j in range(dim):
            corners[i, j] = upper[j] if (i >> j) & 1 else lower[j]
    return corners
