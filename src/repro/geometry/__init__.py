"""Computational-geometry substrate.

This subpackage replaces the C++/qhull layer used by the paper's authors.
It provides hyperplanes and halfspaces, convex polytopes with the hybrid
facet/vertex/halfspace representation of Section 4.2.2, LP helpers
(feasibility, Chebyshev centres), vertex enumeration via halfspace
intersection, polytope volume, and the quadratic-programming placement
solvers used for cost-optimal option creation and enhancement.

Two interchangeable backends implement the polytope primitives (see
:mod:`repro.geometry.polytope`): the generic LP/qhull path, and an exact 2-D
polygon path (:mod:`repro.geometry.polygon`) — closed-form Sutherland–Hodgman
clipping with no ``linprog`` and no qhull calls — that is auto-selected for
two-dimensional bodies, the dominant case in the paper's experiments.  The
per-thread :data:`~repro.geometry.counters.geometry_counters` make the
elimination observable (they feed the ``n_lp_calls`` / ``n_qhull_calls`` /
``n_clip_calls`` fields of :class:`~repro.core.stats.SolverStats`).
"""

from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import (
    ConvexPolytope,
    default_backend,
    set_default_backend,
    use_backend,
)
from repro.geometry.polygon import Polygon, polygon_from_halfspaces
from repro.geometry.chebyshev import chebyshev_center, chebyshev_centre, is_feasible
from repro.geometry.counters import geometry_counters
from repro.geometry.vertex_enum import canonicalize_polygon_vertices
from repro.geometry.qp import minimize_quadratic_cost, project_point_onto_polytope

__all__ = [
    "Hyperplane",
    "Halfspace",
    "ConvexPolytope",
    "Polygon",
    "polygon_from_halfspaces",
    "canonicalize_polygon_vertices",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "geometry_counters",
    "chebyshev_center",
    "chebyshev_centre",
    "is_feasible",
    "minimize_quadratic_cost",
    "project_point_onto_polytope",
]
