"""Computational-geometry substrate.

This subpackage replaces the C++/qhull layer used by the paper's authors.
It provides hyperplanes and halfspaces, convex polytopes with the hybrid
facet/vertex/halfspace representation of Section 4.2.2, LP helpers
(feasibility, Chebyshev centres), vertex enumeration via halfspace
intersection, polytope volume, and the quadratic-programming placement
solvers used for cost-optimal option creation and enhancement.

Three interchangeable backends implement the polytope primitives (see
:mod:`repro.geometry.polytope`): the generic LP/qhull path, an exact 2-D
polygon path (:mod:`repro.geometry.polygon`) and an exact 3-D polyhedron
path (:mod:`repro.geometry.polyhedron`) — closed-form Sutherland–Hodgman
clipping with no ``linprog`` and no qhull calls — auto-selected for two-
and three-dimensional bodies, the paper's two experimental settings
(``d = 3`` and ``d = 4`` attributes).  The per-thread
:data:`~repro.geometry.counters.geometry_counters` make the elimination
observable (they feed the ``n_lp_calls`` / ``n_qhull_calls`` /
``n_clip_calls`` fields of :class:`~repro.core.stats.SolverStats`).
"""

from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import (
    ConvexPolytope,
    default_backend,
    set_default_backend,
    use_backend,
)
from repro.geometry.polygon import Polygon, polygon_from_halfspaces
from repro.geometry.polyhedron import Polyhedron, polyhedron_from_halfspaces
from repro.geometry.chebyshev import chebyshev_center, chebyshev_centre, is_feasible
from repro.geometry.counters import geometry_counters
from repro.geometry.vertex_enum import (
    canonicalize_polygon_vertices,
    canonicalize_polyhedron_vertices,
)
from repro.geometry.qp import minimize_quadratic_cost, project_point_onto_polytope

__all__ = [
    "Hyperplane",
    "Halfspace",
    "ConvexPolytope",
    "Polygon",
    "Polyhedron",
    "polygon_from_halfspaces",
    "polyhedron_from_halfspaces",
    "canonicalize_polygon_vertices",
    "canonicalize_polyhedron_vertices",
    "default_backend",
    "set_default_backend",
    "use_backend",
    "geometry_counters",
    "chebyshev_center",
    "chebyshev_centre",
    "is_feasible",
    "minimize_quadratic_cost",
    "project_point_onto_polytope",
]
