"""Computational-geometry substrate.

This subpackage replaces the C++/qhull layer used by the paper's authors.
It provides hyperplanes and halfspaces, convex polytopes with the hybrid
facet/vertex/halfspace representation of Section 4.2.2, LP helpers
(feasibility, Chebyshev centres), vertex enumeration via halfspace
intersection, polytope volume, and the quadratic-programming placement
solvers used for cost-optimal option creation and enhancement.
"""

from repro.geometry.halfspace import Halfspace
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import ConvexPolytope
from repro.geometry.chebyshev import chebyshev_center, is_feasible
from repro.geometry.qp import minimize_quadratic_cost, project_point_onto_polytope

__all__ = [
    "Hyperplane",
    "Halfspace",
    "ConvexPolytope",
    "chebyshev_center",
    "is_feasible",
    "minimize_quadratic_cost",
    "project_point_onto_polytope",
]
