"""Pre-filters that shrink the dataset before TopRR processing (Section 6.3)."""

from repro.pruning.base import FilterResult, apply_filter
from repro.pruning.rskyband import r_skyband, r_dominance_count
from repro.pruning.comparison import compare_filters

__all__ = [
    "FilterResult",
    "apply_filter",
    "r_skyband",
    "r_dominance_count",
    "compare_filters",
]
