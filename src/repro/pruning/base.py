"""Common interface for the four candidate pre-filters of Section 6.3.

Each filter receives the dataset, ``k``, and (for the region-aware filters)
the preference region, and returns the positional indices of the options it
retains, plus bookkeeping that the Figure 8 experiment reports (retained
size, wall-clock time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.utils.timer import Timer

#: Filter labels accepted by :func:`apply_filter`, matching the paper's Figure 8.
FILTER_NAMES = ("k-skyband", "k-onion", "r-skyband", "utk")


@dataclass(frozen=True)
class FilterResult:
    """Outcome of running one pre-filter.

    Attributes
    ----------
    name:
        Filter label (one of :data:`FILTER_NAMES`).
    indices:
        Positional indices of the retained options ``D'``.
    retained:
        ``len(indices)``.
    seconds:
        Wall-clock time the filter took.
    """

    name: str
    indices: np.ndarray
    retained: int
    seconds: float

    def subset(self, dataset: Dataset) -> Dataset:
        """The filtered dataset ``D'`` as a :class:`Dataset`."""
        return dataset.subset(self.indices, name=f"{dataset.name}[{self.name}]")


def apply_filter(
    name: str,
    dataset: Dataset,
    k: int,
    region: Optional[PreferenceRegion] = None,
) -> FilterResult:
    """Run the pre-filter called ``name`` and measure it.

    ``k-skyband`` and ``k-onion`` ignore the preference region (they offer a
    guarantee for *every* weight vector); ``r-skyband`` and ``utk`` require
    the region.
    """
    label = name.lower()
    timer = Timer().start()
    if label in ("k-skyband", "skyband"):
        from repro.topk.skyband import k_skyband

        indices = k_skyband(dataset, k)
    elif label in ("k-onion", "onion", "k-onion layers"):
        from repro.topk.onion import k_onion_layers

        indices = k_onion_layers(dataset, k)
    elif label in ("r-skyband", "rskyband"):
        if region is None:
            raise InvalidParameterError("the r-skyband filter requires a preference region")
        from repro.pruning.rskyband import r_skyband

        indices = r_skyband(dataset, k, region)
    elif label == "utk":
        if region is None:
            raise InvalidParameterError("the UTK filter requires a preference region")
        from repro.pruning.utk_filter import utk_filter

        indices = utk_filter(dataset, k, region)
    else:
        raise InvalidParameterError(f"unknown filter {name!r}; expected one of {FILTER_NAMES}")
    seconds = timer.stop()
    indices = np.asarray(indices, dtype=int)
    return FilterResult(name=label, indices=indices, retained=int(indices.size), seconds=seconds)
