"""The exact UTK pre-filter (Section 6.3, Figure 8).

UTK reports *exactly* the options that appear in the top-k result of some
weight vector inside the preference region — the tightest possible ``D'``.
The price is the cost of a full UTK partitioning, which the paper measures
to be about twice as expensive as the r-skyband filter; this is why the
r-skyband is ultimately chosen as the TopRR pre-filter.

The implementation first shrinks the dataset with the r-skyband (a strict
superset of the UTK output, so this loses nothing) and then runs the
anchor-based UTK partitioner on the survivors.
"""

from __future__ import annotations

import numpy as np

from repro.core.utk import possible_top_k_options
from repro.data.dataset import Dataset
from repro.preference.region import PreferenceRegion
from repro.pruning.rskyband import r_skyband
from repro.utils.rng import RngLike
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def utk_filter(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    rng: RngLike = 0,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Positional indices (into ``dataset``) of options appearing in some top-k inside ``region``."""
    candidate_indices = r_skyband(dataset, k, region, tol=tol)
    candidates = dataset.subset(candidate_indices)
    local = possible_top_k_options(candidates, k, region, rng=rng, tol=tol)
    return np.asarray(candidate_indices, dtype=int)[local]
