"""The r-skyband filter (region-aware dominance, Ciaccia & Martinenghi [14]).

An option ``p`` *r-dominates* ``q`` with respect to a preference region
``wR`` when ``p`` scores at least as high as ``q`` for every weight vector in
``wR`` (and strictly higher for some).  By Lemma 1 of the paper this is
equivalent to ``p`` scoring at least as high at every *vertex* of ``wR``, so
r-dominance is ordinary dominance in the transformed space whose coordinates
are the option's scores at the region's vertices.  The r-skyband — options
r-dominated by fewer than ``k`` others — is therefore computed by running the
k-skyband machinery on the vertex-score matrix.

The r-skyband is a superset of every top-k result for any ``w`` in ``wR`` and
is the pre-filter the paper selects for all TopRR methods (Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import EmptyRegionError, InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.topk.skyband import skyband_of_values
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def vertex_score_matrix(dataset: Dataset, region: PreferenceRegion) -> np.ndarray:
    """Scores of every option at every defining vertex of ``region`` (shape ``(n, m)``)."""
    vertices_full = region.full_vertices()
    if vertices_full.shape[0] == 0:
        raise EmptyRegionError("preference region has no defining vertices")
    return dataset.values @ vertices_full.T


def r_skyband(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Positional indices of the r-skyband of ``dataset`` with respect to ``region``."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    scores = vertex_score_matrix(dataset, region)
    return skyband_of_values(scores, k, tol=tol)


def r_dominance_count(
    dataset: Dataset,
    region: PreferenceRegion,
    cap: int,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Number of r-dominators of every option, capped at ``cap``."""
    from repro.topk.skyband import dominance_count

    scores = vertex_score_matrix(dataset, region)
    return dominance_count(scores, cap=cap, tol=tol)


def r_dominates(
    option_a: np.ndarray,
    option_b: np.ndarray,
    region: PreferenceRegion,
    tol: Tolerance = DEFAULT_TOL,
) -> bool:
    """True if ``option_a`` r-dominates ``option_b`` with respect to ``region``."""
    vertices_full = region.full_vertices()
    scores_a = vertices_full @ np.asarray(option_a, dtype=float)
    scores_b = vertices_full @ np.asarray(option_b, dtype=float)
    at_least = np.all(scores_a >= scores_b - tol.score)
    strictly = np.any(scores_a > scores_b + tol.score)
    return bool(at_least and strictly)
