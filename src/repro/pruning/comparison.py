"""Side-by-side comparison of the pre-filters (the Figure 8 experiment).

The paper compares the four candidate filters by the number of retained
options versus computation time, both normalised to the maximum observed, to
argue that the r-skyband offers the best trade-off.  :func:`compare_filters`
runs all (requested) filters on the same instance and returns the raw and
normalised measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.data.dataset import Dataset
from repro.preference.region import PreferenceRegion
from repro.pruning.base import FILTER_NAMES, FilterResult, apply_filter


@dataclass(frozen=True)
class FilterComparison:
    """Aggregated outcome of the filter comparison experiment."""

    results: Dict[str, FilterResult]

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Sizes and times scaled by the maximum over filters (the Figure 8 axes)."""
        max_retained = max(result.retained for result in self.results.values()) or 1
        max_seconds = max(result.seconds for result in self.results.values()) or 1.0
        return {
            name: {
                "retained": result.retained / max_retained,
                "seconds": result.seconds / max_seconds,
            }
            for name, result in self.results.items()
        }

    def rows(self) -> list[dict]:
        """Flat per-filter rows for tabular reporting."""
        normalized = self.normalized()
        return [
            {
                "filter": name,
                "retained": result.retained,
                "seconds": result.seconds,
                "retained_norm": normalized[name]["retained"],
                "seconds_norm": normalized[name]["seconds"],
            }
            for name, result in self.results.items()
        ]


def compare_filters(
    dataset: Dataset,
    k: int,
    region: PreferenceRegion,
    filters: Optional[Sequence[str]] = None,
) -> FilterComparison:
    """Run the requested pre-filters on one TopRR instance and collect the trade-offs."""
    names = list(filters) if filters is not None else list(FILTER_NAMES)
    results = {name: apply_filter(name, dataset, k, region) for name in names}
    return FilterComparison(results=results)
