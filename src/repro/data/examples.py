"""The worked examples used throughout the paper.

* :func:`figure1_dataset` — the 6-laptop, 2-attribute dataset of Figure 1
  (speed, battery), used for the running TopRR example with
  ``wR = [0.2, 0.8]`` and ``k = 3``.
* :func:`table2_dataset` — the 5-laptop, 3-attribute dataset of Table 2
  (speed, battery, portability), used to illustrate kIPR testing and the
  splitting steps of Tables 3 and 4.

Having these as first-class datasets lets the test suite assert the exact
intermediate values reported in the paper (top-k sets at vertices, the kIPR
boundaries at w[1] = 0.4 and 0.67, the consistent top-1 option p5, ...).
"""

from __future__ import annotations

from repro.data.dataset import Dataset

#: Attribute values of Figure 1(a): (speed, battery) per laptop p1..p6.
FIGURE1_VALUES = [
    [0.9, 0.4],  # p1
    [0.7, 0.9],  # p2
    [0.6, 0.2],  # p3
    [0.3, 0.8],  # p4
    [0.2, 0.3],  # p5
    [0.1, 0.1],  # p6
]

#: Attribute values of Table 2: (speed, battery, portability) per laptop p1..p5.
TABLE2_VALUES = [
    [0.32, 0.72, 0.96],  # p1
    [0.85, 0.91, 0.65],  # p2
    [0.25, 0.94, 0.88],  # p3
    [0.81, 0.65, 0.72],  # p4
    [0.92, 0.98, 0.99],  # p5
]


def figure1_dataset() -> Dataset:
    """The running-example dataset of Figure 1(a)."""
    return Dataset(
        FIGURE1_VALUES,
        attribute_names=["speed", "battery"],
        option_ids=["p1", "p2", "p3", "p4", "p5", "p6"],
        name="paper-figure1",
    )


def table2_dataset() -> Dataset:
    """The kIPR-testing example dataset of Table 2."""
    return Dataset(
        TABLE2_VALUES,
        attribute_names=["speed", "battery", "portability"],
        option_ids=["p1", "p2", "p3", "p4", "p5"],
        name="paper-table2",
    )
