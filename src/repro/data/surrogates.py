"""Surrogates for the paper's real datasets.

The paper evaluates on four crawled datasets that we cannot redistribute or
re-download offline:

* **HOTEL** — 418,843 hotels, 4 attributes (hotels-base.com);
* **HOUSE** — 315,265 households, 6 expenditure attributes (ipums.org);
* **NBA** — 21,960 player-season rows, 8 box-score attributes
  (basketball-reference.com);
* **CNET laptops** — 149 laptops with performance and battery-life ratings
  (cnet.com), used for the Figure 7 case study.

Following the substitution rule documented in DESIGN.md, each is replaced by
a deterministic synthetic surrogate of the same dimensionality whose
correlation structure matches the qualitative behaviour the paper itself
reports (Table 6): HOTEL and HOUSE behave as *slightly anticorrelated*, NBA
as *relatively correlated*.  Cardinalities default to a scaled-down size so
that pure-Python experiments finish quickly, but the paper's cardinalities
are available through ``scale="paper"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.utils.rng import ensure_rng

#: Cardinalities of the original datasets, as reported in Section 6.1.
PAPER_CARDINALITIES = {
    "HOTEL": 418_843,
    "HOUSE": 315_265,
    "NBA": 21_960,
    "CNET": 149,
}

#: Default scaled-down cardinalities used by the Python benchmarks.
SCALED_CARDINALITIES = {
    "HOTEL": 40_000,
    "HOUSE": 30_000,
    "NBA": 21_960,
    "CNET": 149,
}


def _resolve_cardinality(dataset: str, n_options: Optional[int], scale: str) -> int:
    if n_options is not None:
        return int(n_options)
    if scale == "paper":
        return PAPER_CARDINALITIES[dataset]
    if scale == "scaled":
        return SCALED_CARDINALITIES[dataset]
    raise InvalidParameterError(f"scale must be 'scaled' or 'paper', got {scale!r}")


def _blend(correlated: np.ndarray, anticorrelated: np.ndarray, weight: float) -> np.ndarray:
    """Blend a correlated and an anticorrelated component to tune the correlation degree."""
    return np.clip((1.0 - weight) * correlated + weight * anticorrelated, 0.0, 1.0)


def _correlated_component(rng: np.random.Generator, n: int, d: int, spread: float) -> np.ndarray:
    base = 0.5 * (rng.random(n) + rng.random(n))
    return np.clip(base[:, None] + rng.normal(0.0, spread, size=(n, d)), 0.0, 1.0)


def _anticorrelated_component(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    shares = rng.dirichlet(np.ones(d), size=n)
    budget = np.clip(rng.normal(0.5 * d, 0.1 * d, size=n), 0.1 * d, 0.9 * d)
    return np.clip(shares * budget[:, None], 0.0, 1.0)


def hotel_surrogate(
    n_options: Optional[int] = None,
    scale: str = "scaled",
    seed: int = 2019,
) -> Dataset:
    """Surrogate for HOTEL: 4 attributes, slightly anticorrelated.

    Attributes mimic (stars, price-for-value, rooms, facilities): stars and
    price-for-value trade off against capacity-style attributes.
    """
    n = _resolve_cardinality("HOTEL", n_options, scale)
    rng = ensure_rng(seed)
    cor = _correlated_component(rng, n, 4, spread=0.2)
    anti = _anticorrelated_component(rng, n, 4)
    values = _blend(cor, anti, weight=0.45)
    return Dataset(
        values,
        attribute_names=["stars", "value_for_money", "rooms", "facilities"],
        name=f"HOTEL-surrogate(n={n},d=4)",
    )


def house_surrogate(
    n_options: Optional[int] = None,
    scale: str = "scaled",
    seed: int = 2020,
) -> Dataset:
    """Surrogate for HOUSE: 6 expenditure attributes, slightly anticorrelated."""
    n = _resolve_cardinality("HOUSE", n_options, scale)
    rng = ensure_rng(seed)
    cor = _correlated_component(rng, n, 6, spread=0.22)
    anti = _anticorrelated_component(rng, n, 6)
    values = _blend(cor, anti, weight=0.5)
    return Dataset(
        values,
        attribute_names=["gas", "electricity", "water", "heating", "insurance", "tax"],
        name=f"HOUSE-surrogate(n={n},d=6)",
    )


def nba_surrogate(
    n_options: Optional[int] = None,
    scale: str = "scaled",
    seed: int = 2021,
) -> Dataset:
    """Surrogate for NBA: 8 box-score attributes, relatively correlated.

    Good players tend to be good across the board, so the surrogate leans
    heavily on the correlated component (matching the paper's observation
    that NBA behaves close to COR).
    """
    n = _resolve_cardinality("NBA", n_options, scale)
    rng = ensure_rng(seed)
    cor = _correlated_component(rng, n, 8, spread=0.15)
    anti = _anticorrelated_component(rng, n, 8)
    values = _blend(cor, anti, weight=0.15)
    return Dataset(
        values,
        attribute_names=[
            "points",
            "rebounds",
            "assists",
            "steals",
            "blocks",
            "fg_pct",
            "ft_pct",
            "minutes",
        ],
        name=f"NBA-surrogate(n={n},d=8)",
    )


#: Named flagship laptops that the case study of Figure 7 calls out, given as
#: (name, performance, battery) in the unit option space.  They anchor the
#: surrogate so that the case-study narrative (gaming laptops in the
#: performance corner, Chromebooks in the battery corner, MacBooks balanced)
#: can be reproduced and plotted.
CNET_LANDMARKS = [
    ("Acer Predator 15", 0.97, 0.35),
    ("Apple MacBook Pro", 0.86, 0.80),
    ("Lenovo ThinkPad X201", 0.62, 0.68),
    ("Asus Chromebook Flip", 0.30, 0.95),
]


def cnet_laptops(n_options: Optional[int] = None, scale: str = "scaled", seed: int = 149) -> Dataset:
    """Surrogate for the CNET laptop ratings used in the Figure 7 case study.

    149 laptops with (performance, battery) ratings in [0, 1].  The bulk of
    the market sits on a mild performance/battery trade-off curve, a handful
    of flagships push towards the corners, and the four landmark models named
    in the paper's figure are included verbatim.
    """
    n = _resolve_cardinality("CNET", n_options, scale)
    rng = ensure_rng(seed)
    n_random = max(0, n - len(CNET_LANDMARKS))
    # Trade-off backbone: performance + battery roughly constant, with noise.
    performance = rng.beta(2.2, 2.0, size=n_random)
    battery = np.clip(1.05 - performance + rng.normal(0.0, 0.16, size=n_random), 0.02, 0.99)
    performance = np.clip(performance + rng.normal(0.0, 0.03, size=n_random), 0.02, 0.99)
    values = np.column_stack([performance, battery])
    names = [f"laptop_{i:03d}" for i in range(n_random)]
    for landmark_name, perf, batt in CNET_LANDMARKS:
        values = np.vstack([values, [perf, batt]])
        names.append(landmark_name)
    return Dataset(
        values[:n],
        attribute_names=["performance", "battery"],
        option_ids=names[:n],
        name=f"CNET-laptops-surrogate(n={min(n, len(names))},d=2)",
    )


def real_dataset(name: str, scale: str = "scaled", n_options: Optional[int] = None) -> Dataset:
    """Dispatch on the real-dataset label used by the paper."""
    label = name.upper()
    if label == "HOTEL":
        return hotel_surrogate(n_options=n_options, scale=scale)
    if label == "HOUSE":
        return house_surrogate(n_options=n_options, scale=scale)
    if label == "NBA":
        return nba_surrogate(n_options=n_options, scale=scale)
    if label in ("CNET", "LAPTOP", "LAPTOPS"):
        return cnet_laptops(n_options=n_options, scale=scale)
    raise InvalidParameterError(f"unknown real dataset {name!r}")
