"""CSV persistence for datasets.

The experiment harness can cache generated datasets and export results; the
format is a plain CSV with a one-line header of attribute names and an
optional leading ``option_id`` column, so files interoperate with pandas,
spreadsheets and the original authors' data layout.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError

PathLike = Union[str, Path]


def save_csv(dataset: Dataset, path: PathLike, include_ids: bool = True) -> Path:
    """Write ``dataset`` to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = (["option_id"] if include_ids else []) + list(dataset.attribute_names)
        writer.writerow(header)
        for i in range(dataset.n_options):
            row = ([dataset.option_ids[i]] if include_ids else []) + [
                f"{v:.10g}" for v in dataset.values[i]
            ]
            writer.writerow(row)
    return path


def load_csv(path: PathLike, name: str = None, has_ids: bool = None) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any numeric CSV with a header).

    Parameters
    ----------
    path:
        CSV file path.
    name:
        Dataset name; defaults to the file stem.
    has_ids:
        Whether the first column holds option identifiers.  When ``None`` it
        is auto-detected from the header (a first column named ``option_id``).
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise InvalidParameterError(f"{path} is empty") from exc
        if has_ids is None:
            has_ids = bool(header) and header[0].strip().lower() == "option_id"
        attribute_names = header[1:] if has_ids else header
        ids = []
        rows = []
        for line in reader:
            if not line:
                continue
            if has_ids:
                ids.append(line[0])
                rows.append([float(v) for v in line[1:]])
            else:
                rows.append([float(v) for v in line])
    if not rows:
        raise InvalidParameterError(f"{path} contains no data rows")
    values = np.asarray(rows, dtype=float)
    return Dataset(
        values,
        attribute_names=attribute_names,
        option_ids=ids if has_ids else None,
        name=name or path.stem,
    )
