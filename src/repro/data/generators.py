"""Synthetic benchmark data generators (IND / COR / ANTI).

These follow the standard skyline-benchmark generator of Borzsonyi et al.
(ICDE 2001), which the paper uses for its synthetic experiments
(Section 6.1):

* **IND** — attribute values independent and uniform in [0, 1];
* **COR** — positively correlated: options cluster around the diagonal, so
  an option good in one attribute tends to be good in all;
* **ANTI** — anticorrelated: options cluster around the anti-diagonal plane
  ``sum_j p[j] ~= const``, so being good in one attribute implies being bad
  in others (the hardest case for dominance-based pruning).

All generators are deterministic given a seed and clip values to [0, 1].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Distribution labels accepted by :func:`generate_synthetic`.
DISTRIBUTIONS = ("IND", "COR", "ANTI")


def generate_independent(
    n_options: int,
    n_attributes: int,
    rng: RngLike = None,
    name: Optional[str] = None,
) -> Dataset:
    """Independent (IND) data: i.i.d. uniform attribute values in [0, 1]."""
    check_positive_int(n_options, "n_options")
    check_positive_int(n_attributes, "n_attributes")
    rng = ensure_rng(rng)
    values = rng.random((n_options, n_attributes))
    return Dataset(values, name=name or f"IND(n={n_options},d={n_attributes})")


def generate_correlated(
    n_options: int,
    n_attributes: int,
    rng: RngLike = None,
    spread: float = 0.12,
    name: Optional[str] = None,
) -> Dataset:
    """Correlated (COR) data: values concentrated around the main diagonal.

    Each option draws a base quality level from a symmetric triangular-ish
    distribution and perturbs every attribute around that level with a small
    Gaussian spread, as in the classic skyline benchmark.
    """
    check_positive_int(n_options, "n_options")
    check_positive_int(n_attributes, "n_attributes")
    if spread <= 0:
        raise InvalidParameterError("spread must be positive")
    rng = ensure_rng(rng)
    base = 0.5 * (rng.random(n_options) + rng.random(n_options))
    noise = rng.normal(0.0, spread, size=(n_options, n_attributes))
    values = np.clip(base[:, None] + noise, 0.0, 1.0)
    return Dataset(values, name=name or f"COR(n={n_options},d={n_attributes})")


def generate_anticorrelated(
    n_options: int,
    n_attributes: int,
    rng: RngLike = None,
    spread: float = 0.12,
    name: Optional[str] = None,
) -> Dataset:
    """Anticorrelated (ANTI) data: values concentrated around the anti-diagonal.

    Each option has an overall "budget" close to ``n_attributes / 2`` that is
    split across attributes via a Dirichlet draw, so good values in some
    attributes force bad values in others.  This is the distribution with the
    largest skybands and therefore the hardest case for the TopRR filters.
    """
    check_positive_int(n_options, "n_options")
    check_positive_int(n_attributes, "n_attributes")
    if spread <= 0:
        raise InvalidParameterError("spread must be positive")
    rng = ensure_rng(rng)
    budget = np.clip(
        rng.normal(0.5 * n_attributes, spread * np.sqrt(n_attributes), size=n_options),
        0.05 * n_attributes,
        0.95 * n_attributes,
    )
    shares = rng.dirichlet(np.ones(n_attributes), size=n_options)
    values = np.clip(shares * budget[:, None], 0.0, 1.0)
    return Dataset(values, name=name or f"ANTI(n={n_options},d={n_attributes})")


def generate_synthetic(
    distribution: str,
    n_options: int,
    n_attributes: int,
    rng: RngLike = None,
) -> Dataset:
    """Dispatch on the distribution label used by the paper ('IND', 'COR', 'ANTI')."""
    label = distribution.upper()
    if label == "IND":
        return generate_independent(n_options, n_attributes, rng=rng)
    if label == "COR":
        return generate_correlated(n_options, n_attributes, rng=rng)
    if label == "ANTI":
        return generate_anticorrelated(n_options, n_attributes, rng=rng)
    raise InvalidParameterError(
        f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
    )
