"""Dataset substrate: containers, benchmark generators, surrogate real datasets and I/O."""

from repro.data.dataset import Dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
    generate_synthetic,
)
from repro.data.examples import figure1_dataset, table2_dataset
from repro.data.surrogates import (
    cnet_laptops,
    hotel_surrogate,
    house_surrogate,
    nba_surrogate,
)

__all__ = [
    "Dataset",
    "generate_independent",
    "generate_correlated",
    "generate_anticorrelated",
    "generate_synthetic",
    "figure1_dataset",
    "table2_dataset",
    "cnet_laptops",
    "hotel_surrogate",
    "house_surrogate",
    "nba_surrogate",
]
