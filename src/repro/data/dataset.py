"""The :class:`Dataset` container used throughout the package.

A dataset is an ``(n, d)`` matrix of options; every attribute is assumed to
be "larger is better" and (by convention, as in the paper) normalised to the
unit interval.  The container adds named attributes, named options, basic
statistics, subsetting that preserves original option identifiers, and score
computation — everything downstream code needs without reaching into raw
numpy arrays.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError


class Dataset:
    """An in-memory option dataset.

    Parameters
    ----------
    values:
        ``(n, d)`` array-like of attribute values.  An already-float64 numpy
        array is adopted as-is (no copy), so views — e.g. shard windows from
        :meth:`slice_view` or arrays backed by shared memory — keep sharing
        their underlying buffer.
    attribute_names:
        Optional names for the ``d`` attributes (defaults to ``attr_0 ...``).
    option_ids:
        Optional identifiers for the ``n`` options.  Subsets created with
        :meth:`subset` keep the identifiers of the parent dataset so that
        results can always be reported in terms of the original options.
    name:
        Human-readable dataset name used in experiment reports.
    version:
        Version tag of this dataset in a mutation chain (see
        :meth:`insert_options` / :meth:`delete_options`).  Freshly
        constructed datasets are version ``0``; every mutation produces a
        new dataset at ``version + 1`` together with a
        :class:`~repro.core.mutation.MutationDelta` describing the step.
        Engines and shard plans are version-tagged against this value so
        stale derived structures (id lookup tables, shard position maps)
        are detected instead of silently serving old state.
    """

    def __init__(
        self,
        values,
        attribute_names: Optional[Sequence[str]] = None,
        option_ids: Optional[Sequence] = None,
        name: str = "dataset",
        version: int = 0,
    ):
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise DimensionMismatchError(
                f"dataset values must be a 2-D matrix, got shape {values.shape}"
            )
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise InvalidParameterError("dataset must contain at least one option and one attribute")
        if not np.all(np.isfinite(values)):
            raise InvalidParameterError("dataset contains non-finite attribute values")
        self._values = values
        self.name = name

        if attribute_names is None:
            attribute_names = [f"attr_{j}" for j in range(values.shape[1])]
        attribute_names = list(attribute_names)
        if len(attribute_names) != values.shape[1]:
            raise DimensionMismatchError("one attribute name per column is required")
        self.attribute_names: List[str] = attribute_names

        if option_ids is None:
            option_ids = list(range(values.shape[0]))
        option_ids = list(option_ids)
        if len(option_ids) != values.shape[0]:
            raise DimensionMismatchError("one option id per row is required")
        self.option_ids: List = option_ids
        self.version = int(version)
        self._id_to_index: Optional[dict] = None
        # Version tag of the lazily built id->index table.  The table is
        # only valid for the option_ids list it was built from; mutation
        # constructors that seed a child's table (the insert fast path)
        # stamp it with the child's version so a stale share is detectable.
        self._id_to_index_version = self.version

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying ``(n, d)`` value matrix (not a copy; treat as read-only)."""
        return self._values

    @property
    def n_options(self) -> int:
        """Number of options ``n``."""
        return self._values.shape[0]

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``d``."""
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.n_options

    def option(self, index: int) -> np.ndarray:
        """The attribute vector of the option at positional ``index``."""
        return self._values[index]

    def id_of(self, index: int):
        """Original identifier of the option at positional ``index``."""
        return self.option_ids[index]

    def index_of(self, option_id) -> int:
        """Positional index of the option with original identifier ``option_id``.

        O(1) after the first call: the id→index mapping is built lazily and
        reused (option ids are fixed at construction time).  With duplicate
        ids the first occurrence wins, matching ``list.index``.  The table
        is version-tagged: a table inherited from a different dataset
        version (the :meth:`insert_options` fast path seeds the child's
        table from the parent's) is rebuilt instead of trusted, so mutation
        can never leave a stale id→index mapping behind.
        """
        if self._id_to_index is not None and self._id_to_index_version != self.version:
            self._id_to_index = None  # stale inherited table: rebuild below
        if self._id_to_index is None:
            try:
                mapping: dict = {}
                for index, existing in enumerate(self.option_ids):
                    mapping.setdefault(existing, index)
                self._id_to_index = mapping
                self._id_to_index_version = self.version
            except TypeError:  # unhashable ids: keep the linear-scan behaviour
                return self.option_ids.index(option_id)
        try:
            return self._id_to_index[option_id]
        except KeyError:
            raise ValueError(f"{option_id!r} is not in the dataset") from None
        except TypeError:  # unhashable lookup key: match list.index semantics
            return self.option_ids.index(option_id)

    # ------------------------------------------------------------------ #
    # derived datasets
    # ------------------------------------------------------------------ #
    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "Dataset":
        """A new dataset containing only the options at ``indices``.

        The subset keeps the parent's attribute names and the original option
        identifiers of the selected rows.
        """
        idx = np.asarray(list(indices), dtype=int)
        return Dataset(
            self._values[idx],
            attribute_names=self.attribute_names,
            option_ids=[self.option_ids[i] for i in idx],
            name=name or f"{self.name}[subset:{idx.size}]",
        )

    def without(self, indices: Iterable[int], name: Optional[str] = None) -> "Dataset":
        """A new dataset with the options at ``indices`` removed."""
        drop = set(int(i) for i in indices)
        keep = [i for i in range(self.n_options) if i not in drop]
        return self.subset(keep, name=name or f"{self.name}[minus:{len(drop)}]")

    def slice_view(
        self,
        start: int,
        stop: int,
        option_ids: Optional[Sequence] = None,
        name: Optional[str] = None,
    ) -> "Dataset":
        """A zero-copy dataset over the contiguous row range ``[start, stop)``.

        Unlike :meth:`subset`, which gathers rows into a fresh matrix, the
        returned dataset *shares* this dataset's value buffer (the
        constructor never copies an already-float64 array).  This is what
        the option-space sharding layer (:mod:`repro.data.sharding`) builds
        per-shard datasets from: ``n_shards`` views cost no memory beyond
        the parent matrix, and a view over a shared-memory buffer stays a
        window onto the same physical pages in every attached process.

        ``option_ids`` defaults to the parent's ids for the range, keeping
        :meth:`subset` semantics; treat the values as read-only, as writes
        would alias the parent.
        """
        start, stop = int(start), int(stop)
        if not (0 <= start <= stop <= self.n_options):
            raise InvalidParameterError(
                f"slice [{start}, {stop}) out of range for {self.n_options} options"
            )
        if option_ids is None:
            option_ids = self.option_ids[start:stop]
        return Dataset(
            self._values[start:stop],
            attribute_names=self.attribute_names,
            option_ids=option_ids,
            name=name or f"{self.name}[{start}:{stop}]",
        )

    # ------------------------------------------------------------------ #
    # streaming mutations (versioned)
    # ------------------------------------------------------------------ #
    def _fresh_option_ids(self, count: int) -> List:
        """``count`` identifiers guaranteed not to collide with existing ids.

        Integer id spaces (the default) continue from ``max + 1``; any other
        id scheme must pass explicit ids to :meth:`insert_options`.
        """
        if not all(isinstance(option_id, int) for option_id in self.option_ids):
            raise InvalidParameterError(
                "cannot auto-generate option ids for a dataset with non-integer "
                "ids; pass option_ids explicitly to insert_options"
            )
        start = max(self.option_ids) + 1 if self.option_ids else 0
        return list(range(start, start + count))

    def insert_options(
        self,
        values,
        option_ids: Optional[Sequence] = None,
        name: Optional[str] = None,
    ):
        """Append options, returning ``(mutated dataset, MutationDelta)``.

        The mutated dataset is a new object at ``version + 1``; this dataset
        is left untouched (mutation is functional, so engines bound to the
        parent stay consistent until their ``apply_delta`` hook runs).  The
        new options occupy the *last* positions, which keeps every existing
        option's positional index — and therefore every cached positional
        artefact — stable.  Existing options keep their ids; fresh ids are
        generated for the inserted options unless given explicitly.
        """
        from repro.core.mutation import MutationDelta

        inserted = np.atleast_2d(np.asarray(values, dtype=float))
        if inserted.ndim != 2 or inserted.shape[1] != self.n_attributes:
            raise DimensionMismatchError(
                f"inserted options must be (m, {self.n_attributes}), got {inserted.shape}"
            )
        if inserted.shape[0] == 0:
            raise InvalidParameterError("insert_options requires at least one option")
        if option_ids is None:
            option_ids = self._fresh_option_ids(inserted.shape[0])
        option_ids = list(option_ids)
        if len(option_ids) != inserted.shape[0]:
            raise DimensionMismatchError("one option id per inserted row is required")
        existing = set(self.option_ids)
        clashing = [option_id for option_id in option_ids if option_id in existing]
        if clashing:
            raise InvalidParameterError(
                f"inserted option ids already exist in the dataset: {clashing[:5]}"
            )
        mutated = Dataset(
            np.vstack([self._values, inserted]),
            attribute_names=self.attribute_names,
            option_ids=self.option_ids + option_ids,
            name=name or f"{self.name}[+{inserted.shape[0]}]",
            version=self.version + 1,
        )
        if self._id_to_index is not None and self._id_to_index_version == self.version:
            # Insert fast path: extend a copy of the parent's table instead
            # of rescanning all n ids, and stamp it with the child's version
            # (an unstamped share is exactly the staleness index_of guards).
            mapping = dict(self._id_to_index)
            for offset, option_id in enumerate(option_ids):
                mapping.setdefault(option_id, self.n_options + offset)
            mutated._id_to_index = mapping
            mutated._id_to_index_version = mutated.version
        delta = MutationDelta(
            parent_version=self.version,
            version=mutated.version,
            n_before=self.n_options,
            n_after=mutated.n_options,
            inserted_values=inserted,
            inserted_ids=tuple(option_ids),
            deleted_ids=(),
            deleted_positions=np.empty(0, dtype=int),
        )
        return mutated, delta

    def delete_options(
        self,
        option_ids: Optional[Sequence] = None,
        positions: Optional[Iterable[int]] = None,
        name: Optional[str] = None,
    ):
        """Remove options, returning ``(mutated dataset, MutationDelta)``.

        Exactly one of ``option_ids`` / ``positions`` selects the victims.
        Surviving options keep their ids and their relative order; the
        mutated dataset is a new object at ``version + 1`` and this dataset
        is left untouched.  Deleting every option is rejected (datasets are
        non-empty by construction).
        """
        from repro.core.mutation import MutationDelta

        if (option_ids is None) == (positions is None):
            raise InvalidParameterError(
                "pass exactly one of option_ids / positions to delete_options"
            )
        if option_ids is not None:
            drop_positions = sorted({self.index_of(option_id) for option_id in option_ids})
        else:
            drop_positions = sorted({int(i) for i in positions})
            for position in drop_positions:
                if not (0 <= position < self.n_options):
                    raise InvalidParameterError(
                        f"delete position {position} out of range for {self.n_options} options"
                    )
        if not drop_positions:
            raise InvalidParameterError("delete_options requires at least one option")
        if len(drop_positions) == self.n_options:
            raise InvalidParameterError("cannot delete every option of a dataset")
        drop = np.asarray(drop_positions, dtype=int)
        keep = np.setdiff1d(np.arange(self.n_options), drop, assume_unique=True)
        mutated = Dataset(
            self._values[keep],
            attribute_names=self.attribute_names,
            option_ids=[self.option_ids[i] for i in keep],
            name=name or f"{self.name}[-{drop.size}]",
            version=self.version + 1,
        )
        delta = MutationDelta(
            parent_version=self.version,
            version=mutated.version,
            n_before=self.n_options,
            n_after=mutated.n_options,
            inserted_values=np.empty((0, self.n_attributes)),
            inserted_ids=(),
            deleted_ids=tuple(self.option_ids[i] for i in drop),
            deleted_positions=drop,
        )
        return mutated, delta

    def normalized(self, name: Optional[str] = None) -> "Dataset":
        """Min-max normalise every attribute to [0, 1] (constant columns map to 0.5)."""
        lo = self._values.min(axis=0)
        hi = self._values.max(axis=0)
        span = hi - lo
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (self._values - lo) / safe_span
        scaled[:, span == 0] = 0.5
        return Dataset(
            scaled,
            attribute_names=self.attribute_names,
            option_ids=self.option_ids,
            name=name or f"{self.name}[normalized]",
        )

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def scores(self, weight: Sequence[float]) -> np.ndarray:
        """Scores ``S_w(p_i) = w . p_i`` of all options for a full weight vector ``w``."""
        weight = np.asarray(weight, dtype=float)
        if weight.shape != (self.n_attributes,):
            raise DimensionMismatchError(
                f"weight vector must have {self.n_attributes} components, got {weight.shape}"
            )
        return self._values @ weight

    def scores_many(self, weights: np.ndarray) -> np.ndarray:
        """Score matrix of shape ``(n_options, n_weights)`` for several full weight vectors."""
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2 or weights.shape[1] != self.n_attributes:
            raise DimensionMismatchError(
                f"weights must be (m, {self.n_attributes}), got {weights.shape}"
            )
        return self._values @ weights.T

    # ------------------------------------------------------------------ #
    # reporting helpers
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Summary statistics used by the experiment reports."""
        return {
            "name": self.name,
            "n_options": self.n_options,
            "n_attributes": self.n_attributes,
            "attribute_names": list(self.attribute_names),
            "min": self._values.min(axis=0).tolist(),
            "max": self._values.max(axis=0).tolist(),
            "mean": self._values.mean(axis=0).tolist(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Dataset(name={self.name!r}, n={self.n_options}, d={self.n_attributes})"
