"""Option-space sharding: disjoint dataset partitions and shared-memory matrices.

The sharded solving path (:mod:`repro.core.sharded`,
:class:`repro.engine.sharded.ShardedEngine`) partitions the *options* of a
dataset into ``n_shards`` disjoint shards, filters every shard in its own
worker process, and reconciles the per-shard candidates in a coordinator.
This module provides the two building blocks that make that cheap:

* **Shard plans** (:class:`ShardSpec`, :func:`plan_shards`) — pure-metadata
  descriptions of a partition.  A spec stores only integers and the strategy
  name, so shipping one to a worker process pickles a few dozen bytes no
  matter how large the dataset is; the worker re-derives its row indices
  locally.  Two strategies exist:

  - ``"contiguous"`` — balanced row ranges ``[i*n//s, (i+1)*n//s)``.  Shard
    datasets are zero-copy views of the parent (see
    :meth:`repro.data.dataset.Dataset.slice_view`).
  - ``"hash"`` — rows are assigned by a splitmix64 hash of their positional
    index, decorrelating shard membership from the row order of the file the
    dataset was loaded from.  The assignment depends only on
    ``(n_options, n_shards)``, so it is stable across processes and sessions.

  Every spec maps *back* to the parent: :meth:`ShardSpec.positions` returns
  the parent positional indices of the shard's rows, and shard datasets
  built by :func:`shard_dataset` carry those positions as their option ids.

* **Shared-memory matrices** (:class:`SharedMatrix`,
  :func:`attach_shared_matrix`) — a 2-D float array placed in
  :mod:`multiprocessing.shared_memory` by the coordinator and *attached* (not
  copied, not pickled) by worker processes.  The sharded filter publishes the
  query's vertex-score matrix this way: workers slice their shard's rows out
  of the one matrix the coordinator computed, which both avoids pickling
  ``O(n)`` arrays per task and guarantees every process sees bit-identical
  scores (a prerequisite for the sharded path's exact-parity contract).
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError

#: Shard assignment strategies accepted by :func:`plan_shards`.
SHARD_STRATEGIES = ("contiguous", "hash")

#: Name prefix of every shared-memory segment this package creates.  Naming
#: the segments (instead of letting the stdlib pick ``psm_...``) is what lets
#: tests and CI assert "no toprr segment leaked" by listing ``/dev/shm``.
SEGMENT_PREFIX = "toprr_"


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser (uint64 in, well-mixed uint64 out)."""
    x = values.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_assignments(n_options: int, n_shards: int) -> np.ndarray:
    """Shard id of every row under the ``"hash"`` strategy (stable, seedless).

    Rows are assigned by ``splitmix64(position) % n_shards``; the mapping is
    a pure function of ``(n_options, n_shards)``, so coordinator and workers
    derive identical partitions without exchanging index arrays.
    """
    return (_splitmix64(np.arange(n_options, dtype=np.uint64)) % np.uint64(n_shards)).astype(int)


@dataclass(frozen=True)
class ShardSpec:
    """Pure-metadata description of one shard of an ``n_options``-row dataset.

    Attributes
    ----------
    shard_id:
        This shard's index in ``range(n_shards)``.
    n_shards:
        Total number of shards in the plan.
    n_options:
        Number of rows of the *parent* dataset (shards re-derive their row
        sets from it, so a spec never carries index arrays).
    strategy:
        ``"contiguous"`` or ``"hash"``.
    """

    shard_id: int
    n_shards: int
    n_options: int
    strategy: str

    def bounds(self) -> Optional[Tuple[int, int]]:
        """``(start, stop)`` row range for contiguous shards, else ``None``."""
        if self.strategy != "contiguous":
            return None
        start = (self.shard_id * self.n_options) // self.n_shards
        stop = ((self.shard_id + 1) * self.n_options) // self.n_shards
        return start, stop

    def positions(self) -> np.ndarray:
        """Parent positional indices of this shard's rows (ascending)."""
        if self.strategy == "contiguous":
            start, stop = self.bounds()
            return np.arange(start, stop)
        return np.flatnonzero(hash_assignments(self.n_options, self.n_shards) == self.shard_id)

    @property
    def n_rows(self) -> int:
        """Number of rows in this shard (may be zero when ``n_shards > n``)."""
        if self.strategy == "contiguous":
            start, stop = self.bounds()
            return stop - start
        return int(self.positions().shape[0])


def plan_shards(n_options: int, n_shards: int, strategy: str = "contiguous") -> List[ShardSpec]:
    """Plan a disjoint partition of ``n_options`` rows into ``n_shards`` shards.

    The union of the shards' :meth:`~ShardSpec.positions` is exactly
    ``range(n_options)`` and shards are pairwise disjoint.  Shards may be
    empty when ``n_shards > n_options``; the sharded filter handles those
    (an empty shard simply contributes no candidates).
    """
    if n_shards <= 0:
        raise InvalidParameterError(f"n_shards must be positive, got {n_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise InvalidParameterError(
            f"unknown shard strategy {strategy!r}; expected one of {SHARD_STRATEGIES}"
        )
    return [ShardSpec(i, n_shards, n_options, strategy) for i in range(n_shards)]


def shard_dataset(dataset: Dataset, spec: ShardSpec) -> Dataset:
    """The shard's rows as a :class:`Dataset` whose option ids are parent positions.

    Contiguous shards are zero-copy views of the parent's value matrix
    (:meth:`~repro.data.dataset.Dataset.slice_view`); hash shards gather
    their rows once.  Option ids are the parent *positional* indices, so any
    per-shard result maps back to the parent dataset by id — the convention
    the sharded coordinator and the per-shard engines rely on.
    """
    if spec.n_options != dataset.n_options:
        raise InvalidParameterError(
            f"shard spec was planned for {spec.n_options} options but the dataset "
            f"has {dataset.n_options}; re-plan after mutating the dataset "
            "(ShardedEngine.apply_delta does this automatically)"
        )
    name = f"{dataset.name}[shard {spec.shard_id}/{spec.n_shards}:{spec.strategy}]"
    if spec.strategy == "contiguous":
        start, stop = spec.bounds()
        return dataset.slice_view(start, stop, option_ids=list(range(start, stop)), name=name)
    positions = spec.positions()
    return Dataset(
        dataset.values[positions],
        attribute_names=dataset.attribute_names,
        option_ids=positions.tolist(),
        name=name,
    )


# ---------------------------------------------------------------------- #
# shared-memory matrices
# ---------------------------------------------------------------------- #
#: Owner-side registry of live segments, by name.  Three independent paths
#: release a segment through :func:`_release_segment` (explicit ``unlink``,
#: the owner's ``weakref.finalize``, and the module ``atexit`` hook below);
#: the registry pop makes whichever runs first win and the rest no-ops, so
#: the coordinator unlinks exactly once on *every* exit path — normal
#: return, exception, GC, or interpreter shutdown.
_OWNED_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _segment_name() -> str:
    """A fresh :data:`SEGMENT_PREFIX` segment name, unique per process."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"


def _release_segment(name: str) -> None:
    """Close and unlink an owned segment by name (idempotent across all paths)."""
    shm = _OWNED_SEGMENTS.pop(name, None)
    if shm is None:
        return
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - mapping already torn down
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - segment already removed
        pass


@atexit.register
def _cleanup_owned_segments() -> None:
    """Interpreter-exit guard: unlink whatever owned segments remain."""
    for name in list(_OWNED_SEGMENTS):
        _release_segment(name)


def leaked_segments() -> List[str]:
    """Names of this package's shared-memory segments present on the host.

    Lists ``/dev/shm`` for :data:`SEGMENT_PREFIX` entries — an empty list
    after a (possibly crashing) sharded run is the no-leak invariant the
    regression tests and the CI post-suite check assert.  Returns an empty
    list on platforms without a ``/dev/shm`` (the check is advisory there).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    return sorted(entry for entry in os.listdir(shm_dir) if entry.startswith(SEGMENT_PREFIX))


@dataclass(frozen=True)
class SharedMatrixSpec:
    """Picklable handle of a shared-memory matrix (name + shape + dtype).

    This is all a worker needs to attach: no array data ever crosses the
    process boundary, and the pickled size is constant in ``n``.
    """

    name: str
    shape: Tuple[int, int]
    dtype: str


class SharedMatrix:
    """Owner side of a 2-D float64 matrix living in shared memory.

    Created by the sharded coordinator from an in-process array (one copy
    into the segment); workers attach via :func:`attach_shared_matrix` with
    the :attr:`spec` and read the same pages zero-copy.  The owner should
    call :meth:`unlink` (or use the instance as a context manager) when the
    query is done; if it never gets the chance — an exception, a dropped
    reference, interpreter shutdown — the owned segment is still unlinked by
    the finalizer/atexit registry (:func:`_release_segment`), and both
    :meth:`close` and :meth:`unlink` are idempotent so error-path cleanup
    can run on top of normal cleanup safely.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape: Tuple[int, int], owner: bool):
        self._shm = shm
        self.shape = tuple(int(s) for s in shape)
        self._owner = owner
        self._mapping_closed = False
        self.array = np.ndarray(self.shape, dtype=np.float64, buffer=shm.buf)
        if owner:
            _OWNED_SEGMENTS[shm.name] = shm
            self._finalizer = weakref.finalize(self, _release_segment, shm.name)
        else:
            self._finalizer = None

    @classmethod
    def create_from(cls, matrix: np.ndarray) -> "SharedMatrix":
        """Copy ``matrix`` into a fresh shared-memory segment and own it."""
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise InvalidParameterError(f"shared matrices must be 2-D, got shape {matrix.shape}")
        shm = None
        for _ in range(8):  # name collisions are ~2^-32; retry regardless
            try:
                shm = shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=max(matrix.nbytes, 1)
                )
                break
            except FileExistsError:  # pragma: no cover - astronomically rare
                continue
        if shm is None:  # pragma: no cover - astronomically rare
            raise InvalidParameterError("could not allocate a unique shared-memory segment name")
        shared = cls(shm, matrix.shape, owner=True)
        shared.array[:] = matrix
        return shared

    @property
    def spec(self) -> SharedMatrixSpec:
        """The picklable attachment handle for worker processes."""
        return SharedMatrixSpec(name=self._shm.name, shape=self.shape, dtype="float64")

    @property
    def name(self) -> str:
        """The segment name (a :data:`SEGMENT_PREFIX` entry under ``/dev/shm``)."""
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (idempotent; the segment survives)."""
        self.array = None
        if self._mapping_closed:
            return
        self._mapping_closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent; safe on error paths)."""
        self.close()
        if not self._owner:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release_segment(self._shm.name)

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def attach_shared_matrix(spec: SharedMatrixSpec) -> SharedMatrix:
    """Attach to a coordinator-owned shared matrix (worker side, zero-copy).

    The returned :class:`SharedMatrix` wraps the *same* physical pages the
    coordinator wrote; nothing is copied and nothing larger than ``spec``
    was pickled.  Workers should :meth:`~SharedMatrix.close` (not unlink)
    when switching to a different segment.

    Before Python 3.13 attaching registers the segment with the resource
    tracker just like creating does.  That is benign here: pool workers share
    the coordinator's tracker (the tracker fd is inherited on both fork and
    spawn), whose per-name cache is a set — the worker's extra ``register``
    is an idempotent add, and the coordinator's :meth:`~SharedMatrix.unlink`
    removes the single entry.  Do **not** ``resource_tracker.unregister``
    after attaching: with a shared tracker that deletes the coordinator's
    registration and its later ``unlink`` then trips the tracker.
    """
    if spec.dtype != "float64":
        raise InvalidParameterError(f"shared matrices are float64, got {spec.dtype!r}")
    shm = shared_memory.SharedMemory(name=spec.name)
    return SharedMatrix(shm, spec.shape, owner=False)
