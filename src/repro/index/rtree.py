"""A packed R-tree over option points.

The tree is bulk-loaded with the Sort-Tile-Recursive (STR) strategy: points
are sorted and tiled dimension by dimension so that every leaf holds a
spatially compact group of points and the tree is perfectly balanced.  This
is the standard way to index a *static* dataset, which is exactly the setting
of every experiment in the paper (the dataset never changes during a TopRR
query).

Two traversal primitives cover everything the higher layers need:

* :meth:`RTree.range_query` — all points inside an axis-aligned rectangle,
* :meth:`RTree.best_first` — nodes/points in decreasing order of an upper
  bound computed from the node's bounding box, which is the engine behind
  branch-and-bound top-k (:mod:`repro.topk.branch_and_bound`) and the BBS
  skyline/k-skyband algorithms (:mod:`repro.skyline.bbs`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned minimum bounding rectangle (MBR).

    Attributes
    ----------
    lower:
        Component-wise minimum corner, shape ``(d,)``.
    upper:
        Component-wise maximum corner, shape ``(d,)``.
    """

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """The tightest box enclosing all rows of ``points``."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise InvalidParameterError("bounding box requires a non-empty (n, d) point matrix")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def of_boxes(cls, boxes: Sequence["BoundingBox"]) -> "BoundingBox":
        """The tightest box enclosing a collection of boxes."""
        if not boxes:
            raise InvalidParameterError("bounding box requires at least one child box")
        lower = np.min([box.lower for box in boxes], axis=0)
        upper = np.max([box.upper for box in boxes], axis=0)
        return cls(lower, upper)

    @property
    def dimension(self) -> int:
        """Number of coordinates."""
        return int(self.lower.shape[0])

    @property
    def top_corner(self) -> np.ndarray:
        """The corner with the maximum value in every attribute.

        For "larger is better" attributes this corner upper-bounds the score
        of any point in the box under any non-negative weight vector, and is
        the corner dominance-based pruning reasons about.
        """
        return self.upper

    @property
    def bottom_corner(self) -> np.ndarray:
        """The corner with the minimum value in every attribute."""
        return self.lower

    def contains_point(self, point: Sequence[float], eps: float = 0.0) -> bool:
        """True if ``point`` lies inside the box (within ``eps``)."""
        point = np.asarray(point, dtype=float)
        return bool(np.all(point >= self.lower - eps) and np.all(point <= self.upper + eps))

    def intersects(self, other: "BoundingBox", eps: float = 0.0) -> bool:
        """True if the two boxes overlap (within ``eps``)."""
        return bool(
            np.all(self.lower <= other.upper + eps) and np.all(other.lower <= self.upper + eps)
        )

    def max_score(self, weight: Sequence[float]) -> float:
        """Upper bound of ``w . p`` over points ``p`` in the box, for non-negative ``w``."""
        weight = np.asarray(weight, dtype=float)
        return float(weight @ self.upper)

    def min_score(self, weight: Sequence[float]) -> float:
        """Lower bound of ``w . p`` over points ``p`` in the box, for non-negative ``w``."""
        weight = np.asarray(weight, dtype=float)
        return float(weight @ self.lower)

    def volume(self) -> float:
        """Product of the side lengths."""
        return float(np.prod(np.maximum(self.upper - self.lower, 0.0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BoundingBox(lower={self.lower.tolist()}, upper={self.upper.tolist()})"


@dataclass
class RTreeNode:
    """One node of the packed R-tree.

    Leaf nodes carry the positional indices of the points they store;
    internal nodes carry their child nodes.  Every node knows its MBR.
    """

    box: BoundingBox
    children: List["RTreeNode"] = field(default_factory=list)
    point_indices: Optional[np.ndarray] = None
    level: int = 0

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (which hold point indices, not children)."""
        return self.point_indices is not None

    def n_entries(self) -> int:
        """Number of children (internal node) or stored points (leaf)."""
        if self.is_leaf:
            return int(self.point_indices.shape[0])
        return len(self.children)


def _str_tile(points: np.ndarray, indices: np.ndarray, leaf_capacity: int) -> List[np.ndarray]:
    """Partition ``indices`` into spatially compact groups of size <= ``leaf_capacity``.

    Implements the Sort-Tile-Recursive sweep: sort by the first coordinate,
    cut into vertical slabs, then recurse on the remaining coordinates inside
    each slab.  The recursion bottoms out when a group fits in one leaf or
    when there are no more coordinates to refine on.
    """
    def tile(group: np.ndarray, axis: int) -> List[np.ndarray]:
        if group.shape[0] <= leaf_capacity:
            return [group]
        if axis >= points.shape[1] - 1:
            # Last axis: simple consecutive chunks after sorting on it.
            order = group[np.argsort(points[group, axis], kind="stable")]
            return [
                order[start:start + leaf_capacity]
                for start in range(0, order.shape[0], leaf_capacity)
            ]
        n_group = group.shape[0]
        n_leaves = int(np.ceil(n_group / leaf_capacity))
        n_slabs = int(np.ceil(n_leaves ** (1.0 / (points.shape[1] - axis))))
        slab_size = int(np.ceil(n_group / n_slabs)) if n_slabs > 0 else n_group
        order = group[np.argsort(points[group, axis], kind="stable")]
        slabs = [order[start:start + slab_size] for start in range(0, n_group, slab_size)]
        tiles: List[np.ndarray] = []
        for slab in slabs:
            tiles.extend(tile(slab, axis + 1))
        return tiles

    return tile(indices, 0)


class RTree:
    """A static, STR bulk-loaded R-tree over a point set.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of points to index.
    leaf_capacity:
        Maximum number of points per leaf.
    fanout:
        Maximum number of children per internal node.
    """

    def __init__(self, points, leaf_capacity: int = 32, fanout: int = 16):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise DimensionMismatchError(f"points must be an (n, d) matrix, got {points.shape}")
        if points.shape[0] == 0:
            raise InvalidParameterError("cannot build an R-tree over an empty point set")
        if leaf_capacity < 1 or fanout < 2:
            raise InvalidParameterError("leaf_capacity must be >= 1 and fanout >= 2")
        self._points = points
        self.leaf_capacity = int(leaf_capacity)
        self.fanout = int(fanout)
        self.root = self._bulk_load()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _bulk_load(self) -> RTreeNode:
        all_indices = np.arange(self._points.shape[0])
        groups = _str_tile(self._points, all_indices, self.leaf_capacity)
        nodes = [
            RTreeNode(
                box=BoundingBox.of_points(self._points[group]),
                point_indices=np.asarray(group, dtype=int),
                level=0,
            )
            for group in groups
        ]
        level = 0
        while len(nodes) > 1:
            level += 1
            parents: List[RTreeNode] = []
            # Pack children in their tiling order so siblings stay spatially close.
            for start in range(0, len(nodes), self.fanout):
                children = nodes[start:start + self.fanout]
                parents.append(
                    RTreeNode(
                        box=BoundingBox.of_boxes([child.box for child in children]),
                        children=children,
                        level=level,
                    )
                )
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix (treat as read-only)."""
        return self._points

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """Dimensionality of the indexed points."""
        return int(self._points.shape[1])

    @property
    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        return self.root.level + 1

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first iterator over all nodes (used by tests and statistics)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.iter_nodes())

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def range_query(self, lower: Sequence[float], upper: Sequence[float]) -> np.ndarray:
        """Indices of all points inside the box ``[lower, upper]`` (inclusive)."""
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != (self.dimension,) or upper.shape != (self.dimension,):
            raise DimensionMismatchError("query box must match the index dimensionality")
        query = BoundingBox(lower, upper)
        found: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(query):
                continue
            if node.is_leaf:
                pts = self._points[node.point_indices]
                inside = np.all((pts >= lower) & (pts <= upper), axis=1)
                if np.any(inside):
                    found.append(node.point_indices[inside])
            else:
                stack.extend(node.children)
        if not found:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(found))

    def best_first(
        self,
        node_key: Callable[[BoundingBox], float],
        point_key: Callable[[np.ndarray], float],
    ) -> Iterator[Tuple[float, int]]:
        """Yield ``(key, point_index)`` pairs in decreasing ``point_key`` order.

        ``node_key`` must upper-bound ``point_key`` over every point inside a
        node's box; the traversal then never yields a point out of order, so
        callers can stop as soon as they have seen enough entries.  This is
        the classic best-first (priority-queue) traversal used by
        branch-and-bound top-k and nearest-neighbour algorithms.
        """
        counter = itertools.count()
        heap: List[Tuple[float, int, bool, object]] = []
        heapq.heappush(heap, (-node_key(self.root.box), next(counter), False, self.root))
        while heap:
            negative_key, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                yield -negative_key, int(payload)
                continue
            node: RTreeNode = payload
            if node.is_leaf:
                for index in node.point_indices:
                    key = point_key(self._points[index])
                    heapq.heappush(heap, (-key, next(counter), True, int(index)))
            else:
                for child in node.children:
                    heapq.heappush(heap, (-node_key(child.box), next(counter), False, child))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RTree(n={self.n_points}, d={self.dimension}, height={self.height}, "
            f"leaf_capacity={self.leaf_capacity}, fanout={self.fanout})"
        )
