"""Spatial access methods.

The top-k and skyline literature the paper builds on ([34], [42]) assumes the
option dataset is indexed by a spatial access method so that branch-and-bound
algorithms can prune whole subtrees.  This package provides that substrate:

* :class:`~repro.index.rtree.RTree` — a packed (STR bulk-loaded) R-tree over
  the option points, with rectangle queries and best-first traversal, and
* :class:`~repro.index.rtree.BoundingBox` — the minimum bounding rectangles
  the tree is made of.

The tree is deliberately simple (static, bulk-loaded) because every workload
in the paper's evaluation operates on a fixed dataset; insertion/deletion
balancing machinery would be dead weight here.
"""

from repro.index.rtree import BoundingBox, RTree, RTreeNode

__all__ = ["BoundingBox", "RTree", "RTreeNode"]
