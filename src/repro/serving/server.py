"""The asyncio HTTP front end: ``/solve``, ``/batch``, ``/mutate``, ``/health``, ``/metrics``.

A deliberately small, dependency-free HTTP/1.1 server
(:func:`asyncio.start_server` + hand-rolled request parsing, keep-alive
supported) — the solver is the product here, the transport just has to be
correct.  Life of a served query:

1. the request body is parsed and validated
   (:mod:`repro.serving.schemas`; malformed input → 400, never a traceback);
2. the registry resolves the target dataset and its engine
   (:mod:`repro.serving.registry`);
3. the solve runs under the dataset's read lock — concurrent solves
   interleave freely, a ``/mutate`` holds the write side alone;
4. identical concurrent ``(k, region fingerprint, method)`` solves coalesce
   onto one engine call; everyone else's CPU-bound solve is pushed to a
   worker thread so the event loop keeps accepting requests;
5. the response separates the deterministic ``"result"`` payload (byte-
   comparable across replicas) from the volatile ``"served"`` half
   (latency, cache hit, coalescing).

:func:`start_server_thread` hosts the same server on a private event loop
in a daemon thread — the harness the tests, the benchmark and the CI smoke
lane drive with plain blocking clients (:func:`request_json`).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Optional, Tuple

from repro.engine.fingerprint import region_fingerprint
from repro.exceptions import EngineClosedError, InvalidParameterError, ReproError
from repro.serving.registry import EngineRegistry, ServedDataset
from repro.serving.schemas import (
    BatchRequest,
    MutateRequest,
    SolveRequest,
    result_payload,
)
from repro.version import __version__

#: Largest accepted request body (16 MiB — far above any sane mutate batch).
MAX_BODY_BYTES = 16 << 20


class ToprrServer:
    """One serving replica: an engine registry behind an asyncio HTTP server.

    Parameters
    ----------
    registry:
        The datasets/engines to serve (see :class:`EngineRegistry`).
    host, port:
        Bind address; ``port=0`` picks a free port (recorded in
        :attr:`port` after :meth:`start`).
    n_solver_threads:
        Size of the worker-thread pool CPU-bound solves run on.  Solves
        hold the GIL for most of their runtime, so this bounds memory and
        queueing fairness more than parallel speed-up.
    """

    def __init__(
        self,
        registry: EngineRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        n_solver_threads: int = 4,
    ):
        self.registry = registry
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(n_solver_threads)),
            thread_name_prefix="toprr-solve",
        )
        self.started = time.time()

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the solver threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    # -------------------------------------------------------------- #
    # transport
    # -------------------------------------------------------------- #
    async def _handle_connection(self, reader, writer) -> None:
        """Serve one client connection (HTTP/1.1 keep-alive loop)."""
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload = await self._dispatch(method, path, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, dict, bytes]]:
        """Parse one HTTP request; ``None`` when the client closed the socket."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ConnectionError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ConnectionError(f"request body of {length} bytes exceeds the cap")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    @staticmethod
    async def _write_response(writer, status: int, payload: dict, keep_alive: bool) -> None:
        """Serialise one JSON response and flush it."""
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error"}
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        """Route one request; every error becomes a JSON error response."""
        routes = {
            ("GET", "/health"): self._route_health,
            ("GET", "/metrics"): self._route_metrics,
            ("POST", "/solve"): self._route_solve,
            ("POST", "/batch"): self._route_batch,
            ("POST", "/mutate"): self._route_mutate,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {route_path for _verb, route_path in routes}
            if path in known_paths:
                return 405, {"error": f"{method} is not supported on {path}"}
            return 404, {"error": f"unknown route {path}"}
        try:
            if method == "POST":
                try:
                    payload = json.loads(body.decode() or "{}")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    return 400, {"error": f"request body is not valid JSON: {exc}"}
                return 200, await handler(payload)
            return 200, await handler()
        except EngineClosedError as exc:
            return 409, {"error": str(exc)}
        except (InvalidParameterError, ReproError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the replica must keep serving
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    # -------------------------------------------------------------- #
    # routes
    # -------------------------------------------------------------- #
    async def _route_health(self) -> dict:
        """Liveness probe: registered datasets and engine identity."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started,
            "datasets": self.registry.names(),
        }

    async def _route_metrics(self) -> dict:
        """Serving counters + engine cache state, safe on a fresh replica."""
        return {
            "status": "ok",
            "datasets": {
                entry.name: entry.metrics() for entry in self.registry.entries()
            },
        }

    async def _route_solve(self, payload: dict) -> dict:
        """One TopRR query, coalesced and cache-aware."""
        request = SolveRequest.parse(payload)
        entry = self.registry.get(request.dataset)
        async with entry.lock.read():
            response = await self._solve_one(entry, request)
        entry.record(
            "solve",
            seconds=response["served"]["seconds"],
            cache_hit=response["served"]["cache_hit"],
        )
        return response

    async def _route_batch(self, payload: dict) -> dict:
        """Several queries against one dataset, answered in request order."""
        batch = BatchRequest.parse(payload)
        entry = self.registry.get(batch.dataset)
        started = time.perf_counter()
        responses = []
        async with entry.lock.read():
            for request in batch.queries:
                responses.append(await self._solve_one(entry, request))
        entry.record("batch", seconds=time.perf_counter() - started)
        return {
            "dataset": entry.name,
            "n_queries": len(responses),
            "responses": responses,
            "served": {"seconds": time.perf_counter() - started},
        }

    async def _solve_one(self, entry: ServedDataset, request: SolveRequest) -> dict:
        """The shared solve path of ``/solve`` and ``/batch`` (read lock held).

        Peeks the engine's result cache first (a hit answers without
        touching the executor), then coalesces with identical in-flight
        solves, then pays the solve on a worker thread.
        """
        engine = entry.engine
        region = request.region(engine.dataset.n_attributes, tol=engine.tol)
        method = request.method if request.method is not None else engine.method
        started = time.perf_counter()

        cache_hit = False
        coalesced = False
        result = engine.cached_result(request.k, region, method) if request.use_cache else None
        if result is not None:
            cache_hit = True
        else:
            loop = asyncio.get_running_loop()
            thunk = lambda: loop.run_in_executor(  # noqa: E731 - bound late by design
                self._executor,
                partial(
                    engine.query,
                    request.k,
                    region,
                    method=request.method,
                    use_cache=request.use_cache,
                ),
            )
            if request.use_cache and isinstance(method, str):
                key = (request.k, region_fingerprint(region), method.lower())
                result, coalesced = await entry.coalesced_solve(key, thunk)
            else:
                # Deliberately uncached solves never coalesce: the caller
                # asked for an independent from-scratch computation.
                result = await thunk()
        seconds = time.perf_counter() - started

        return {
            "dataset": entry.name,
            "result": result_payload(result),
            "served": {
                "seconds": seconds,
                "cache_hit": cache_hit,
                "coalesced": coalesced,
            },
        }

    async def _route_mutate(self, payload: dict) -> dict:
        """Streaming insert/delete, exclusive against in-flight solves."""
        request = MutateRequest.parse(payload)
        entry = self.registry.get(request.dataset)
        started = time.perf_counter()
        async with entry.lock.write():
            loop = asyncio.get_running_loop()
            reports = await loop.run_in_executor(
                self._executor, partial(self._apply_mutation, entry, request)
            )
        seconds = time.perf_counter() - started
        entry.record("mutate", seconds=seconds)
        dataset = entry.engine.dataset
        return {
            "dataset": entry.name,
            "version": int(dataset.version),
            "n_options": int(dataset.n_options),
            "reports": reports,
            "served": {"seconds": seconds},
        }

    @staticmethod
    def _apply_mutation(entry: ServedDataset, request: MutateRequest) -> list:
        """Apply insert-then-delete through the engine's incremental maintenance."""
        engine = entry.engine
        reports = []
        current = engine.dataset
        if request.insert_values is not None:
            current, delta = current.insert_options(
                request.insert_values, option_ids=request.insert_ids
            )
            reports.append(dict(engine.apply_delta(current, delta).as_dict(), step="insert"))
        if request.delete_ids is not None or request.delete_positions is not None:
            current, delta = current.delete_options(
                option_ids=request.delete_ids, positions=request.delete_positions
            )
            reports.append(dict(engine.apply_delta(current, delta).as_dict(), step="delete"))
        return reports


# ------------------------------------------------------------------ #
# thread-hosted harness and a tiny blocking client
# ------------------------------------------------------------------ #
class ServerThread:
    """Host a :class:`ToprrServer` on a private event loop in a daemon thread.

    The harness the tests and benchmarks use: the calling thread gets a
    bound ``url`` back and drives the replica with plain blocking HTTP
    clients; :meth:`stop` tears the loop down deterministically.
    """

    def __init__(self, registry: EngineRegistry, host: str = "127.0.0.1", port: int = 0):
        self.server = ToprrServer(registry, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Start the loop thread and block until the server is bound."""
        self._thread = threading.Thread(target=self._run, name="toprr-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serving thread failed to start in time")
        if self._failure is not None:
            raise RuntimeError(f"serving thread failed to bind: {self._failure!r}")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind failures to the caller
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    @property
    def url(self) -> str:
        """Base URL of the running replica."""
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(
    registry: EngineRegistry, host: str = "127.0.0.1", port: int = 0
) -> ServerThread:
    """Start a thread-hosted replica and return its handle (bound and ready)."""
    return ServerThread(registry, host=host, port=port).start()


def request_json(
    base_url: str,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 60.0,
) -> Tuple[int, dict]:
    """Tiny blocking JSON client (stdlib only) for tests, benchmarks and CI.

    Returns ``(status, decoded body)``; HTTP error statuses are returned,
    not raised, so callers can assert on 400/404 responses directly.
    """
    import urllib.error
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base_url + path,
        data=data,
        method=method.upper(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode() or "{}")
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read().decode() or "{}")
        except json.JSONDecodeError:
            body = {}
        return error.code, body
